"""Ablation — governor tunable sensitivity.

Sweeps the tunables that drive the paper's qualitative findings:
conservative's sampling rate (its slowness is what irritates) and
interactive's hispeed_freq (its boost target is what burns energy).
"""

from repro.harness.experiment import replay_run


def test_conservative_sampling_rate(benchmark, artifacts_ds02):
    def run(rate_us):
        return replay_run(
            artifacts_ds02, "conservative", sampling_rate_us=rate_us
        )

    benchmark.pedantic(lambda: run(200_000), rounds=1, iterations=1)

    rows = {}
    for rate_ms in (50, 100, 200, 400):
        result = run(rate_ms * 1000)
        rows[rate_ms] = (
            result.irritation_seconds(),
            result.dynamic_energy_j,
        )

    print("\nAblation: conservative sampling rate (Dataset 02)")
    for rate_ms, (irritation, energy) in rows.items():
        print(f"  {rate_ms:4d} ms: irritation {irritation:6.2f} s  "
              f"energy {energy:6.2f} J")

    # Slower sampling → slower ramp → more irritation.
    irritations = [rows[r][0] for r in sorted(rows)]
    assert irritations[0] < irritations[-1]


def test_interactive_hispeed_freq(benchmark, artifacts_ds02):
    def run(hispeed):
        return replay_run(
            artifacts_ds02, "interactive", hispeed_freq_khz=hispeed
        )

    benchmark.pedantic(lambda: run(1_190_400), rounds=1, iterations=1)

    rows = {}
    for hispeed in (652_800, 1_190_400, 1_728_000, 2_150_400):
        result = run(hispeed)
        rows[hispeed] = (
            result.irritation_seconds(),
            result.dynamic_energy_j,
        )

    print("\nAblation: interactive hispeed_freq (Dataset 02)")
    for hispeed, (irritation, energy) in rows.items():
        print(f"  {hispeed / 1e6:4.2f} GHz: irritation {irritation:6.2f} s  "
              f"energy {energy:6.2f} J")

    # Higher boost target → more energy, never more irritation.
    energies = [rows[h][1] for h in sorted(rows)]
    assert energies[0] < energies[-1]
    irritations = [rows[h][0] for h in sorted(rows)]
    assert irritations[-1] <= irritations[0] + 0.5


def test_ondemand_up_threshold(benchmark, artifacts_ds02):
    def run(threshold):
        return replay_run(artifacts_ds02, "ondemand", up_threshold=threshold)

    benchmark.pedantic(lambda: run(95), rounds=1, iterations=1)

    rows = {}
    for threshold in (60, 80, 95):
        result = run(threshold)
        rows[threshold] = result.dynamic_energy_j

    print("\nAblation: ondemand up_threshold (Dataset 02)")
    for threshold, energy in rows.items():
        print(f"  up={threshold}: energy {energy:6.2f} J")

    # A lower threshold races to max more eagerly → more energy.
    assert rows[60] > rows[95]

"""Ablation — oracle deadline-slack sensitivity.

The paper fixes the per-lag deadline at 110% of the fastest frequency's
lag ("we assume that the user does not notice a 10% difference").  This
bench sweeps the slack factor and shows the trade: more slack lets the
oracle pick lower lag frequencies, monotonically reducing its energy.
"""

from repro.harness.sweep import compose_oracle_from_runs
from repro.oracle.builder import build_oracle


def test_oracle_slack_sweep(benchmark, sweep_ds02, artifacts_ds02):
    table = sweep_ds02.table
    fixed_profiles = {
        khz: sweep_ds02.runs[f"fixed:{khz}"][0].lag_profile
        for khz in table.frequencies_khz
    }
    fixed_busy = {
        khz: sweep_ds02.runs[f"fixed:{khz}"][0].busy_timeline
        for khz in table.frequencies_khz
    }
    fixed_energy = {
        khz: sweep_ds02.mean_energy_j(f"fixed:{khz}")
        for khz in table.frequencies_khz
    }
    from repro.device.power import PowerModel

    model = PowerModel()

    def oracle_for(slack):
        return build_oracle(
            fixed_profiles,
            fixed_busy,
            fixed_energy,
            duration_us=artifacts_ds02.duration_us,
            table=table,
            power_model=model,
            slack=slack,
        )

    benchmark(oracle_for, 1.10)

    energies = {}
    for slack in (1.0, 1.05, 1.10, 1.25, 1.5):
        oracle = oracle_for(slack)
        energies[slack] = oracle.energy_j

    print("\nAblation: oracle slack factor (Dataset 02)")
    for slack, energy in energies.items():
        print(f"  slack {slack:4.2f}: {energy:7.2f} J")

    ordered = [energies[s] for s in sorted(energies)]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # The paper's 1.10 slack sits strictly between the extremes.
    assert energies[1.5] < energies[1.10] <= energies[1.0]

"""Ablation — suggester tunables (paper §II-D's configuration knobs).

The paper: "If it were set to 30 in our example, the number [of]
suggestions would be reduced to 2 and we would still safely catch the
correct one."  We sweep the minimum-still-period setting and the pixel
tolerance and verify the ground-truth ending always survives pruning.
"""

import pytest

from repro.analysis.suggester import SuggesterConfig, suggest
from repro.harness.figures import fig7_suggester_demo


@pytest.fixture(scope="module")
def demo_video():
    """The Fig. 7 scenario, plus its video rebuilt for direct access."""
    return fig7_suggester_demo()


def test_min_still_frames_prunes_but_keeps_truth(benchmark, demo_video):
    demo = demo_video
    counts = {}

    def sweep_min_still():
        from repro.harness.figures import fig7_suggester_demo as rebuild

        return rebuild()

    benchmark.pedantic(sweep_min_still, rounds=1, iterations=1)

    print("\nAblation: suggester min_still_frames on the Fig. 7 window")
    baseline = len(demo.suggested_frames)
    print(f"  min_still=1: {baseline} suggestions (paper: 8-10)")
    assert demo.ground_truth_end_frame == demo.suggested_frames[-1]
    # The paper's claim: a stricter still-period requirement prunes the
    # intermediate loading stages but keeps the final ending, because the
    # true ending starts the longest still period.
    assert baseline >= 8


def test_still_period_30_reduces_to_final(benchmark):
    # Reconstruct via a fresh run to get the video object directly.
    from repro.apps import install_standard_apps
    from repro.capture import CaptureCard
    from repro.core.simtime import seconds
    from repro.device.device import Device
    from repro.uifw.view import WindowManager

    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor("fixed:300000")
    card = CaptureCard(device.display)
    card.start(0)
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(
        seconds(1), launcher.tap_target("icon:gallery")
    )
    device.run_for(seconds(9))
    video = card.stop(device.engine.now)
    record = wm.journal.interactions[0]

    base_config = SuggesterConfig(mask_rects=tuple(record.mask_rects))
    benchmark(suggest, video, 30, video.end_frame, base_config)

    results = {}
    for min_still in (1, 10, 30):
        config = SuggesterConfig(
            mask_rects=tuple(record.mask_rects), min_still_frames=min_still
        )
        found = suggest(video, 30, video.end_frame, config)
        results[min_still] = [s.frame_index for s in found]

    print("\nAblation: min_still_frames sweep")
    for min_still, frames in results.items():
        print(f"  min_still={min_still:2d}: {len(frames)} suggestions")

    # Monotone pruning, and the ground-truth ending always survives.
    assert len(results[1]) >= len(results[10]) >= len(results[30]) >= 1
    truth = record.end_time // 33_333 + 1
    for frames in results.values():
        assert truth in frames
    # Paper: with a long still requirement only a couple of suggestions
    # remain.
    assert len(results[30]) <= 3

"""Explore throughput — candidates/second, cold vs warm cache, across jobs.

The design-space explorer's cost model is candidate evaluations lowered
to replays; its speed comes from two places the fleet engine provides:
worker parallelism (``jobs``) and the content-addressed result cache.
This bench runs the same random search over the QoE-aware space at
1/4/8 workers with a cold cache, then re-runs it warm, reporting
candidates/second for each cell.  Every configuration must produce
scores bit-identical to the serial reference — speed never changes
results.
"""

from __future__ import annotations

import os
import random
import time

from repro.explore.evaluator import ExploreEvaluator
from repro.explore.space import builtin_space
from repro.explore.strategies import RandomSearch
from repro.fleet.cache import ResultCache

JOB_COUNTS = (1, 4, 8)
BUDGET = 12
SEED = 2014


def _search(artifacts, jobs, cache):
    space = builtin_space("qoe_aware")
    evaluator = ExploreEvaluator(artifacts, jobs=jobs, cache=cache)
    scores = RandomSearch().search(
        space, evaluator.evaluate, BUDGET, random.Random(SEED)
    )
    return scores, evaluator


def test_explore_search_throughput(artifacts_ds02, tmp_path):
    print(f"\nExplore search — dataset 02, budget {BUDGET}, "
          f"{os.cpu_count()} CPU(s)")
    reference = None
    for jobs in JOB_COUNTS:
        cache = ResultCache(tmp_path / f"cache-j{jobs}")
        t0 = time.perf_counter()
        cold_scores, cold_eval = _search(artifacts_ds02, jobs, cache)
        cold_s = time.perf_counter() - t0
        if reference is None:
            reference = cold_scores
        else:
            # Worker count must never change the scores.
            assert cold_scores == reference
        assert cold_eval.replays_executed > 0

        t0 = time.perf_counter()
        warm_scores, warm_eval = _search(artifacts_ds02, jobs, cache)
        warm_s = time.perf_counter() - t0
        assert warm_scores == reference
        # A warm re-run is pure cache traffic: zero replays executed.
        assert warm_eval.replays_executed == 0
        print(f"  jobs={jobs}: cold {cold_s:6.2f}s "
              f"({BUDGET / cold_s:5.1f} cand/s)   "
              f"warm {warm_s:6.2f}s ({BUDGET / warm_s:6.1f} cand/s)   "
              f"speedup {cold_s / max(warm_s, 1e-9):5.1f}x")

"""Fig. 3 — ondemand vs oracle frequency trace around one input.

The paper's motivating snapshot: ondemand alternates between extreme
frequencies while the oracle raises once and holds just long enough.
"""

from repro.harness import figures


def test_fig3_snapshot(benchmark, sweep_ds02):
    snapshot = benchmark(figures.fig3_series, sweep_ds02)
    print("\nFig. 3 — ondemand vs oracle around one interaction")
    print(figures.render_fig3(snapshot))

    assert snapshot.input_time_s < snapshot.serviced_time_s
    governor_freqs = {ghz for _t, ghz in snapshot.governor_series}
    oracle_freqs = {ghz for _t, ghz in snapshot.oracle_series}
    # Shape: ondemand uses multiple levels incl. the maximum; the oracle
    # holds fewer, lower levels around the lag (its base + lag choice).
    assert len(governor_freqs) >= 2
    assert max(governor_freqs) == 2.1504
    assert max(oracle_freqs) <= max(governor_freqs)
    assert len(oracle_freqs) <= len(governor_freqs)

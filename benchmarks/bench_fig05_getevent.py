"""Fig. 5 — the getevent trace format.

Prints the first tap's raw event lines (the paper's example) and measures
codec throughput over a whole recorded workload trace.
"""

from repro.harness import figures
from repro.replay.getevent import format_trace, parse_trace


def test_fig5_excerpt_and_codec(benchmark, artifacts_ds02):
    trace = artifacts_ds02.trace
    text = format_trace(trace.events)

    parsed = benchmark(parse_trace, text)

    print("\nFig. 5 — getevent excerpt (first tap)")
    for line in figures.fig5_lines(artifacts_ds02):
        print("  " + line)
    print(f"codec roundtrip over {len(parsed)} events")

    assert parsed == trace.events
    lines = figures.fig5_lines(artifacts_ds02)
    # The shape of the paper's figure: ABS triples ending in a SYN report
    # and a tracking-id release rendered as ffffffff somewhere in the tap.
    assert any(line.endswith("ffffffff") for line in lines)
    assert any("0003 0039" in line for line in lines)

"""Fig. 7 + §II-D — the suggester on the Gallery-launch lag.

Reproduces the paper's worked example: the Gallery loading its screen
element by element at the lowest frequency, the 0/1 change string, 8-10
suggested ending frames, and the ~20x reduction in frames a user must
inspect.
"""

import pytest

from repro.harness import figures


@pytest.fixture(scope="module")
def demo():
    return figures.fig7_suggester_demo()


def test_fig7_suggester_demo(benchmark, demo):
    result = benchmark.pedantic(
        figures.fig7_suggester_demo, rounds=2, iterations=1
    )
    print("\nFig. 7 — suggester on the Gallery launch at 0.30 GHz")
    print(figures.render_fig7(result))

    # Paper: "leads to 8 to 10 suggested images".
    assert 7 <= len(result.suggested_frames) <= 11
    # Paper: "the number of frames the user has to look at is therefore
    # reduced by a factor of 20".
    assert result.reduction_factor > 15
    # The ground-truth ending is among (and is the last of) the candidates.
    assert result.ground_truth_end_frame in result.suggested_frames


def test_fig7_loading_duration_matches_paper(benchmark, demo):
    """Paper: 'Loading the Gallery takes about 200 frames at the lowest
    CPU frequency (about 6 seconds at 30 fps)'."""
    benchmark(figures.collapse_change_string, demo.change_string)
    loading_frames = demo.ground_truth_end_frame - demo.input_frame
    print(f"\nGallery load at 0.30 GHz: {loading_frames} frames "
          f"({loading_frames / 30:.1f} s)")
    assert 150 <= loading_frames <= 250

"""Fig. 10 — input classification for all datasets.

Taps dominate, swipes appear where the workloads scroll, and a small share
of inputs are spurious (they hit nothing).  The bench also measures the
offline gesture-decode used to classify a trace.
"""

from repro.analysis.classify import classify_workload, decode_gestures
from repro.harness import figures


def test_fig10_classification(benchmark, artifacts_by_dataset):
    artifacts_list = list(artifacts_by_dataset.values())
    sample = artifacts_list[0]

    result = benchmark(
        classify_workload, sample.name, sample.trace, sample.database
    )

    print("\nFig. 10 — input classification")
    print(figures.render_fig10(artifacts_list))

    assert result.total_inputs == sample.input_count
    for artifacts in artifacts_list:
        classification = artifacts.classification
        # Paper: "The tap inputs are dominating due to the nature of our
        # workloads" — true for every dataset except the scroll-heavy 05.
        if artifacts.name != "05":
            assert classification.taps > classification.swipes
        # Spurious lags exist but are the minority.
        assert 0 < classification.spurious_lags < classification.actual_lags


def test_fig10_counts_near_paper(benchmark, artifacts_by_dataset):
    paper_counts = {"01": 68, "02": 149, "03": 76, "04": 114, "05": 83}
    benchmark(artifacts_by_dataset["01"].classification.as_row)
    print("\nEvent counts vs paper:")
    for name, artifacts in artifacts_by_dataset.items():
        measured = artifacts.classification.total_inputs
        expected = paper_counts[name]
        print(f"  dataset {name}: {measured} (paper {expected})")
        assert abs(measured - expected) / expected < 0.25


def test_decode_throughput(benchmark, artifacts_by_dataset):
    trace = artifacts_by_dataset["02"].trace
    gestures = benchmark(decode_gestures, trace)
    assert len(gestures) == artifacts_by_dataset["02"].input_count

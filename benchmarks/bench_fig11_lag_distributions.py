"""Fig. 11 — violin plots of lag durations per configuration (Dataset 01).

The paper's observations: lags shrink as the fixed frequency rises and
"settle on an average lag length the higher the frequency gets";
conservative's lags are significantly longer while interactive and
ondemand are close together; the longest lags (~12-13 s at the lowest
frequency) come from saving edited images to the SD card.
"""

from repro.harness import figures
from repro.metrics.distribution import kernel_density, summarize_lags


def test_fig11_distributions(benchmark, sweep_ds01):
    durations = sweep_ds01.pooled_lag_durations_ms("ondemand")
    summary = benchmark(summarize_lags, durations)

    print("\nFig. 11 — lag duration distributions (Dataset 01)")
    print(figures.render_fig11(sweep_ds01))

    rows = figures.fig11_rows(sweep_ds01)
    means = [rows[label].mean_ms for label in rows if "GHz" in label]
    # Monotone-ish decrease of mean lag with frequency.
    assert means[0] == max(means)
    assert means[-1] == min(means)
    # Conservative lags longer than interactive and ondemand.
    assert rows["conservative"].mean_ms > rows["interactive"].mean_ms
    assert rows["conservative"].mean_ms > rows["ondemand"].mean_ms
    # The occasional very long save lag at the lowest frequency.
    assert rows["0.30 GHz"].max_ms > 8_000
    assert summary.count == len(durations)


def test_fig11_ondemand_kernel_density(benchmark, sweep_ds01):
    """The inset kernel plot: 'with an average of about 500ms, most of
    the lags are rather short'."""
    durations = sweep_ds01.pooled_lag_durations_ms("ondemand")
    grid, density = benchmark(kernel_density, durations)
    mode_ms = float(grid[density.argmax()])
    mean_ms = sum(durations) / len(durations)
    print(f"\nondemand lag KDE: mode={mode_ms:.0f} ms mean={mean_ms:.0f} ms")
    assert mode_ms < 1_500
    assert mean_ms < 1_500

"""Fig. 12 — user irritation and energy per configuration (Dataset 02).

The paper's key per-dataset result: irritation shrinks rapidly with
frequency; energy is U-shaped over the fixed frequencies with its optimum
at 0.96 GHz due to race-to-idle; conservative saves energy but irritates;
interactive and ondemand stay within ~1 s of the oracle's irritation but
burn ~20-35% more energy.
"""

from repro.harness import figures
from repro.harness.experiment import replay_run


def test_fig12_rows(benchmark, sweep_ds02, artifacts_ds02):
    # The workhorse being timed: one full replay+capture+match run.
    result = benchmark.pedantic(
        lambda: replay_run(artifacts_ds02, "ondemand", rep=0),
        rounds=2,
        iterations=1,
    )
    print("\nFig. 12 — irritation and energy per configuration (Dataset 02)")
    print(figures.render_fig12(sweep_ds02))

    oracle = sweep_ds02.oracle
    norm = sweep_ds02.energy_normalised_to_oracle
    irritation = sweep_ds02.mean_irritation_s

    # --- energy shape (paper right graph) --------------------------------
    fixed = [f"fixed:{khz}" for khz in sweep_ds02.table.frequencies_khz]
    energies = [norm(config) for config in fixed]
    # U-shape with minimum at 0.96 GHz, ~0.85x oracle (paper: 0.85-0.86).
    best_index = energies.index(min(energies))
    assert sweep_ds02.table.frequencies_khz[best_index] == 960_000
    assert 0.75 < min(energies) < 0.95
    # Highest fixed frequency ~1.4-1.6x oracle (paper: 1.47).
    assert 1.3 < energies[-1] < 1.7
    # Conservative cheaper than oracle; interactive/ondemand ~1.2-1.4x.
    assert norm("conservative") < 1.0
    assert 1.1 < norm("interactive") < 1.5
    assert 1.1 < norm("ondemand") < 1.5

    # --- irritation shape (paper left graph) ------------------------------
    assert irritation("fixed:300000") > 20  # lowest frequency irritates
    assert irritation("fixed:2150400") < 0.5
    assert oracle.irritation().total_seconds < 0.5
    # Conservative is by far the most irritating governor.
    assert irritation("conservative") > 10
    assert irritation("interactive") < 1.0
    assert irritation("ondemand") < 1.5
    assert result.dynamic_energy_j > 0

"""Fig. 13 — the energy/irritation plane (Dataset 02).

The paper's reading of this scatter: interactive and ondemand hug the
zero-irritation baseline but waste energy; conservative is cheap but
irritating; and mid fixed frequencies (1.50/1.57 GHz) beat all standard
governors, being only slightly more irritating than the oracle.
"""

from repro.harness import figures


def test_fig13_scatter(benchmark, sweep_ds02):
    points = benchmark(figures.fig13_rows, sweep_ds02)
    print("\nFig. 13 — energy vs irritation (Dataset 02)")
    print(figures.render_fig13(sweep_ds02))

    by_label = {label: (energy, irritation) for label, _k, energy, irritation in points}

    oracle_energy, oracle_irritation = by_label["oracle"]
    # Oracle and the fastest frequency sit on the irritation base line.
    assert oracle_irritation < 0.5
    assert by_label["2.15 GHz"][1] < 0.5

    # Mid fixed frequencies dominate every governor on energy while being
    # only slightly more irritating than the oracle.
    for mid in ("1.50 GHz", "1.57 GHz"):
        mid_energy, mid_irritation = by_label[mid]
        for governor in ("interactive", "ondemand"):
            assert mid_energy < by_label[governor][0]
        assert mid_irritation < 2.0

    # Conservative: cheapest governor, most irritating.
    conservative_energy, conservative_irritation = by_label["conservative"]
    assert conservative_energy < by_label["interactive"][0]
    assert conservative_irritation > by_label["interactive"][1]
    assert conservative_irritation > by_label["ondemand"][1]

"""Fig. 14 — energy and irritation summary across all five datasets.

Paper: "The Conservative governor's energy consumption is on average 8%
better than the oracle.  Interactive and Ondemand need on average 22% and
20% more energy. … Conservative … needs on average 36 seconds longer for
all lags together.  The latter two … need on average only about 1 second
more."
"""

from repro.harness import figures
from repro.harness.sweep import GOVERNORS


def test_fig14_summary(benchmark, sweeps_by_dataset):
    energy_rows, irritation_rows = benchmark(
        figures.fig14_rows, sweeps_by_dataset
    )
    print("\nFig. 14 — summary over datasets 01-05")
    print(figures.render_fig14(sweeps_by_dataset))

    averages = {
        row[0]: float(row[-1]) for row in energy_rows
    }
    irritation_avg = {row[0]: float(row[-1]) for row in irritation_rows}

    # Energy ordering: conservative < interactive/ondemand; conservative
    # at or below the oracle on average (paper: 0.92x).
    assert averages["conservative"] < averages["interactive"]
    assert averages["conservative"] < averages["ondemand"]
    assert averages["conservative"] < 1.05
    # Interactive/ondemand ~1.1-1.4x oracle (paper: 1.22/1.20).
    for governor in ("interactive", "ondemand"):
        assert 1.05 < averages[governor] < 1.45

    # Irritation ordering: conservative is far worse than the other two,
    # which stay within ~1 s of the oracle (paper: 36 s vs ~1 s).
    assert irritation_avg["conservative"] > 4 * max(
        irritation_avg["interactive"], irritation_avg["ondemand"]
    )
    assert irritation_avg["interactive"] < 1.5
    assert irritation_avg["ondemand"] < 1.5
    assert set(averages) == set(GOVERNORS)

"""Fleet scaling — parallel sweep speedup and warm-cache re-run time.

The study grid is embarrassingly parallel, so the fleet engine's wall
clock should fall with worker count (up to the machine's core count) and
a warm-cache re-run should skip every completed cell.  This bench times
one dataset's 17-configuration sweep at 1/2/4/8 workers, then a cold
vs. warm cached run, verifying along the way that every path produces
results bit-identical to the serial reference.
"""

from __future__ import annotations

import os
import time

from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import enumerate_sweep_specs
from repro.harness.sweep import sweep_configs

JOB_COUNTS = (1, 2, 4, 8)


def _specs(artifacts):
    return enumerate_sweep_specs(
        artifacts.name,
        sweep_configs(),
        reps=1,
        master_seed=artifacts.recording_master_seed,
    )


def test_fleet_scaling(artifacts_ds02, tmp_path):
    specs = _specs(artifacts_ds02)
    timings: dict[int, float] = {}
    reference = None
    print(f"\nFleet scaling — dataset 02, {len(specs)} runs, "
          f"{os.cpu_count()} CPU(s)")
    for jobs in JOB_COUNTS:
        engine = FleetEngine(jobs=jobs)
        t0 = time.perf_counter()
        results = engine.run(artifacts_ds02, specs)
        elapsed = time.perf_counter() - t0
        timings[jobs] = elapsed
        if reference is None:
            reference = results
        else:
            # Any worker count must be bit-identical to the serial path.
            assert results == reference
        speedup = timings[1] / elapsed
        print(f"  jobs={jobs}: {elapsed:6.2f}s  speedup {speedup:4.2f}x")

    cache = ResultCache(tmp_path / "cache")
    cold_engine = FleetEngine(jobs=4, cache=cache)
    t0 = time.perf_counter()
    cold = cold_engine.run(artifacts_ds02, specs)
    cold_s = time.perf_counter() - t0
    assert cold == reference
    assert cold_engine.last_stats.executed == len(specs)

    warm_engine = FleetEngine(jobs=4, cache=cache)
    t0 = time.perf_counter()
    warm = warm_engine.run(artifacts_ds02, specs)
    warm_s = time.perf_counter() - t0
    print(f"  cache: cold {cold_s:.2f}s, warm {warm_s:.2f}s "
          f"({cold_s / max(warm_s, 1e-9):.0f}x)")

    # A warm re-run skips every completed cell and returns identical data.
    assert warm_engine.last_stats.executed == 0
    assert warm_engine.last_stats.cache_hits == len(specs)
    assert warm == reference
    assert warm_s < cold_s

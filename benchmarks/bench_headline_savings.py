"""The abstract's headline numbers.

Paper: "energy savings of up to 27% are possible, whilst delivering a user
experience that is better than that provided by the standard ANDROID
frequency governor" and "it is possible to save 47% energy with
performance that is indistinguishable from permanently running the CPU at
the highest frequency".

Our simulated substrate reproduces the *structure* of both claims: the
oracle saves double-digit percentages against the stock Android governor
(interactive) and ~30% or more against the pinned maximum, at equal or
better measured irritation.
"""

from repro.harness import figures


def test_headline_savings(benchmark, sweeps_by_dataset):
    savings = benchmark(figures.headline_savings, sweeps_by_dataset)

    print("\nHeadline savings (oracle vs …)")
    for key, value in savings.items():
        print(f"  {key}: {100 * value:.0f}%")

    # vs the standard Android governor (paper: up to 27%).
    assert savings["vs_best_governor_max"] > 0.15
    assert savings["vs_best_governor_avg"] > 0.08
    # vs pinning the maximum frequency (paper: 47%).
    assert savings["vs_max_frequency_max"] > 0.28
    assert savings["vs_max_frequency_avg"] > 0.22

    # And the oracle is never more irritating than either comparator.
    for sweep in sweeps_by_dataset.values():
        oracle_irritation = sweep.oracle.irritation().total_seconds
        assert oracle_irritation <= sweep.mean_irritation_s("interactive") + 0.5
        assert (
            oracle_irritation
            <= sweep.mean_irritation_s(f"fixed:{sweep.table.max_khz}") + 0.5
        )

"""Extension — jank (dropped-frame) analysis across configurations.

§VI future work: workloads "dominated by Jank type lags where frames are
dropped when the processor is too busy to keep up with the load".  The
analyzer counts fully-busy vsync intervals; this bench shows dropped
frames falling monotonically as the fixed frequency rises.
"""

from repro.metrics.jank import analyze_jank


def test_jank_falls_with_frequency(benchmark, sweep_ds01):
    slow = sweep_ds01.runs["fixed:300000"][0]
    result = benchmark(
        analyze_jank, slow.busy_timeline, slow.duration_us, slow.lag_profile
    )

    rows = {}
    for config in ("fixed:300000", "fixed:960000", "fixed:2150400",
                   "conservative", "interactive", "ondemand"):
        run = sweep_ds01.runs[config][0]
        jank = analyze_jank(run.busy_timeline, run.duration_us, run.lag_profile)
        rows[config] = jank

    print("\nJank analysis (Dataset 01)")
    for config, jank in rows.items():
        print(f"  {config:>14s}: {jank.frames_janky:5d} dropped frames "
              f"({100 * jank.jank_ratio:5.2f}%), "
              f"{jank.lag_frames_janky:5d} inside lags")

    assert result.frames_janky > 0
    assert (
        rows["fixed:300000"].frames_janky
        > rows["fixed:960000"].frames_janky
        > rows["fixed:2150400"].frames_janky
    )
    # Governors that race to high frequencies drop far fewer frames than
    # the pinned minimum.
    assert rows["interactive"].frames_janky < rows["fixed:300000"].frames_janky
    assert rows["ondemand"].frames_janky < rows["fixed:300000"].frames_janky

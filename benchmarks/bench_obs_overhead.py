"""Disabled-observability overhead — the zero-overhead-when-off gate.

Every instrumentation site in the simulator is guarded by exactly one
predicate (``obs = self._obs`` + ``is not None``).  This bench holds the
subsystem to its contract: with ``REPRO_TRACE`` unset, the total cost of
those predicates must stay within 1% of a macro replay's wall time.

Raw enabled-vs-disabled wall-clock A/B is too noisy to gate at the 1%
level (run-to-run jitter on shared CI runners exceeds it), so the gate is
a *projection*: count how often the guarded sites actually fire during a
real replay (from an observed run's own counters), measure the cost of
one predicate in a tight loop, and assert ``hits x cost <= 1% of the
disabled replay's wall time``.  The raw A/B is printed for context.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q -s
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.harness.experiment import record_workload, replay_run
from repro.workloads.datasets import dataset

DATASET = "03"
CONFIG = "interactive"
REPLAY_REPEATS = 5
PREDICATE_LOOPS = 1_000_000
OVERHEAD_BUDGET = 0.01  # <=1% of macro replay wall time

# Counters incremented once per emit call — i.e. once per time a guarded
# site actually fired.  (Amount-valued counters like timer.ticks_elided
# are excluded: they count ticks, not site visits.)
PER_EMIT_COUNTERS = (
    "governor.starts",
    "governor.input_boosts",
    # Attribution decision-context sites: one governor.decisions increment
    # per decision emit, one governor.load_samples per load emit.  (The
    # per-kind governor.decisions.<kind> sub-counters are the same site
    # visits again — including them would double-count.)
    "governor.decisions",
    "governor.load_samples",
    "timer.parks",
    "timer.unparks",
    "cpufreq.transitions",
    "frames.composed",
    "match.windows_opened",
    "match.lags_matched",
)


class _Site:
    """The exact shape of an instrumented object's disabled hot path."""

    __slots__ = ("_obs",)

    def __init__(self) -> None:
        self._obs = obs.active()  # None: no session installed


def _best_replay_s(artifacts) -> float:
    best = float("inf")
    for _ in range(REPLAY_REPEATS):
        start = time.perf_counter()
        replay_run(artifacts, CONFIG)
        best = min(best, time.perf_counter() - start)
    return best


def _site_hits(artifacts) -> int:
    """How often guarded sites fired during one real replay."""
    session = obs.ObsSession.for_run()
    with obs.observed(session):
        record = replay_run(artifacts, CONFIG)
    counters = record.obs["counters"]
    hits = sum(counters.get(name, 0) for name in PER_EMIT_COUNTERS)
    return hits + 1  # + the single segments_streamed call at finalize


def _per_predicate_s() -> float:
    """Cost of one ``self._obs``-load + ``is not None`` test."""
    site = _Site()
    sink = 0
    start = time.perf_counter()
    for _ in range(PREDICATE_LOOPS):
        observer = site._obs
        if observer is not None:
            sink += 1
    guarded = time.perf_counter() - start
    assert sink == 0
    start = time.perf_counter()
    for _ in range(PREDICATE_LOOPS):
        pass
    empty = time.perf_counter() - start
    return max(0.0, guarded - empty) / PREDICATE_LOOPS


@pytest.fixture(scope="module")
def artifacts():
    return record_workload(dataset(DATASET))


def test_disabled_instrumentation_within_one_percent(artifacts):
    assert obs.active() is None, "bench requires no installed session"

    disabled_s = _best_replay_s(artifacts)
    hits = _site_hits(artifacts)
    predicate_s = _per_predicate_s()
    projected_s = hits * predicate_s
    ratio = projected_s / disabled_s

    print(f"\nObservability overhead — dataset {DATASET}, {CONFIG}")
    print(f"  disabled replay (best of {REPLAY_REPEATS}): "
          f"{disabled_s * 1e3:8.2f} ms")
    print(f"  guarded sites fired:            {hits:10d}")
    print(f"  per-predicate cost:             {predicate_s * 1e9:10.1f} ns")
    print(f"  projected disabled overhead:    {projected_s * 1e6:10.1f} us "
          f"({100 * ratio:.3f}% of replay)")
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled instrumentation projected at {100 * ratio:.2f}% of macro "
        f"replay wall time (budget {100 * OVERHEAD_BUDGET:.0f}%)"
    )


def test_enabled_ab_for_context(artifacts, capsys):
    """Informational: raw enabled-vs-disabled wall times (not gated)."""
    disabled_s = _best_replay_s(artifacts)
    best_enabled = float("inf")
    for _ in range(REPLAY_REPEATS):
        start = time.perf_counter()
        with obs.observed(obs.ObsSession.for_run()):
            replay_run(artifacts, CONFIG)
        best_enabled = min(best_enabled, time.perf_counter() - start)
    with capsys.disabled():
        print(f"\n  enabled (metrics+recorder) replay: "
              f"{best_enabled * 1e3:8.2f} ms vs disabled "
              f"{disabled_s * 1e3:8.2f} ms "
              f"({100 * (best_enabled / disabled_s - 1):+.1f}%)")

"""Extension — the paper's proposed QoE-aware governor, evaluated.

§VI: "We also plan to integrate our proposed user irritation metric into
the ANDROID display stack in order to make energy efficient frequency
governor decisions at runtime."  ``qoe_aware`` implements that idea
online; this bench runs it through the paper's own harness against the
stock governors and the oracle.
"""

from repro.harness.experiment import replay_run


def test_qoe_aware_beats_stock_governors(benchmark, sweep_ds02, artifacts_ds02):
    result = benchmark.pedantic(
        lambda: replay_run(artifacts_ds02, "qoe_aware"),
        rounds=2,
        iterations=1,
    )
    oracle = sweep_ds02.oracle

    print("\nQoE-aware governor vs stock (Dataset 02)")
    print(f"  {'oracle':>12s}: {oracle.energy_j:7.2f} J  "
          f"{oracle.irritation().total_seconds:6.2f} s")
    print(f"  {'qoe_aware':>12s}: {result.dynamic_energy_j:7.2f} J  "
          f"{result.irritation_seconds():6.2f} s")
    for governor in ("conservative", "interactive", "ondemand"):
        energy = sweep_ds02.mean_energy_j(governor)
        irritation = sweep_ds02.mean_irritation_s(governor)
        print(f"  {governor:>12s}: {energy:7.2f} J  {irritation:6.2f} s")

    # Cheaper than interactive and ondemand …
    assert result.dynamic_energy_j < sweep_ds02.mean_energy_j("interactive")
    assert result.dynamic_energy_j < sweep_ds02.mean_energy_j("ondemand")
    # … while staying near the oracle's irritation (within a few seconds
    # over a 10-minute workload), far better than conservative.
    assert result.irritation_seconds() < 5.0
    assert (
        result.irritation_seconds()
        < sweep_ds02.mean_irritation_s("conservative") / 3
    )

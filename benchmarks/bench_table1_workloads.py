"""Table I — the workload suite.

Regenerates the dataset descriptions and measures the cost of recording a
complete workload (the artefact the whole study builds on).
"""

from repro.harness import figures
from repro.harness.experiment import record_workload
from repro.workloads import dataset


def test_table1_descriptions(benchmark):
    rows = benchmark(figures.table1_rows)
    print("\nTable I — datasets\n" + figures.render_table1())
    assert len(rows) == 5


def test_record_one_workload(benchmark, artifacts_by_dataset):
    """Time the full record+annotate pipeline for one 10-minute dataset."""
    artifacts = benchmark.pedantic(
        lambda: record_workload(dataset("03")), rounds=2, iterations=1
    )
    print("\nRecorded dataset 03: "
          f"{artifacts.input_count} inputs, "
          f"{artifacts.database.lag_count} lags")
    for name, reference in artifacts_by_dataset.items():
        target = reference.spec.target_inputs
        measured = reference.input_count
        print(f"  dataset {name}: {measured} inputs "
              f"(paper: {target}) lags={reference.database.lag_count}")
        assert abs(measured - target) / target < 0.25

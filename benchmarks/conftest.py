"""Shared state for the benchmark suite.

Recording a dataset and sweeping its 17 configurations is the expensive
setup most benchmarks share; both are cached per session so each figure's
bench times only its own work.
"""

from __future__ import annotations

import pytest

from repro.harness.experiment import record_workload
from repro.harness.sweep import run_sweep
from repro.workloads import dataset

BENCH_REPS = 2  # reps per configuration (the paper uses 5)


@pytest.fixture(scope="session")
def artifacts_by_dataset():
    """Recorded artifacts for the five 10-minute datasets."""
    return {
        name: record_workload(dataset(name))
        for name in ("01", "02", "03", "04", "05")
    }


@pytest.fixture(scope="session")
def sweeps_by_dataset(artifacts_by_dataset):
    """Full 17-configuration sweeps for all five datasets."""
    return {
        name: run_sweep(artifacts, reps=BENCH_REPS)
        for name, artifacts in artifacts_by_dataset.items()
    }


@pytest.fixture(scope="session")
def artifacts_ds01(artifacts_by_dataset):
    return artifacts_by_dataset["01"]


@pytest.fixture(scope="session")
def artifacts_ds02(artifacts_by_dataset):
    return artifacts_by_dataset["02"]


@pytest.fixture(scope="session")
def sweep_ds01(sweeps_by_dataset):
    return sweeps_by_dataset["01"]


@pytest.fixture(scope="session")
def sweep_ds02(sweeps_by_dataset):
    return sweeps_by_dataset["02"]

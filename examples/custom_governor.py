"""Prototyping a new governor against the paper's methodology.

The paper's conclusion proposes feeding interaction-lag awareness into the
governor ("integrate our proposed user irritation metric into the ANDROID
display stack").  ``repro.governors.qoe_aware`` implements that idea:
boost on input, hold while the run queue drains, settle at the most
energy-efficient OPP instead of the minimum.

This example also shows how to register a brand-new governor and evaluate
it with the exact harness the paper evaluates stock governors with.

Run:  python examples/custom_governor.py [--reps N]
"""

import argparse

from repro.device.cpufreq import RELATION_HIGH
from repro.governors.base import Governor, register_governor
from repro.harness import record_workload, replay_run
from repro.harness.sweep import compose_oracle_from_runs, run_sweep
from repro.workloads import dataset


class NaiveBoostGovernor(Governor):
    """A deliberately crude baseline: max on input, never comes down."""

    name = "naive_boost"

    def _on_start(self) -> None:
        if self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                node.add_observer(self._on_input)

    def _on_stop(self) -> None:
        if self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                try:
                    node.remove_observer(self._on_input)
                except ValueError:
                    pass

    def _on_input(self, _event) -> None:
        if self.active:
            self.policy.set_target(self.policy.max_khz, RELATION_HIGH)


register_governor("naive_boost", NaiveBoostGovernor)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--dataset", default="03")
    args = parser.parse_args()

    artifacts = record_workload(dataset(args.dataset))
    print(f"dataset {args.dataset}: {artifacts.database.lag_count} lags")

    # Full sweep gives us the fixed-frequency runs the oracle needs.
    sweep = run_sweep(artifacts, reps=args.reps)
    oracle = sweep.oracle

    print(f"\n{'governor':>14s} {'energy J':>9s} {'vs oracle':>9s} "
          f"{'irritation s':>12s}")
    print(f"{'oracle':>14s} {oracle.energy_j:9.2f} {'1.00':>9s} "
          f"{oracle.irritation().total_seconds:12.2f}")
    for name in ("conservative", "interactive", "ondemand"):
        energy = sweep.mean_energy_j(name)
        irritation = sweep.mean_irritation_s(name)
        print(f"{name:>14s} {energy:9.2f} {energy / oracle.energy_j:9.2f} "
              f"{irritation:12.2f}")
    for name in ("qoe_aware", "naive_boost"):
        result = replay_run(artifacts, name)
        energy = result.dynamic_energy_j
        print(f"{name:>14s} {energy:9.2f} {energy / oracle.energy_j:9.2f} "
              f"{result.irritation_seconds():12.2f}")


if __name__ == "__main__":
    main()

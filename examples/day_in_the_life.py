"""The 24-hour workload (paper §III-A, Fig. 10's right-most bars).

One user recorded a full day: short bursts of email, news, messaging,
music and games separated by long pocketed-phone idle periods.  This
example records that day, classifies its inputs, and replays it under the
interactive governor — demonstrating that the run-length-encoded video
and event-driven simulation keep a day-long workload tractable.

Run:  python examples/day_in_the_life.py [--hours N]
"""

import argparse
import time

from repro.core.rng import RngStreams
from repro.core.simtime import hours, seconds
from repro.harness.experiment import record_workload, replay_run
from repro.workloads.datasets import DatasetSpec, dataset


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--hours",
        type=float,
        default=24.0,
        help="shorten the day for a quicker demo",
    )
    args = parser.parse_args()

    spec = dataset("24hour")
    if args.hours != 24.0:
        spec = DatasetSpec(
            name=spec.name,
            description=spec.description,
            duration_us=hours(args.hours),
            plan_factory=spec.plan_factory,
            target_inputs=int(spec.target_inputs * args.hours / 24),
        )

    started = time.time()
    artifacts = record_workload(spec)
    classification = artifacts.classification
    print(f"recorded {args.hours:.0f}h of use in {time.time() - started:.1f}s "
          "wall time")
    print(f"  inputs:   {classification.total_inputs} "
          f"({classification.taps} taps, {classification.swipes} swipes)")
    print(f"  lags:     {classification.actual_lags} actual, "
          f"{classification.spurious_lags} spurious")

    started = time.time()
    result = replay_run(artifacts, "interactive")
    print(f"replayed under interactive in {time.time() - started:.1f}s wall")
    print(f"  energy:     {result.dynamic_energy_j:.1f} J dynamic "
          f"({result.energy_j:.1f} J total)")
    print(f"  busy time:  {result.busy_us / 1e6:.0f}s of "
          f"{result.duration_us / 1e6:.0f}s")
    print(f"  irritation: {result.irritation_seconds():.2f}s over "
          f"{len(result.lag_profile)} lags")


if __name__ == "__main__":
    main()

"""The paper's governor study on one dataset (Figs. 3, 11, 12, 13).

Records Dataset 02 (the Logo Quiz workload), runs the 17-configuration
sweep, composes the oracle, and prints the evaluation tables.  With
``--reps 5`` this is exactly the paper's 85-run protocol for one workload.

Run:  python examples/governor_study.py [--reps N] [--dataset 02]
"""

import argparse
import time

from repro.harness import figures, record_workload
from repro.harness.sweep import run_sweep
from repro.workloads import dataset


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dataset", default="02")
    parser.add_argument("--reps", type=int, default=2)
    args = parser.parse_args()

    started = time.time()
    artifacts = record_workload(dataset(args.dataset))
    print(f"dataset {args.dataset}: {artifacts.input_count} inputs, "
          f"{artifacts.database.lag_count} lags")

    sweep = run_sweep(artifacts, reps=args.reps)
    oracle = sweep.oracle
    print(f"sweep of {len(sweep.configs())} configs x {args.reps} reps in "
          f"{time.time() - started:.1f}s wall\n")

    print("Fig. 3 — ondemand vs oracle around one interaction")
    print(figures.render_fig3(figures.fig3_series(sweep)))
    print()
    print("Fig. 11 — lag-duration distributions")
    print(figures.render_fig11(sweep))
    print()
    print("Fig. 12 — irritation and energy per configuration")
    print(figures.render_fig12(sweep))
    print()
    print("Fig. 13 — energy vs irritation scatter")
    print(figures.render_fig13(sweep))
    print()
    print(f"oracle: {oracle.energy_j:.2f} J, base frequency "
          f"{oracle.base_khz / 1e6:.2f} GHz, irritation "
          f"{oracle.irritation().total_seconds:.2f}s")


if __name__ == "__main__":
    main()

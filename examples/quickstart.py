"""Quickstart: the whole measurement pipeline on a hand-made session.

Builds the simulated device, records a short interactive session while
filming the screen, annotates it once (Fig. 4 part A), then replays it at
two fixed frequencies and compares the matcher's lag profiles and the
user-irritation metric (part B).

Run:  python examples/quickstart.py
"""

from repro.analysis import AutoAnnotator, Matcher
from repro.apps import install_standard_apps
from repro.capture import CaptureCard
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.replay import GeteventRecorder, ReplayAgent
from repro.uifw.view import WindowManager


def build_device(governor: str) -> tuple[Device, WindowManager]:
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor(governor)
    return device, wm


def main() -> None:
    # ---- record once, on a device pinned at the lowest frequency ----------
    device, wm = build_device("fixed:300000")
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    card = CaptureCard(device.display)
    card.start(device.engine.now)

    launcher = wm.app("launcher")
    gallery = wm.app("gallery")
    touch = device.touchscreen
    touch.schedule_tap(seconds(1), launcher.tap_target("icon:gallery"))
    device.engine.schedule_at(
        seconds(11),
        lambda: touch.schedule_tap(seconds(12), gallery.tap_target("album:3")),
    )
    device.engine.schedule_at(
        seconds(17),
        lambda: touch.schedule_tap(seconds(18), gallery.tap_target("photo:2")),
    )
    device.run_for(seconds(24))

    trace = recorder.stop()
    video = card.stop(device.engine.now)
    print(f"recorded {len(trace)} input events, {video.frame_count} frames "
          f"({video.segment_count} distinct)")

    # ---- annotate once ------------------------------------------------------
    database = AutoAnnotator("quickstart").annotate(video, wm.journal)
    print(f"annotated {database.lag_count} lags "
          f"({database.spurious_count} spurious inputs)")

    # ---- replay at two fixed frequencies and compare ------------------------
    profiles = {}
    for khz in (300_000, 2_150_400):
        replay_device, _replay_wm = build_device(f"fixed:{khz}")
        agent = ReplayAgent(replay_device.engine, replay_device.input_subsystem)
        agent.schedule(trace)
        replay_card = CaptureCard(replay_device.display)
        replay_card.start(replay_device.engine.now)
        replay_device.run_for(seconds(26))
        replay_video = replay_card.stop(replay_device.engine.now)
        profiles[khz] = Matcher(database).match(replay_video)

    print(f"\n{'lag':40s} {'0.30 GHz':>10s} {'2.15 GHz':>10s}")
    slow, fast = profiles[300_000], profiles[2_150_400]
    for lag_slow, lag_fast in zip(slow.lags, fast.lags):
        print(f"{lag_slow.label:40s} {lag_slow.duration_ms:8.0f}ms "
              f"{lag_fast.duration_ms:8.0f}ms")

    for khz, profile in profiles.items():
        result = profile.irritation()
        print(f"\nirritation at {khz / 1e6:.2f} GHz: "
              f"{result.total_seconds:.2f}s over {result.lag_count} lags "
              f"({result.irritating_lag_count} irritating)")


if __name__ == "__main__":
    main()

"""Inside the markup pipeline: suggester, masks and occurrence matching.

Walks through the three analysis mechanisms the paper's §II describes:

1. the Fig. 7 scenario — the Gallery launch at the lowest frequency and
   the 0/1 change string the suggester builds from it;
2. mask handling (Fig. 8) — the status-bar clock changes between runs and
   must be masked out of every annotation;
3. the second-occurrence case — Pulse's pull-to-refresh ends on a screen
   identical to the one the input arrived on, so the matcher must skip
   the first match.

Run:  python examples/suggester_walkthrough.py
"""

from repro.analysis import AutoAnnotator, Matcher
from repro.apps import install_standard_apps
from repro.capture import CaptureCard
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.harness.figures import collapse_change_string, fig7_suggester_demo
from repro.replay import GeteventRecorder, ReplayAgent
from repro.uifw.view import WindowManager


def suggester_demo() -> None:
    print("== Fig. 7: the suggester on a Gallery launch at 0.30 GHz ==")
    demo = fig7_suggester_demo()
    print(f"  input at frame {demo.input_frame}")
    print(f"  change string: {collapse_change_string(demo.change_string)}")
    print(f"  {len(demo.suggested_frames)} suggested endings: "
          f"{demo.suggested_frames}")
    print(f"  ground truth ending: frame {demo.ground_truth_end_frame}")
    print(f"  reduction factor: {demo.reduction_factor:.1f}x "
          "(the paper reports ~20x)\n")


def occurrence_demo() -> None:
    print("== Fig. 8 + second occurrence: Pulse pull-to-refresh ==")
    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor("fixed:300000")
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    card = CaptureCard(device.display)
    card.start(device.engine.now)

    launcher = wm.app("launcher")
    pulse = wm.app("pulse")
    device.touchscreen.schedule_tap(seconds(1), launcher.tap_target("icon:pulse"))

    def refresh() -> None:
        start, end, duration = pulse.swipe_target("pull-refresh")
        device.touchscreen.schedule_swipe(device.engine.now, start, end, duration)

    device.engine.schedule_at(seconds(10), refresh)
    device.run_for(seconds(18))
    trace = recorder.stop()
    video = card.stop(device.engine.now)

    database = AutoAnnotator("occurrence-demo").annotate(video, wm.journal)
    refresh_annotation = database.annotations[-1]
    print(f"  lag: {refresh_annotation.label}")
    print(f"  annotation mask rects: {refresh_annotation.mask_rects}")
    print(f"  stored occurrence: {refresh_annotation.occurrence} "
          "(the ending equals the beginning, so the matcher takes the 2nd)")

    # Replay at a different frequency: the matcher still finds every lag
    # despite the clock and the refresh ending that mimics its beginning.
    replay_device = Device()
    wm2 = WindowManager(replay_device)
    install_standard_apps(wm2)
    replay_device.set_governor("fixed:1497600")
    agent = ReplayAgent(replay_device.engine, replay_device.input_subsystem)
    agent.schedule(trace)
    card2 = CaptureCard(replay_device.display)
    card2.start(replay_device.engine.now)
    replay_device.run_for(seconds(18))
    profile = Matcher(database).match(card2.stop(replay_device.engine.now))
    for lag in profile.lags:
        print(f"  measured at 1.50 GHz: {lag.label}: {lag.duration_ms:.0f} ms")


if __name__ == "__main__":
    suggester_demo()
    occurrence_demo()

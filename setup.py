"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs are unavailable; ``pip install -e .`` uses this file via the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""repro — reproduction of Seeker et al., "Measuring QoE of Interactive
Workloads and Characterising Frequency Governors on Mobile Devices"
(IISWC 2014).

The public API re-exports the main entry points of each subsystem; see
README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.device.device import Device, DeviceConfig

__version__ = "0.1.0"

__all__ = ["Device", "DeviceConfig", "__version__"]

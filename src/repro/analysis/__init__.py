"""The paper's video-markup pipeline.

``diff`` compares frames under masks and pixel tolerance; ``suggester``
implements the semi-automatic candidate selection of §II-D (Fig. 7);
``annotation``/``annotator`` build the per-workload annotation database of
§II-A (Fig. 4 part A); ``matcher`` performs the fully automatic lag
detection of §II-E (Fig. 4 part B); ``classify`` reproduces the input
classification of Fig. 10.
"""

from repro.analysis.annotation import AnnotationDatabase, GestureInfo, LagAnnotation
from repro.analysis.annotator import AutoAnnotator
from repro.analysis.classify import InputClassification, classify_workload
from repro.analysis.diff import build_mask, diff_pixel_count, frames_equal
from repro.analysis.lagprofile import CauseBreakdown, LagMeasurement, LagProfile
from repro.analysis.matcher import Matcher
from repro.analysis.online import OnlineMatcher
from repro.analysis.suggester import Suggestion, SuggesterConfig, suggest

__all__ = [
    "AnnotationDatabase",
    "LagAnnotation",
    "GestureInfo",
    "AutoAnnotator",
    "InputClassification",
    "classify_workload",
    "build_mask",
    "diff_pixel_count",
    "frames_equal",
    "CauseBreakdown",
    "LagMeasurement",
    "LagProfile",
    "Matcher",
    "OnlineMatcher",
    "Suggestion",
    "SuggesterConfig",
    "suggest",
]

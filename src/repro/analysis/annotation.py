"""The annotation database (paper Fig. 4, part A).

Annotating a workload "means selecting an image for each interaction lag
that shows how the mobile screen looks when the user feels that the system
has serviced his input.  This needs to be done only once, after which the
workload will be reusable time and again."  Each annotation carries the
extra information of §II-E: an image mask, the occurrence index (for lags
whose ending looks like their beginning) and the irritation threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.errors import AnnotationError
from repro.core.geometry import Rect


@dataclass(frozen=True, slots=True)
class GestureInfo:
    """Metadata for one recorded gesture (input timings for the matcher)."""

    index: int
    kind: str  # "tap" | "swipe"
    down_time_us: int


@dataclass(slots=True)
class LagAnnotation:
    """Expected ending of one interaction lag."""

    gesture_index: int
    label: str
    category: str
    begin_time_us: int
    image: np.ndarray
    mask_rects: list[Rect] = field(default_factory=list)
    tolerance_px: int = 0
    occurrence: int = 1
    threshold_us: int = 0

    def __post_init__(self) -> None:
        if self.occurrence < 1:
            raise AnnotationError("occurrence must be >= 1")
        if self.image.ndim != 2:
            raise AnnotationError("annotation image must be 2-D grayscale")


class AnnotationDatabase:
    """All annotations of one workload, plus gesture timing metadata."""

    def __init__(
        self,
        workload_name: str,
        screen_width: int,
        screen_height: int,
    ) -> None:
        self.workload_name = workload_name
        self.screen_width = screen_width
        self.screen_height = screen_height
        self.gestures: list[GestureInfo] = []
        self.annotations: list[LagAnnotation] = []

    def add_gesture(self, info: GestureInfo) -> None:
        self.gestures.append(info)

    def add(self, annotation: LagAnnotation) -> None:
        if annotation.image.shape != (self.screen_height, self.screen_width):
            raise AnnotationError(
                "annotation image shape does not match the workload screen"
            )
        if any(
            a.gesture_index == annotation.gesture_index for a in self.annotations
        ):
            raise AnnotationError(
                f"gesture {annotation.gesture_index} already annotated"
            )
        self.annotations.append(annotation)
        self.annotations.sort(key=lambda a: a.begin_time_us)

    @property
    def lag_count(self) -> int:
        return len(self.annotations)

    @property
    def spurious_count(self) -> int:
        annotated = {a.gesture_index for a in self.annotations}
        return sum(1 for g in self.gestures if g.index not in annotated)

    def annotation_for_gesture(self, gesture_index: int) -> LagAnnotation | None:
        for annotation in self.annotations:
            if annotation.gesture_index == gesture_index:
                return annotation
        return None

    # --- persistence ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist as ``meta.json`` + ``images.npz`` in a directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "workload_name": self.workload_name,
            "screen_width": self.screen_width,
            "screen_height": self.screen_height,
            "gestures": [
                {"index": g.index, "kind": g.kind, "down_time_us": g.down_time_us}
                for g in self.gestures
            ],
            "annotations": [
                {
                    "gesture_index": a.gesture_index,
                    "label": a.label,
                    "category": a.category,
                    "begin_time_us": a.begin_time_us,
                    "mask_rects": [
                        [r.x, r.y, r.w, r.h] for r in a.mask_rects
                    ],
                    "tolerance_px": a.tolerance_px,
                    "occurrence": a.occurrence,
                    "threshold_us": a.threshold_us,
                }
                for a in self.annotations
            ],
        }
        (directory / "meta.json").write_text(
            json.dumps(meta, indent=2), encoding="utf-8"
        )
        images = {
            f"lag_{a.gesture_index}": a.image for a in self.annotations
        }
        np.savez_compressed(directory / "images.npz", **images)

    @classmethod
    def load(cls, directory: str | Path) -> "AnnotationDatabase":
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise AnnotationError(f"no annotation database at {directory}")
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        db = cls(
            meta["workload_name"], meta["screen_width"], meta["screen_height"]
        )
        for g in meta["gestures"]:
            db.add_gesture(GestureInfo(g["index"], g["kind"], g["down_time_us"]))
        with np.load(directory / "images.npz") as images:
            for a in meta["annotations"]:
                db.add(
                    LagAnnotation(
                        gesture_index=a["gesture_index"],
                        label=a["label"],
                        category=a["category"],
                        begin_time_us=a["begin_time_us"],
                        image=images[f"lag_{a['gesture_index']}"],
                        mask_rects=[Rect(*r) for r in a["mask_rects"]],
                        tolerance_px=a["tolerance_px"],
                        occurrence=a["occurrence"],
                        threshold_us=a["threshold_us"],
                    )
                )
        return db

"""Annotation: building the database from one reference execution.

The paper's annotation step is semi-automatic: the suggester proposes
candidate ending frames and a human picks the right one (a couple of
seconds per lag).  In this reproduction the :class:`AutoAnnotator` stands
in for that human: it knows from the device's ground-truth journal when
each interaction semantically completed, and picks the suggester candidate
showing that completion.  Crucially it only *selects among the
suggester's candidates* — the pipeline shape is the paper's, with the one
human click automated.  A manual path (:meth:`AutoAnnotator.pick`) exists
for tests and custom workloads.
"""

from __future__ import annotations

from repro.core.errors import AnnotationError
from repro.analysis.annotation import AnnotationDatabase, GestureInfo, LagAnnotation
from repro.analysis.diff import build_mask, frames_equal
from repro.analysis.suggester import SuggesterConfig, Suggestion, suggest
from repro.capture.video import Video
from repro.device.display import VSYNC_PERIOD_US
from repro.metrics.hci import SHNEIDERMAN_MODEL, HciModel
from repro.uifw.journal import GroundTruthJournal, InteractionRecord


class AutoAnnotator:
    """Builds an :class:`AnnotationDatabase` from an annotation run."""

    def __init__(
        self,
        workload_name: str,
        hci_model: HciModel = SHNEIDERMAN_MODEL,
        threshold_overrides: dict[str, int] | None = None,
        default_tolerance_px: int = 0,
    ) -> None:
        self.workload_name = workload_name
        self.hci_model = hci_model
        self.threshold_overrides = dict(threshold_overrides or {})
        self.default_tolerance_px = default_tolerance_px

    def annotate(self, video: Video, journal: GroundTruthJournal) -> AnnotationDatabase:
        """Annotate every completed interaction of the reference run."""
        db = AnnotationDatabase(
            self.workload_name, video.width, video.height
        )
        for gesture in journal.gestures:
            db.add_gesture(
                GestureInfo(gesture.index, gesture.kind, gesture.down_time)
            )
        for record in journal.interactions:
            if not record.complete:
                raise AnnotationError(
                    f"interaction {record.label!r} never completed in the "
                    "annotation run; extend the run or fix the workload"
                )
            db.add(self._annotate_one(video, record))
        return db

    def _annotate_one(
        self, video: Video, record: InteractionRecord
    ) -> LagAnnotation:
        begin_frame = record.begin_time // VSYNC_PERIOD_US
        config = SuggesterConfig(
            mask_rects=tuple(record.mask_rects),
            tolerance_px=self.default_tolerance_px,
            min_still_frames=1,
        )
        candidates = suggest(video, begin_frame, video.end_frame, config)
        if not candidates:
            raise AnnotationError(
                f"suggester found no candidates for {record.label!r}"
            )
        chosen = self._pick_candidate(candidates, record)
        image = video.frame_at(chosen.frame_index).copy()
        occurrence = self._count_occurrences(
            video, begin_frame, chosen.frame_index, image, config
        )
        return LagAnnotation(
            gesture_index=record.gesture_index,
            label=record.label,
            category=record.category,
            begin_time_us=record.begin_time,
            image=image,
            mask_rects=list(record.mask_rects),
            tolerance_px=self.default_tolerance_px,
            occurrence=occurrence,
            threshold_us=self._threshold_for(record),
        )

    # --- the "human" decisions --------------------------------------------------------

    def _pick_candidate(
        self, candidates: list[Suggestion], record: InteractionRecord
    ) -> Suggestion:
        """Pick the candidate showing the semantic completion.

        The completion renders on the first vsync after ``end_time``, so
        the right candidate is the earliest one at or past that frame.
        """
        assert record.end_time is not None
        completion_frame = record.end_time // VSYNC_PERIOD_US + 1
        at_or_after = [c for c in candidates if c.frame_index >= completion_frame]
        if not at_or_after:
            raise AnnotationError(
                f"no suggester candidate at or after the completion of "
                f"{record.label!r} (frame {completion_frame}); the "
                "interaction produced no visual change when it finished"
            )
        return min(at_or_after, key=lambda c: c.frame_index)

    def _count_occurrences(
        self,
        video: Video,
        begin_frame: int,
        chosen_frame: int,
        image,
        config: SuggesterConfig,
    ) -> int:
        """How many match-runs precede (and include) the chosen ending.

        This is what a careful user does when "the suggested lag ending
        looks like the beginning": they tell the matcher to take the n-th
        occurrence of the image.
        """
        mask = build_mask(image.shape, list(config.mask_rects))
        occurrences = 0
        in_match = False
        for segment in video.segments_between(begin_frame, chosen_frame + 1):
            matches = frames_equal(
                segment.content, image, mask, config.tolerance_px
            )
            if matches and not in_match:
                occurrences += 1
            in_match = matches
        if occurrences == 0:
            raise AnnotationError(
                "chosen ending frame does not match its own image; "
                "mask or tolerance is inconsistent"
            )
        return occurrences

    def _threshold_for(self, record: InteractionRecord) -> int:
        if record.label in self.threshold_overrides:
            return self.threshold_overrides[record.label]
        return self.hci_model.threshold_us(record.category)

    # --- manual annotation path ------------------------------------------------------------

    def pick(
        self,
        video: Video,
        journal: GroundTruthJournal,
        gesture_index: int,
        frame_index: int,
        mask_rects=(),
        tolerance_px: int | None = None,
        occurrence: int | None = None,
        threshold_us: int | None = None,
    ) -> LagAnnotation:
        """Manually annotate one lag by choosing an explicit ending frame.

        Mirrors the GUI path where the user overrides the automation; used
        by tests and available for custom workloads.
        """
        record = None
        for candidate in journal.interactions:
            if candidate.gesture_index == gesture_index:
                record = candidate
                break
        if record is None:
            raise AnnotationError(f"gesture {gesture_index} has no interaction")
        tolerance = (
            self.default_tolerance_px if tolerance_px is None else tolerance_px
        )
        image = video.frame_at(frame_index).copy()
        begin_frame = record.begin_time // VSYNC_PERIOD_US
        config = SuggesterConfig(
            mask_rects=tuple(mask_rects), tolerance_px=tolerance
        )
        found_occurrence = (
            occurrence
            if occurrence is not None
            else self._count_occurrences(
                video, begin_frame, frame_index, image, config
            )
        )
        return LagAnnotation(
            gesture_index=gesture_index,
            label=record.label,
            category=record.category,
            begin_time_us=record.begin_time,
            image=image,
            mask_rects=list(mask_rects),
            tolerance_px=tolerance,
            occurrence=found_occurrence,
            threshold_us=(
                threshold_us
                if threshold_us is not None
                else self._threshold_for(record)
            ),
        )

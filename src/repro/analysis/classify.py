"""Input classification (paper Fig. 10).

For each workload: how many inputs were taps vs swipes, and how many of
them led to actual interaction lags vs were spurious ("it can happen that
an input event does not lead to any reaction from the system … we consider
those inputs as spurious lags and ignore them").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.annotation import AnnotationDatabase
from repro.replay.trace import EventTrace
from repro.uifw.gestures import GestureDecoder, Swipe, Tap


@dataclass(frozen=True, slots=True)
class InputClassification:
    """The four bars of one Fig. 10 dataset group."""

    dataset: str
    taps: int
    swipes: int
    actual_lags: int
    spurious_lags: int

    @property
    def total_inputs(self) -> int:
        return self.taps + self.swipes

    def as_row(self) -> dict[str, int | str]:
        return {
            "dataset": self.dataset,
            "taps": self.taps,
            "swipes": self.swipes,
            "actual_lags": self.actual_lags,
            "spurious_lags": self.spurious_lags,
            "total": self.total_inputs,
        }


def decode_gestures(trace: EventTrace) -> list[Tap | Swipe]:
    """Offline gesture decode of a recorded trace."""
    gestures: list[Tap | Swipe] = []
    decoder = GestureDecoder(gestures.append)
    for event in trace:
        decoder.on_event(event)
    return gestures


def classify_workload(
    dataset: str, trace: EventTrace, database: AnnotationDatabase
) -> InputClassification:
    """Classify a workload's inputs from its trace and annotation DB."""
    gestures = decode_gestures(trace)
    taps = sum(1 for g in gestures if isinstance(g, Tap))
    swipes = len(gestures) - taps
    actual = database.lag_count
    spurious = len(gestures) - actual
    return InputClassification(dataset, taps, swipes, actual, max(0, spurious))

"""Frame comparison with masks and pixel tolerance.

The paper's annotation GUI lets the user "allow a certain amount of pixel
difference between frames" (blinking cursors) and "mask out parts of the
images being compared" (the clock, advertisements — Fig. 8).  Both knobs
live here and are shared by the suggester and the matcher.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import MatchError
from repro.core.geometry import Rect


def build_mask(
    shape: tuple[int, int], exclude_rects: list[Rect] | None
) -> np.ndarray | None:
    """A boolean compare-mask; ``True`` pixels participate in comparison.

    Returns ``None`` when nothing is excluded (the fast path).
    """
    if not exclude_rects:
        return None
    height, width = shape
    mask = np.ones(shape, dtype=bool)
    bounds = Rect(0, 0, width, height)
    for rect in exclude_rects:
        clipped = rect.clamped_to(bounds)
        if clipped.area:
            mask[clipped.y : clipped.bottom, clipped.x : clipped.right] = False
    return mask


def diff_pixel_count(
    a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None
) -> int:
    """Number of differing pixels, ignoring masked-out regions."""
    if a.shape != b.shape:
        raise MatchError(f"cannot compare frames of shapes {a.shape} and {b.shape}")
    diff = a != b
    if mask is not None:
        diff &= mask
    return int(np.count_nonzero(diff))


def frames_equal(
    a: np.ndarray,
    b: np.ndarray,
    mask: np.ndarray | None = None,
    tolerance_px: int = 0,
) -> bool:
    """Whether two frames are 'the same' under mask and tolerance."""
    if a is b:
        return True
    if mask is None and tolerance_px == 0:
        return bool(np.array_equal(a, b))
    return diff_pixel_count(a, b, mask) <= tolerance_px

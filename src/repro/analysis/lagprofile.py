"""Lag profiles: the matcher's output, the metrics' input.

"Our method produces a lag profile after evaluating a video which lists
the lag length for each interaction lag in the evaluated video."  Profiles
of different executions of the same workload are directly comparable
because replayed inputs guarantee the same number of lags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ReproError
from repro.core.simtime import to_millis
from repro.metrics.hci import HciModel
from repro.metrics.irritation import IrritationResult, irritation


@dataclass(frozen=True, slots=True)
class LagMeasurement:
    """One measured interaction lag."""

    lag_index: int
    gesture_index: int
    label: str
    category: str
    begin_time_us: int
    end_frame: int
    duration_us: int
    threshold_us: int

    @property
    def duration_ms(self) -> float:
        return to_millis(self.duration_us)


@dataclass(frozen=True, slots=True)
class CauseBreakdown:
    """One lag's decomposition into named causes.

    Produced by the attribution engine (:mod:`repro.obs.attribution`);
    carried here so a :class:`LagProfile` can hold causes without the
    analysis layer depending on the observability layer.  Both maps are
    ``(cause, microseconds)`` pairs in deterministic cause order:
    ``window_by_cause`` partitions the lag window's duration,
    ``penalty_by_cause`` partitions its irritation penalty exactly.
    """

    lag_index: int
    window_by_cause: tuple[tuple[str, int], ...]
    penalty_by_cause: tuple[tuple[str, int], ...]

    def window_map(self) -> dict[str, int]:
        return dict(self.window_by_cause)

    def penalty_map(self) -> dict[str, int]:
        return dict(self.penalty_by_cause)

    @property
    def penalty_us(self) -> int:
        return sum(us for _, us in self.penalty_by_cause)

    @property
    def dominant_cause(self) -> str | None:
        """The cause carrying the most penalty (first listed wins ties)."""
        best: tuple[int, int] | None = None
        winner: str | None = None
        for order, (cause, us) in enumerate(self.penalty_by_cause):
            if us > 0 and (best is None or (-us, order) < best):
                best = (-us, order)
                winner = cause
        return winner


@dataclass(frozen=True, slots=True)
class LagProfile:
    """All measured lags of one workload execution.

    ``attributions``, when present, parallels ``lags`` one
    :class:`CauseBreakdown` per measurement — the cause-carrying profile
    the attribution engine produces.  An unattributed profile (the
    default) compares equal to itself regardless, and every pre-existing
    two-argument construction site keeps working.
    """

    workload_name: str
    lags: tuple[LagMeasurement, ...]
    attributions: tuple[CauseBreakdown, ...] = ()

    def __len__(self) -> int:
        return len(self.lags)

    def durations_ms(self) -> list[float]:
        return [lag.duration_ms for lag in self.lags]

    def durations_us(self) -> list[int]:
        return [lag.duration_us for lag in self.lags]

    def irritation(
        self,
        model: HciModel | None = None,
        overrides: dict[str, int] | None = None,
    ) -> IrritationResult:
        """The user-irritation metric over this profile.

        By default each lag uses the threshold stored in its annotation;
        ``model`` recomputes thresholds from categories; ``overrides``
        pins specific lags (by label) to custom values — the three options
        the paper's GUI offers.
        """
        rows = []
        for lag in self.lags:
            threshold = lag.threshold_us
            if model is not None:
                threshold = model.threshold_us(lag.category)
            if overrides and lag.label in overrides:
                threshold = overrides[lag.label]
            rows.append((lag.label, lag.duration_us, threshold))
        return irritation(rows)

    def compare(self, other: "LagProfile") -> list[tuple[str, int, int]]:
        """Per-lag durations side by side: ``(label, ours, theirs)``."""
        if len(self.lags) != len(other.lags):
            raise ReproError(
                "profiles of the same workload must have equal lag counts"
            )
        return [
            (a.label, a.duration_us, b.duration_us)
            for a, b in zip(self.lags, other.lags)
        ]

    # --- cause-carrying profile -----------------------------------------------------

    def with_attribution(
        self, breakdowns: "tuple[CauseBreakdown, ...] | list[CauseBreakdown]"
    ) -> "LagProfile":
        """This profile carrying one :class:`CauseBreakdown` per lag."""
        breakdowns = tuple(breakdowns)
        if len(breakdowns) != len(self.lags):
            raise ReproError(
                f"attribution carries {len(breakdowns)} breakdown(s) for "
                f"{len(self.lags)} lag(s); they must parallel one-to-one"
            )
        for lag, breakdown in zip(self.lags, breakdowns):
            if lag.lag_index != breakdown.lag_index:
                raise ReproError(
                    f"breakdown for lag_index {breakdown.lag_index} paired "
                    f"with measurement lag_index {lag.lag_index}"
                )
        return LagProfile(self.workload_name, self.lags, breakdowns)

    def per_cause_irritation_us(self) -> dict[str, int]:
        """Total irritation carried by each cause, over all lags."""
        totals: dict[str, int] = {}
        for breakdown in self.attributions:
            for cause, us in breakdown.penalty_by_cause:
                totals[cause] = totals.get(cause, 0) + us
        return totals

    def compare_causes(
        self, other: "LagProfile"
    ) -> list[tuple[str, int, int]]:
        """Per-cause irritation side by side over the union of causes.

        Unlike :meth:`compare` this aggregates before comparing, so
        profiles with different lag counts (or disjoint cause sets — a
        boosting governor against a stepping one) are still comparable;
        a cause absent on one side contributes zero there.
        """
        ours = self.per_cause_irritation_us()
        theirs = other.per_cause_irritation_us()
        return [
            (cause, ours.get(cause, 0), theirs.get(cause, 0))
            for cause in sorted(set(ours) | set(theirs))
        ]

    # --- persistence ----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        rows = [
            {
                "lag_index": lag.lag_index,
                "gesture_index": lag.gesture_index,
                "label": lag.label,
                "category": lag.category,
                "begin_time_us": lag.begin_time_us,
                "end_frame": lag.end_frame,
                "duration_us": lag.duration_us,
                "threshold_us": lag.threshold_us,
            }
            for lag in self.lags
        ]
        data: dict = {"workload": self.workload_name, "lags": rows}
        if self.attributions:
            data["attributions"] = [
                {
                    "lag_index": breakdown.lag_index,
                    "window_by_cause": [
                        [cause, us] for cause, us in breakdown.window_by_cause
                    ],
                    "penalty_by_cause": [
                        [cause, us] for cause, us in breakdown.penalty_by_cause
                    ],
                }
                for breakdown in self.attributions
            ]
        Path(path).write_text(
            json.dumps(data, indent=2),
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "LagProfile":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        lags = tuple(
            LagMeasurement(
                lag_index=row["lag_index"],
                gesture_index=row["gesture_index"],
                label=row["label"],
                category=row["category"],
                begin_time_us=row["begin_time_us"],
                end_frame=row["end_frame"],
                duration_us=row["duration_us"],
                threshold_us=row["threshold_us"],
            )
            for row in data["lags"]
        )
        attributions = tuple(
            CauseBreakdown(
                lag_index=row["lag_index"],
                window_by_cause=tuple(
                    (cause, us) for cause, us in row["window_by_cause"]
                ),
                penalty_by_cause=tuple(
                    (cause, us) for cause, us in row["penalty_by_cause"]
                ),
            )
            for row in data.get("attributions", [])
        )
        return cls(data["workload"], lags, attributions)

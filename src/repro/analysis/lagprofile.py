"""Lag profiles: the matcher's output, the metrics' input.

"Our method produces a lag profile after evaluating a video which lists
the lag length for each interaction lag in the evaluated video."  Profiles
of different executions of the same workload are directly comparable
because replayed inputs guarantee the same number of lags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ReproError
from repro.core.simtime import to_millis
from repro.metrics.hci import HciModel
from repro.metrics.irritation import IrritationResult, irritation


@dataclass(frozen=True, slots=True)
class LagMeasurement:
    """One measured interaction lag."""

    lag_index: int
    gesture_index: int
    label: str
    category: str
    begin_time_us: int
    end_frame: int
    duration_us: int
    threshold_us: int

    @property
    def duration_ms(self) -> float:
        return to_millis(self.duration_us)


@dataclass(frozen=True, slots=True)
class LagProfile:
    """All measured lags of one workload execution."""

    workload_name: str
    lags: tuple[LagMeasurement, ...]

    def __len__(self) -> int:
        return len(self.lags)

    def durations_ms(self) -> list[float]:
        return [lag.duration_ms for lag in self.lags]

    def durations_us(self) -> list[int]:
        return [lag.duration_us for lag in self.lags]

    def irritation(
        self,
        model: HciModel | None = None,
        overrides: dict[str, int] | None = None,
    ) -> IrritationResult:
        """The user-irritation metric over this profile.

        By default each lag uses the threshold stored in its annotation;
        ``model`` recomputes thresholds from categories; ``overrides``
        pins specific lags (by label) to custom values — the three options
        the paper's GUI offers.
        """
        rows = []
        for lag in self.lags:
            threshold = lag.threshold_us
            if model is not None:
                threshold = model.threshold_us(lag.category)
            if overrides and lag.label in overrides:
                threshold = overrides[lag.label]
            rows.append((lag.label, lag.duration_us, threshold))
        return irritation(rows)

    def compare(self, other: "LagProfile") -> list[tuple[str, int, int]]:
        """Per-lag durations side by side: ``(label, ours, theirs)``."""
        if len(self.lags) != len(other.lags):
            raise ReproError(
                "profiles of the same workload must have equal lag counts"
            )
        return [
            (a.label, a.duration_us, b.duration_us)
            for a, b in zip(self.lags, other.lags)
        ]

    # --- persistence ----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        rows = [
            {
                "lag_index": lag.lag_index,
                "gesture_index": lag.gesture_index,
                "label": lag.label,
                "category": lag.category,
                "begin_time_us": lag.begin_time_us,
                "end_frame": lag.end_frame,
                "duration_us": lag.duration_us,
                "threshold_us": lag.threshold_us,
            }
            for lag in self.lags
        ]
        Path(path).write_text(
            json.dumps({"workload": self.workload_name, "lags": rows}, indent=2),
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "LagProfile":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        lags = tuple(
            LagMeasurement(
                lag_index=row["lag_index"],
                gesture_index=row["gesture_index"],
                label=row["label"],
                category=row["category"],
                begin_time_us=row["begin_time_us"],
                end_frame=row["end_frame"],
                duration_us=row["duration_us"],
                threshold_us=row["threshold_us"],
            )
            for row in data["lags"]
        )
        return cls(data["workload"], lags)

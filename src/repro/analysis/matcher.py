"""The matcher algorithm (paper §II-E, Fig. 4 part B).

"Our matcher algorithm steps through the video frame by frame and looks
for a lag beginning according to input timings.  As soon as a time is
reached where an input was issued, it picks the corresponding lag ending
from the annotation data base and compares all following frames with that
image until it finds a match."  Occurrence counting handles endings that
look like beginnings; masks handle run-to-run nondeterminism.

The algorithm itself lives in :class:`~repro.analysis.online.
OnlineMatcher`, a reducer over the capture's segment stream; this batch
front-end simply drives that reducer over a materialised video's
segments, so the streaming and batch paths share one implementation and
produce bit-identical profiles by construction.
"""

from __future__ import annotations

from repro.analysis.annotation import AnnotationDatabase
from repro.analysis.lagprofile import LagProfile
from repro.analysis.online import OnlineMatcher
from repro.capture.video import Video


class Matcher:
    """Fully automatic lag detection against an annotation database."""

    def __init__(self, database: AnnotationDatabase) -> None:
        self._db = database

    def match(self, video: Video) -> LagProfile:
        """Produce the lag profile of one workload execution's video."""
        if not self._db.annotations:
            return LagProfile(self._db.workload_name, ())
        online = OnlineMatcher(self._db)
        for segment in video.segments():
            online.on_segment(segment)
        online.on_stop(video.end_frame)
        return online.profile()

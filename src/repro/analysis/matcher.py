"""The matcher algorithm (paper §II-E, Fig. 4 part B).

"Our matcher algorithm steps through the video frame by frame and looks
for a lag beginning according to input timings.  As soon as a time is
reached where an input was issued, it picks the corresponding lag ending
from the annotation data base and compares all following frames with that
image until it finds a match."  Occurrence counting handles endings that
look like beginnings; masks handle run-to-run nondeterminism.
"""

from __future__ import annotations

from repro.core.errors import MatchError
from repro.analysis.annotation import AnnotationDatabase, LagAnnotation
from repro.analysis.diff import build_mask, frames_equal
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.capture.video import Video
from repro.device.display import VSYNC_PERIOD_US


class Matcher:
    """Fully automatic lag detection against an annotation database."""

    def __init__(self, database: AnnotationDatabase) -> None:
        self._db = database

    def match(self, video: Video) -> LagProfile:
        """Produce the lag profile of one workload execution's video."""
        measurements = []
        for lag_index, annotation in enumerate(self._db.annotations):
            measurements.append(self._match_one(video, lag_index, annotation))
        return LagProfile(self._db.workload_name, tuple(measurements))

    def _match_one(
        self, video: Video, lag_index: int, annotation: LagAnnotation
    ) -> LagMeasurement:
        begin_frame = annotation.begin_time_us // VSYNC_PERIOD_US
        if begin_frame < video.start_frame or begin_frame >= video.end_frame:
            raise MatchError(
                f"lag {annotation.label!r} begins at frame {begin_frame}, "
                f"outside the video ({video.start_frame}..{video.end_frame})"
            )
        end_frame = self._find_ending(video, begin_frame, annotation)
        end_time = video.frame_time_us(end_frame)
        duration = max(0, end_time - annotation.begin_time_us)
        return LagMeasurement(
            lag_index=lag_index,
            gesture_index=annotation.gesture_index,
            label=annotation.label,
            category=annotation.category,
            begin_time_us=annotation.begin_time_us,
            end_frame=end_frame,
            duration_us=duration,
            threshold_us=annotation.threshold_us,
        )

    def _find_ending(
        self, video: Video, begin_frame: int, annotation: LagAnnotation
    ) -> int:
        """First frame of the ``occurrence``-th run matching the image."""
        mask = build_mask(annotation.image.shape, annotation.mask_rects)
        occurrences = 0
        in_match = False
        for segment in video.segments_between(begin_frame, video.end_frame):
            matches = frames_equal(
                segment.content,
                annotation.image,
                mask,
                annotation.tolerance_px,
            )
            if matches and not in_match:
                occurrences += 1
                if occurrences == annotation.occurrence:
                    return max(segment.start, begin_frame)
            in_match = matches
        raise MatchError(
            f"lag {annotation.label!r}: ending image never appeared after "
            f"frame {begin_frame} (found {occurrences} of "
            f"{annotation.occurrence} occurrences) — the workload has "
            "desynchronised or the annotation is stale"
        )

"""The matcher as an online reducer over the capture's segment stream.

The batch matcher (paper §II-E) re-scans a materialised video once per
annotation.  :class:`OnlineMatcher` performs the identical algorithm as a
:class:`~repro.capture.stream.FrameTap`: each gesture's scan state is
activated when the stream reaches its input time, every closed segment is
compared against the (few) currently-open annotation windows, and a
matched window releases its state immediately — so memory is
O(active-window), not O(session), and consumed frames are never retained.

Equivalence with the batch matcher is structural, not tested-for only:
:class:`~repro.analysis.matcher.Matcher` drives this same reducer over
``video.segments()``, so the two paths cannot diverge.
"""

from __future__ import annotations

from repro.core.errors import MatchError
from repro.analysis.annotation import AnnotationDatabase, LagAnnotation
from repro.analysis.diff import build_mask, frames_equal
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.capture.stream import FrameTap
from repro.device.display import VSYNC_PERIOD_US, frame_timestamp
from repro.obs.session import active as _obs_active


class _ScanState:
    """One annotation's progress through the stream."""

    __slots__ = (
        "lag_index",
        "annotation",
        "begin_frame",
        "mask",
        "occurrences",
        "in_match",
        "out_of_range",
    )

    def __init__(self, lag_index: int, annotation: LagAnnotation) -> None:
        self.lag_index = lag_index
        self.annotation = annotation
        self.begin_frame = annotation.begin_time_us // VSYNC_PERIOD_US
        self.mask = None
        self.occurrences = 0
        self.in_match = False
        self.out_of_range = False


class OnlineMatcher(FrameTap):
    """Fully automatic lag detection, one segment at a time.

    Subscribe to a capture (``card.add_tap(matcher)``), run the replay,
    then read :meth:`profile`.  Annotations activate in begin-time order
    (the database keeps them sorted); a segment is compared only against
    annotations whose window is open, and a serviced window drops its
    state at once.
    """

    def __init__(self, database: AnnotationDatabase) -> None:
        self._db = database
        self._scans = [
            _ScanState(lag_index, annotation)
            for lag_index, annotation in enumerate(database.annotations)
        ]
        self._next = 0
        self._active: list[_ScanState] = []
        self._done: dict[int, LagMeasurement] = {}
        self._start_frame: int | None = None
        self._end_frame: int | None = None
        self._obs = _obs_active()

    # --- FrameTap interface -----------------------------------------------------

    def on_segment(self, segment) -> None:
        if self._start_frame is None:
            self._start_frame = segment.start
        # Open every annotation window the stream has now reached.  A
        # window beginning before the capture started can never be
        # scanned; it is reported (in database order) at profile time,
        # exactly like the batch matcher's range check.
        while (
            self._next < len(self._scans)
            and self._scans[self._next].begin_frame < segment.end
        ):
            scan = self._scans[self._next]
            self._next += 1
            if scan.begin_frame < self._start_frame:
                scan.out_of_range = True
                continue
            self._activate(scan)
            self._active.append(scan)
            obs = self._obs
            if obs is not None:
                obs.gesture_window_opened(
                    scan.annotation.begin_time_us,
                    scan.annotation.label,
                    scan.annotation.gesture_index,
                )
        if not self._active:
            return
        finished: list[_ScanState] | None = None
        for scan in self._active:
            annotation = scan.annotation
            matches = self._matches(scan, segment)
            if matches and not scan.in_match:
                scan.occurrences += 1
                if scan.occurrences == annotation.occurrence:
                    self._finish(scan, max(segment.start, scan.begin_frame))
                    if finished is None:
                        finished = []
                    finished.append(scan)
                    continue
            scan.in_match = matches
        if finished:
            for scan in finished:
                self._active.remove(scan)

    def on_stop(self, end_frame: int) -> None:
        self._end_frame = end_frame

    # --- comparison strategy ----------------------------------------------------

    def _activate(self, scan: _ScanState) -> None:
        """Prepare a scan whose window just opened (builds its mask)."""
        scan.mask = build_mask(
            scan.annotation.image.shape, scan.annotation.mask_rects
        )

    def _matches(self, scan: _ScanState, segment) -> bool:
        """Whether a segment's content matches the scan's ending image.

        The demand evaluation pass substitutes a precomputed-verdict
        lookup here (its segments carry interned state ids, not pixels);
        everything else — activation order, occurrence counting, the
        profile contract — is shared.
        """
        annotation = scan.annotation
        return frames_equal(
            segment.content,
            annotation.image,
            scan.mask,
            annotation.tolerance_px,
        )

    # --- results ---------------------------------------------------------------

    def profile(self) -> LagProfile:
        """The lag profile, or the first (database-order) failure.

        Raises :class:`MatchError` with the batch matcher's exact
        diagnostics: an annotation beginning outside the captured frame
        range, or an ending image that never appeared.
        """
        if self._end_frame is None:
            raise MatchError("capture still running: no stop signal received")
        measurements = []
        for scan in self._scans:
            measurement = self._done.get(scan.lag_index)
            if measurement is not None:
                measurements.append(measurement)
                continue
            self._raise_unmatched(scan)
        return LagProfile(self._db.workload_name, tuple(measurements))

    def _finish(self, scan: _ScanState, end_frame: int) -> None:
        annotation = scan.annotation
        end_time = frame_timestamp(end_frame)
        duration = max(0, end_time - annotation.begin_time_us)
        self._done[scan.lag_index] = LagMeasurement(
            lag_index=scan.lag_index,
            gesture_index=annotation.gesture_index,
            label=annotation.label,
            category=annotation.category,
            begin_time_us=annotation.begin_time_us,
            end_frame=end_frame,
            duration_us=duration,
            threshold_us=annotation.threshold_us,
        )
        scan.mask = None
        obs = self._obs
        if obs is not None:
            obs.lag_window_closed(
                annotation.begin_time_us,
                duration,
                annotation.label,
                annotation.category,
                annotation.threshold_us,
            )

    def _raise_unmatched(self, scan: _ScanState) -> None:
        annotation = scan.annotation
        start_frame = (
            self._start_frame if self._start_frame is not None else self._end_frame
        )
        if (
            scan.out_of_range
            or scan.begin_frame < start_frame
            or scan.begin_frame >= self._end_frame
        ):
            raise MatchError(
                f"lag {annotation.label!r} begins at frame {scan.begin_frame}, "
                f"outside the video ({start_frame}..{self._end_frame})"
            )
        raise MatchError(
            f"lag {annotation.label!r}: ending image never appeared after "
            f"frame {scan.begin_frame} (found {scan.occurrences} of "
            f"{annotation.occurrence} occurrences) — the workload has "
            "desynchronised or the annotation is stale"
        )

"""The suggester algorithm (paper §II-D, Fig. 7).

Successive frames are mapped to a change string: "a zero [is assigned] to
a frame that is equal to its predecessor and a one to a frame that is
different.  The algorithm then suggests each one preceding a zero" — the
first frame of every still period.  The minimum still length, an allowed
pixel difference and image masks are configurable per lag, exactly the
knobs the paper's GUI exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AnnotationError
from repro.core.geometry import Rect
from repro.analysis.diff import build_mask, frames_equal
from repro.capture.video import Video


@dataclass(frozen=True, slots=True)
class SuggesterConfig:
    """Per-lag tuning of the suggester."""

    mask_rects: tuple[Rect, ...] = ()
    tolerance_px: int = 0
    min_still_frames: int = 1

    def __post_init__(self) -> None:
        if self.tolerance_px < 0:
            raise AnnotationError("tolerance must be >= 0")
        if self.min_still_frames < 1:
            raise AnnotationError("min_still_frames must be >= 1")


@dataclass(frozen=True, slots=True)
class Suggestion:
    """One candidate lag-ending frame."""

    frame_index: int
    still_frames: int  # zeros following the suggested one


def _boundary_runs(
    video: Video, start: int, end: int, config: SuggesterConfig
) -> list[tuple[int, int]]:
    """Collapse the window into runs of effectively-equal frames.

    Returns ``[(run_start_frame, run_length), …]``.  Consecutive RLE
    segments whose contents are equal under the mask/tolerance merge into
    one run, preserving exact frame-by-frame semantics.
    """
    segments = list(video.segments_between(start, end))
    if not segments:
        return []
    mask = build_mask(segments[0].content.shape, list(config.mask_rects))
    runs: list[tuple[int, int]] = []
    run_start = segments[0].start
    run_len = segments[0].length
    prev = segments[0]
    for segment in segments[1:]:
        if frames_equal(prev.content, segment.content, mask, config.tolerance_px):
            run_len += segment.length
        else:
            runs.append((run_start, run_len))
            run_start = segment.start
            run_len = segment.length
        prev = segment
    runs.append((run_start, run_len))
    return runs


def suggest(
    video: Video,
    start_frame: int,
    end_frame: int,
    config: SuggesterConfig | None = None,
) -> list[Suggestion]:
    """Candidate lag endings in the window ``[start_frame, end_frame)``.

    A frame is suggested when it differs from its predecessor (a "one")
    and is followed by at least ``min_still_frames`` unchanged frames
    ("zeros") — i.e. it starts a still period.
    """
    config = config or SuggesterConfig()
    runs = _boundary_runs(video, start_frame, end_frame, config)
    suggestions = []
    for index, (run_start, run_len) in enumerate(runs):
        if index == 0:
            # The window's first run is the pre-existing screen content,
            # not a change; the paper scans frames *after* the input.
            continue
        zeros = run_len - 1
        if zeros >= config.min_still_frames:
            suggestions.append(Suggestion(run_start, zeros))
    return suggestions


def change_string(
    video: Video,
    start_frame: int,
    end_frame: int,
    config: SuggesterConfig | None = None,
) -> str:
    """The suggester's inner 0/1 representation (Fig. 7's long box).

    Character ``i`` describes frame ``start_frame + 1 + i`` versus its
    predecessor.
    """
    config = config or SuggesterConfig()
    runs = _boundary_runs(video, start_frame, end_frame, config)
    bits: list[str] = []
    for index, (_, run_len) in enumerate(runs):
        if index == 0:
            bits.append("0" * (run_len - 1))
        else:
            bits.append("1" + "0" * (run_len - 1))
    return "".join(bits)


def reduction_factor(
    video: Video,
    start_frame: int,
    end_frame: int,
    config: SuggesterConfig | None = None,
) -> float:
    """How many fewer frames the user inspects thanks to the suggester.

    The paper reports ~20x for the Gallery launch and "much larger" for
    workloads with long still periods.
    """
    count = len(suggest(video, start_frame, end_frame, config))
    window = end_frame - start_frame
    if count == 0:
        return float(window)
    return window / count

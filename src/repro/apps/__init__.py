"""The workload applications.

One simulated app per application the paper's volunteers exercised
(Table I and §III-A): Gallery, a Logo Quiz game, Pulse News (app and
launcher widget), Movie Studio, multimedia messaging, plus the simpler
side apps (Facebook, Gmail, Music, Calculator, Play Store) and the
launcher itself.
"""

from repro.apps.gallery import GalleryApp
from repro.apps.launcher import LauncherApp
from repro.apps.logoquiz import LogoQuizApp
from repro.apps.messaging import MessagingApp
from repro.apps.moviestudio import MovieStudioApp
from repro.apps.pulse import PulseApp
from repro.apps.services import BackgroundServices
from repro.apps.sideapps import (
    CalculatorApp,
    FeedApp,
    MusicApp,
    make_side_apps,
)

__all__ = [
    "LauncherApp",
    "GalleryApp",
    "LogoQuizApp",
    "PulseApp",
    "MovieStudioApp",
    "MessagingApp",
    "BackgroundServices",
    "FeedApp",
    "CalculatorApp",
    "MusicApp",
    "make_side_apps",
]


def install_standard_apps(wm) -> None:
    """Install the launcher (as home) and the full Table I app set."""
    launcher = LauncherApp()
    wm.install(launcher, home=True)
    wm.install(GalleryApp())
    wm.install(LogoQuizApp())
    wm.install(PulseApp())
    wm.install(MovieStudioApp())
    wm.install(MessagingApp())
    for app in make_side_apps():
        wm.install(app)
    launcher.refresh_icons()

"""The Gallery: the paper's running example (Fig. 7) and Dataset 01.

A cold launch loads album thumbnails one by one — "the Gallery loads up
single elements of the final screen one by one … leads to 8 to 10
suggested images" — and the edit/save path produces the very long lags
the paper attributes to "the whole time the image needs to be saved" on
Dataset 01 (up to 12-13 s at the lowest frequency).
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.metrics.hci import CATEGORY_COMMON, CATEGORY_COMPLEX, CATEGORY_SIMPLE
from repro.uifw.app import App, Stage
from repro.uifw.view import View
from repro.uifw.widgets import Button, Label, Spinner, TextureBlock

ALBUM_COUNT = 8
PHOTOS_PER_ALBUM = 6
THUMB_W, THUMB_H = 20, 18
GRID_LEFT, GRID_TOP = 3, 12
GRID_COLS = 3

# Work sizing: launch ~1.9 Gcycles total -> ~6.3 s at 0.30 GHz, matching
# the paper's "about 200 frames at the lowest CPU frequency".
LAUNCH_STAGE_CYCLES = 230e6
LAUNCH_STAGE_IO_US = 15_000
OPEN_ALBUM_STAGES: list[Stage] = [(350e6, 10_000), (400e6, 0)]
OPEN_PHOTO_STAGES: list[Stage] = [(280e6, 8_000), (320e6, 0)]
FILTER_CYCLES = 1.1e9
SAVE_CYCLES = 3.3e9  # ~11 s at 0.30 GHz, ~1.5 s at 2.15 GHz


class GalleryApp(App):
    """Album grid → photo view → edit view with filter + save-to-SD."""

    name = "gallery"
    launch_category = CATEGORY_COMMON

    def __init__(self) -> None:
        super().__init__()
        self._albums_view = View("gallery:albums", background=12)
        self._photos_view = View("gallery:photos", background=12)
        self._photo_view = View("gallery:photo", background=8)
        self._edit_view = View("gallery:edit", background=8)
        self._album_thumbs: list[TextureBlock] = []
        self._photo_thumbs: list[TextureBlock] = []
        self._current_album = 0
        self._current_photo = 0
        self._filters_applied = 0
        self._busy = False

    # --- UI construction -------------------------------------------------------------

    def build_ui(self) -> None:
        self._view = self._albums_view
        width, height = self.screen_size()

        for index in range(ALBUM_COUNT):
            rect = self._grid_rect(index)
            thumb = TextureBlock(rect, f"gallery:album:{index}")
            thumb.visible = False
            thumb.on_tap = lambda _p, i=index: self._open_album(i)
            self._album_thumbs.append(thumb)
            self._albums_view.add(thumb)

        for index in range(PHOTOS_PER_ALBUM):
            rect = self._grid_rect(index)
            thumb = TextureBlock(rect, "gallery:photo:placeholder")
            thumb.on_tap = lambda _p, i=index: self._open_photo(i)
            self._photo_thumbs.append(thumb)
            self._photos_view.add(thumb)

        self._full_photo = TextureBlock(
            Rect(4, 14, width - 8, 78), "gallery:full:placeholder"
        )
        self._photo_view.add(self._full_photo)
        self._photo_view.on_swipe = self._on_photo_swipe
        self._edit_button = Button(Rect(6, 98, 28, 12), "edit")
        self._edit_button.on_tap = lambda _p: self._enter_edit()
        self._photo_view.add(self._edit_button)

        self._edit_photo = TextureBlock(
            Rect(4, 14, width - 8, 70), "gallery:edit:placeholder"
        )
        self._edit_view.add(self._edit_photo)
        self._filter_button = Button(Rect(4, 90, 20, 12), "filter")
        self._filter_button.on_tap = lambda _p: self._apply_filter()
        self._edit_view.add(self._filter_button)
        self._save_button = Button(Rect(28, 90, 20, 12), "save")
        self._save_button.on_tap = lambda _p: self._save_photo()
        self._edit_view.add(self._save_button)
        self._save_spinner = Spinner(Rect(52, 90, 14, 12), "gallery:save-spinner")
        self._edit_view.add(self._save_spinner)

    def _grid_rect(self, index: int) -> Rect:
        row, col = divmod(index, GRID_COLS)
        return Rect(
            GRID_LEFT + col * (THUMB_W + 3),
            GRID_TOP + row * (THUMB_H + 3),
            THUMB_W,
            THUMB_H,
        )

    # --- launch: thumbnails appear one by one ------------------------------------------

    def cold_start_stages(self) -> list[Stage]:
        return [(LAUNCH_STAGE_CYCLES, LAUNCH_STAGE_IO_US)] * ALBUM_COUNT

    def loading_view(self):
        """The Gallery loads in place: thumbnails pop into the album grid."""
        return self._albums_view

    def on_launch_stage(self, index: int) -> None:
        self._album_thumbs[index].visible = True

    def on_launched(self) -> None:
        self._view = self._albums_view

    # --- navigation -------------------------------------------------------------------

    def _open_album(self, index: int) -> None:
        if self._busy:
            return
        token = self.context.open_interaction(
            f"open-album:{index}", CATEGORY_SIMPLE
        )
        self._current_album = index

        def stage_done(stage: int) -> None:
            if stage == 0:
                # Transition to the grid with placeholder thumbnails …
                for thumb in self._photo_thumbs:
                    thumb.key = "gallery:photo:placeholder"
                self._view = self._photos_view
            else:
                # … and the real thumbnails pop in as the final change.
                for photo, thumb in enumerate(self._photo_thumbs):
                    thumb.key = f"gallery:thumb:{index}:{photo}"
            self.context.invalidate()

        def done() -> None:
            token.complete(self.context.now())

        self.context.run_stages(
            f"open-album:{index}", OPEN_ALBUM_STAGES, stage_done, done
        )

    def _open_photo(self, index: int) -> None:
        if self._busy:
            return
        token = self.context.open_interaction(
            f"open-photo:{index}", CATEGORY_SIMPLE
        )
        self._current_photo = index

        def stage_done(stage: int) -> None:
            if stage == len(OPEN_PHOTO_STAGES) - 1:
                self._full_photo.key = self._photo_key()
                self._view = self._photo_view
            self.context.invalidate()

        def done() -> None:
            token.complete(self.context.now())

        self.context.run_stages(
            f"open-photo:{index}", OPEN_PHOTO_STAGES, stage_done, done
        )

    def _on_photo_swipe(self, swipe) -> bool:
        """Flip to the next/previous photo in the album."""
        if self._busy:
            return True
        step = -1 if swipe.delta_x > 0 else 1
        token = self.context.open_interaction("flip-photo", CATEGORY_SIMPLE)
        self._current_photo = (self._current_photo + step) % PHOTOS_PER_ALBUM
        self._filters_applied = 0

        def done() -> None:
            self._full_photo.key = self._photo_key()
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("flip-photo", 300e6, done)
        return True

    def _photo_key(self) -> str:
        return (
            f"gallery:full:{self._current_album}:{self._current_photo}"
            f":f{self._filters_applied}"
        )

    def _enter_edit(self) -> None:
        if self._busy:
            return
        token = self.context.open_interaction("enter-edit", CATEGORY_SIMPLE)

        def done() -> None:
            self._edit_photo.key = self._photo_key()
            self._view = self._edit_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("enter-edit", 250e6, done)

    def _apply_filter(self) -> None:
        if self._busy:
            return
        token = self.context.open_interaction("apply-filter", CATEGORY_COMMON)
        self._busy = True
        self._save_spinner.active = True
        self.context.wm.hold_animation()
        self.context.invalidate()

        def done() -> None:
            self._busy = False
            self._filters_applied += 1
            self._save_spinner.active = False
            self.context.wm.release_animation()
            self._edit_photo.key = self._photo_key()
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("filter", FILTER_CYCLES, done)

    def _save_photo(self) -> None:
        """The Dataset 01 long lag: save the edited image to the SD card."""
        if self._busy:
            return
        token = self.context.open_interaction("save-to-sd", CATEGORY_COMPLEX)
        self._busy = True
        self._save_spinner.active = True
        self.context.wm.hold_animation()
        self.context.invalidate()

        def done() -> None:
            self._busy = False
            self._save_spinner.active = False
            self.context.wm.release_animation()
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("save-to-sd", SAVE_CYCLES, done)

    def on_back(self, token) -> bool:
        """In-app back: edit → photo → album grid → albums; else home."""
        if self._view is self._edit_view:
            target = self._photo_view
        elif self._view is self._photo_view:
            target = self._photos_view
        elif self._view is self._photos_view:
            target = self._albums_view
        else:
            return False

        def complete() -> None:
            self._view = target
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("back-render", 40e6, complete)
        return True

    # --- affordances ---------------------------------------------------------------------

    def tap_target(self, name: str) -> Point:
        if name.startswith("album:"):
            return self._grid_rect(int(name.split(":")[1])).center
        if name.startswith("photo:"):
            return self._grid_rect(int(name.split(":")[1])).center
        if name == "btn:edit":
            return self._edit_button.rect.center
        if name == "btn:filter":
            return self._filter_button.rect.center
        if name == "btn:save":
            return self._save_button.rect.center
        if name == "dead":
            return Point(66, 110)
        raise SimulationError(f"gallery has no tap target {name!r}")

    def swipe_target(self, name: str) -> tuple[Point, Point, int]:
        if name == "flip-next":
            return Point(58, 50), Point(12, 50), 150_000
        if name == "flip-prev":
            return Point(12, 50), Point(58, 50), 150_000
        raise SimulationError(f"gallery has no swipe target {name!r}")

"""The home screen: icon grid plus the Pulse News widget.

The widget refreshes its headlines periodically through background work —
screen changes *outside* interaction lags, which is one of the situations
where the paper observes ondemand raising the frequency although "the user
does not need extra performance".
"""

from __future__ import annotations

from repro.core.geometry import Point, Rect
from repro.kernel.task import PRIORITY_BACKGROUND
from repro.kernel.workchains import PeriodicWorkChain
from repro.metrics.hci import CATEGORY_COMMON, CATEGORY_SIMPLE
from repro.uifw.app import App
from repro.uifw.widgets import Icon, TextureBlock, Widget

ICON_SIZE = 14
ICON_GAP = 4
GRID_TOP = 38
GRID_LEFT = 2
ICONS_PER_ROW = 4

WIDGET_RECT = Rect(2, 10, 68, 24)
WIDGET_REFRESH_PERIOD_US = 45_000_000
WIDGET_REFRESH_CYCLES = 60e6


class _PulseWidget(Widget):
    """Headline rows that change on every background refresh."""

    def __init__(self, rect: Rect) -> None:
        super().__init__(rect, name="pulse-widget")
        self.refresh_count = 0

    def draw(self, canvas, now: int) -> None:
        row_h = self.rect.h // 3
        for row in range(3):
            row_rect = Rect(
                self.rect.x,
                self.rect.y + row * row_h,
                self.rect.w,
                row_h - 1,
            )
            canvas.blit_texture(row_rect, f"widget:{self.refresh_count}:{row}")
        canvas.frame_rect(self.rect, 140)


class LauncherApp(App):
    """Home screen with app icons and the news widget."""

    name = "launcher"

    def __init__(self) -> None:
        super().__init__()
        self._icons: dict[str, Icon] = {}
        self._widget = _PulseWidget(WIDGET_RECT)
        self.launched = True  # home is always warm

    def build_ui(self) -> None:
        self.view.background = 5
        self._widget.on_tap = lambda _p: self._open_from_widget()
        self.view.add(self._widget)
        self._layout_icons()
        self._refresh_chain = PeriodicWorkChain(
            self.context.engine,
            self.context.scheduler,
            f"{self.name}:widget-refresh",
            WIDGET_REFRESH_PERIOD_US,
            WIDGET_REFRESH_CYCLES,
            priority=PRIORITY_BACKGROUND,
            on_fire=self._widget_refreshed,
        )
        self._refresh_chain.start()

    # --- icon grid -----------------------------------------------------------------

    def _layout_icons(self) -> None:
        """Create icons for all installed apps except the launcher."""
        apps = [a for a in self.context.wm.apps() if a.name != self.name]
        for existing in self._icons.values():
            if existing in self.view.widgets:
                self.view.widgets.remove(existing)
        self._icons.clear()
        for index, app in enumerate(apps):
            row, col = divmod(index, ICONS_PER_ROW)
            rect = Rect(
                GRID_LEFT + col * (ICON_SIZE + ICON_GAP),
                GRID_TOP + row * (ICON_SIZE + ICON_GAP),
                ICON_SIZE,
                ICON_SIZE,
            )
            icon = Icon(rect, app.label())
            icon.on_tap = lambda _p, target=app: self._launch(target)
            self._icons[app.name] = icon
            self.view.add(icon)

    def refresh_icons(self) -> None:
        """Re-layout after late app installs."""
        self._layout_icons()

    def _launch(self, app: App) -> None:
        category = getattr(app, "launch_category", CATEGORY_COMMON)
        token = self.context.open_interaction(f"launch:{app.name}", category)
        app.launch(token)

    def _open_from_widget(self) -> None:
        """Tapping a widget headline opens the Pulse app."""
        pulse = self.context.wm.app("pulse")
        token = self.context.open_interaction("widget:open-pulse", CATEGORY_COMMON)
        pulse.launch(token)

    # --- widget refresh --------------------------------------------------------------

    def _widget_refreshed(self) -> None:
        self._widget.refresh_count += 1
        if self.context.wm.foreground is self:
            self.context.invalidate()

    # --- affordances ------------------------------------------------------------------

    def dynamic_regions(self) -> list[Rect]:
        """The widget refreshes on its own clock → masked in annotations."""
        return [WIDGET_RECT]

    def tap_target(self, name: str) -> Point:
        if name.startswith("icon:"):
            app_name = name.split(":", 1)[1]
            try:
                return self._icons[app_name].rect.center
            except KeyError:
                raise self._no_target(name)
        if name == "widget":
            return WIDGET_RECT.center
        if name == "dead":
            return Point(66, 36)  # empty strip between widget and grid
        raise self._no_target(name)

    def _no_target(self, name: str):
        from repro.core.errors import SimulationError

        return SimulationError(f"launcher has no tap target {name!r}")

"""The Logo Quiz game — Dataset 02.

Interaction-heavy: the user moves through menu → level grid → puzzles,
and answers by typing on the on-screen keyboard.  Key taps fall into the
HCI *typing* category with its tight 150 ms threshold, which is where slow
governors (conservative above all) accumulate irritation fastest.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.metrics.hci import (
    CATEGORY_COMMON,
    CATEGORY_SIMPLE,
    CATEGORY_TYPING,
)
from repro.uifw.app import App, Stage
from repro.uifw.view import View
from repro.uifw.widgets import Button, Keyboard, Label, TextField, TextureBlock

LEVEL_COUNT = 9
LOGOS_PER_LEVEL = 6

KEY_TAP_CYCLES = 100e6
CHECK_ANSWER_CYCLES = 500e6
OPEN_LEVEL_STAGES: list[Stage] = [(350e6, 10_000), (400e6, 0)]
OPEN_LOGO_STAGES: list[Stage] = [(280e6, 8_000), (320e6, 0)]


class LogoQuizApp(App):
    """Menu → level grid → logo puzzle with typed answers."""

    name = "logoquiz"
    launch_category = CATEGORY_COMMON

    def __init__(self) -> None:
        super().__init__()
        self._menu_view = View("logoquiz:menu", background=18)
        self._levels_view = View("logoquiz:levels", background=18)
        self._puzzle_view = View("logoquiz:puzzle", background=14)
        self._current_level = 0
        self._current_logo = 0
        self._solved: set[tuple[int, int]] = set()
        self._busy = False

    def build_ui(self) -> None:
        self._view = self._menu_view
        width, height = self.screen_size()

        self._menu_logo = TextureBlock(Rect(12, 16, 48, 30), "logoquiz:banner")
        self._menu_view.add(self._menu_logo)
        self._play_button = Button(Rect(20, 56, 32, 14), "play")
        self._play_button.on_tap = lambda _p: self._open_levels()
        self._menu_view.add(self._play_button)

        self._level_buttons: list[Button] = []
        for index in range(LEVEL_COUNT):
            row, col = divmod(index, 3)
            rect = Rect(6 + col * 22, 14 + row * 20, 18, 16)
            button = Button(rect, f"level{index}")
            button.on_tap = lambda _p, i=index: self._open_level(i)
            self._level_buttons.append(button)
            self._levels_view.add(button)

        self._logo_image = TextureBlock(Rect(16, 12, 40, 28), "logo:placeholder")
        self._puzzle_view.add(self._logo_image)
        self._answer_field = TextField(Rect(6, 44, 44, 9), "logoquiz:answer")
        self._answer_field.focused = True
        self._puzzle_view.add(self._answer_field)
        self._check_button = Button(Rect(52, 44, 16, 9), "check")
        self._check_button.on_tap = lambda _p: self._check_answer()
        self._puzzle_view.add(self._check_button)
        self._result_label = Label(Rect(6, 56, 62, 8), "result:none")
        self._result_label.visible = False
        self._puzzle_view.add(self._result_label)
        self._keyboard = Keyboard(width, height - 10)
        self._keyboard.on_tap = self._on_keyboard_tap
        self._puzzle_view.add(self._keyboard)

    # --- game flow ---------------------------------------------------------------------

    def _open_levels(self) -> None:
        if self._busy:
            return
        token = self.context.open_interaction("open-levels", CATEGORY_SIMPLE)

        def done() -> None:
            self._view = self._levels_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("open-levels", 300e6, done)

    def _open_level(self, index: int) -> None:
        if self._busy:
            return
        token = self.context.open_interaction(
            f"open-level:{index}", CATEGORY_SIMPLE
        )
        self._current_level = index
        self._current_logo = 0

        def stage_done(stage: int) -> None:
            if stage == len(OPEN_LEVEL_STAGES) - 1:
                self._show_logo()
            self.context.invalidate()

        self.context.run_stages(
            f"open-level:{index}",
            OPEN_LEVEL_STAGES,
            stage_done,
            lambda: token.complete(self.context.now()),
        )

    def _show_logo(self) -> None:
        self._logo_image.key = (
            f"logo:{self._current_level}:{self._current_logo}"
        )
        self._answer_field.clear()
        self._result_label.visible = False
        self._view = self._puzzle_view

    def _on_keyboard_tap(self, point: Point) -> None:
        char = self._keyboard.key_at(point)
        if char is None or self._busy:
            return
        token = self.context.open_interaction(f"type:{char}", CATEGORY_TYPING)

        def done() -> None:
            self._answer_field.append(char)
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"key:{char}", KEY_TAP_CYCLES, done)

    def _check_answer(self) -> None:
        if self._busy:
            return
        token = self.context.open_interaction("check-answer", CATEGORY_SIMPLE)
        level, logo = self._current_level, self._current_logo

        def done() -> None:
            self._solved.add((level, logo))
            self._result_label.text = f"result:{level}:{logo}"
            self._result_label.visible = True
            self._current_logo = (logo + 1) % LOGOS_PER_LEVEL
            self._show_logo()
            self._result_label.visible = True
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("check-answer", CHECK_ANSWER_CYCLES, done)

    def on_back(self, token) -> bool:
        if self._view is self._puzzle_view:
            target = self._levels_view
        elif self._view is self._levels_view:
            target = self._menu_view
        else:
            return False

        def complete() -> None:
            self._view = target
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("back-render", 40e6, complete)
        return True

    # --- affordances -----------------------------------------------------------------------

    def dynamic_regions(self) -> list[Rect]:
        """The blinking cursor in the answer field (paper §II-D)."""
        if self._view is self._puzzle_view:
            return [self._answer_field.cursor_rect]
        return []

    def tap_target(self, name: str) -> Point:
        if name == "btn:play":
            return self._play_button.rect.center
        if name.startswith("level:"):
            return self._level_buttons[int(name.split(":")[1])].rect.center
        if name.startswith("key:"):
            return self._keyboard.key_rect(name.split(":", 1)[1]).center
        if name == "btn:check":
            return self._check_button.rect.center
        if name == "dead":
            return Point(4, 68)
        raise SimulationError(f"logoquiz has no tap target {name!r}")

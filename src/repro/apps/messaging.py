"""Multimedia messaging — Dataset 03 (with the Pulse widget).

Composing and sending an MMS reproduces the paper's trickiest matching
case: "sending an email could pop up a loading bar which disappears again
after the email is send[t]. The suggested lag ending therefore looks like
the beginning" — the matcher must look for the *second* occurrence of the
ending image.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.metrics.hci import (
    CATEGORY_COMMON,
    CATEGORY_SIMPLE,
    CATEGORY_TYPING,
)
from repro.uifw.app import App, Stage
from repro.uifw.view import View
from repro.uifw.widgets import (
    Button,
    Keyboard,
    ListView,
    ProgressBar,
    TextField,
    TextureBlock,
)

THREAD_COUNT = 8
THREAD_ROW_H = 13

KEY_TAP_CYCLES = 100e6
OPEN_THREAD_CYCLES = 450e6
ATTACH_PICKER_STAGES: list[Stage] = [(350e6, 10_000), (400e6, 0)]
PICK_IMAGE_CYCLES = 500e6
SEND_STAGES = 5
SEND_STAGE_CYCLES = 300e6


class MessagingApp(App):
    """Thread list → conversation with keyboard, attach and send."""

    name = "messaging"
    launch_category = CATEGORY_COMMON

    def __init__(self) -> None:
        super().__init__()
        self._threads_view = View("messaging:threads", background=10)
        self._compose_view = View("messaging:compose", background=8)
        self._picker_view = View("messaging:picker", background=12)
        self._current_thread = 0
        self._messages_sent = 0
        self._attached: str | None = None
        self._busy = False

    def build_ui(self) -> None:
        self._view = self._threads_view
        width, height = self.screen_size()

        self._threads = ListView(
            Rect(0, 10, width, height - 22),
            [f"thread:{i}" for i in range(THREAD_COUNT)],
            THREAD_ROW_H,
            name="messaging-threads",
        )
        self._threads.on_tap = self._on_thread_tap
        self._threads_view.add(self._threads)

        self._history = TextureBlock(
            Rect(2, 10, width - 4, 30), "messaging:history:0:0"
        )
        self._compose_view.add(self._history)
        self._attachment = TextureBlock(
            Rect(4, 42, 20, 12), "messaging:attachment:none"
        )
        self._attachment.visible = False
        self._compose_view.add(self._attachment)
        self._body_field = TextField(Rect(2, 56, 50, 9), "messaging:body")
        self._body_field.focused = True
        self._compose_view.add(self._body_field)
        self._attach_button = Button(Rect(54, 56, 8, 9), "at")
        self._attach_button.on_tap = lambda _p: self._open_picker()
        self._compose_view.add(self._attach_button)
        self._send_button = Button(Rect(63, 56, 8, 9), "snd")
        self._send_button.on_tap = lambda _p: self._send()
        self._compose_view.add(self._send_button)
        self._send_bar = ProgressBar(Rect(8, 68, 56, 6), "messaging:sendbar")
        self._send_bar.visible = False
        self._compose_view.add(self._send_bar)
        self._keyboard = Keyboard(width, height - 10)
        self._keyboard.on_tap = self._on_keyboard_tap
        self._compose_view.add(self._keyboard)

        self._picker_thumbs: list[TextureBlock] = []
        for index in range(6):
            row, col = divmod(index, 3)
            rect = Rect(4 + col * 23, 14 + row * 22, 21, 20)
            thumb = TextureBlock(rect, f"picker:image:{index}")
            thumb.on_tap = lambda _p, i=index: self._pick_image(i)
            self._picker_thumbs.append(thumb)
            self._picker_view.add(thumb)

    def cold_start_stages(self) -> list[Stage]:
        return [(280e6, 12_000), (330e6, 10_000), (300e6, 0)]

    # --- conversation flow ------------------------------------------------------------------

    def _on_thread_tap(self, point: Point) -> None:
        index = self._threads.item_at(point)
        if index is None or self._busy:
            return
        token = self.context.open_interaction(
            f"open-thread:{index}", CATEGORY_SIMPLE
        )
        self._current_thread = index

        def done() -> None:
            self._history.key = (
                f"messaging:history:{index}:{self._messages_sent}"
            )
            self._body_field.clear()
            self._attached = None
            self._attachment.visible = False
            self._view = self._compose_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"open-thread:{index}", OPEN_THREAD_CYCLES, done)

    def _on_keyboard_tap(self, point: Point) -> None:
        char = self._keyboard.key_at(point)
        if char is None or self._busy:
            return
        token = self.context.open_interaction(f"type:{char}", CATEGORY_TYPING)

        def done() -> None:
            self._body_field.append(char)
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"key:{char}", KEY_TAP_CYCLES, done)

    def _open_picker(self) -> None:
        if self._busy:
            return
        token = self.context.open_interaction("open-picker", CATEGORY_SIMPLE)

        def stage_done(stage: int) -> None:
            if stage == len(ATTACH_PICKER_STAGES) - 1:
                self._view = self._picker_view
            self.context.invalidate()

        self.context.run_stages(
            "open-picker",
            ATTACH_PICKER_STAGES,
            stage_done,
            lambda: token.complete(self.context.now()),
        )

    def _pick_image(self, index: int) -> None:
        if self._busy:
            return
        token = self.context.open_interaction(
            f"pick-image:{index}", CATEGORY_SIMPLE
        )

        def done() -> None:
            self._attached = f"picker:image:{index}"
            self._attachment.key = f"messaging:attachment:{index}"
            self._attachment.visible = True
            self._view = self._compose_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"pick-image:{index}", PICK_IMAGE_CYCLES, done)

    def _send(self) -> None:
        """Send the MMS: progress bar fills then disappears.

        The final screen equals the pre-send compose screen except for the
        cleared body and history bump — and, crucially, the bar area looks
        exactly like it did before the tap, creating the second-occurrence
        matching case.
        """
        if self._busy or not self._body_field.content:
            return
        token = self.context.open_interaction("send-mms", CATEGORY_COMMON)
        self._busy = True
        self._send_bar.visible = True
        self._send_bar.fraction = 0.0
        self.context.invalidate()

        def stage_done(index: int) -> None:
            self._send_bar.fraction = (index + 1) / SEND_STAGES
            self.context.invalidate()

        def done() -> None:
            self._busy = False
            self._messages_sent += 1
            self._send_bar.visible = False
            self._history.key = (
                f"messaging:history:{self._current_thread}:{self._messages_sent}"
            )
            self._body_field.clear()
            self._attached = None
            self._attachment.visible = False
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.run_stages(
            "send-mms",
            [(SEND_STAGE_CYCLES, 20_000)] * SEND_STAGES,
            stage_done,
            done,
        )

    def on_back(self, token) -> bool:
        if self._view is self._picker_view:
            target = self._compose_view
        elif self._view is self._compose_view:
            target = self._threads_view
        else:
            return False

        def complete() -> None:
            self._view = target
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("back-render", 40e6, complete)
        return True

    # --- affordances ----------------------------------------------------------------------------

    def dynamic_regions(self) -> list[Rect]:
        if self._view is self._compose_view:
            return [self._body_field.cursor_rect]
        return []

    def tap_target(self, name: str) -> Point:
        if name.startswith("thread:"):
            index = int(name.split(":")[1])
            row_y = (
                self._threads.rect.y
                + index * THREAD_ROW_H
                - self._threads.scroll_px
                + THREAD_ROW_H // 2
            )
            if not (self._threads.rect.y <= row_y < self._threads.rect.bottom):
                raise SimulationError(f"thread {index} not on screen")
            return Point(self._threads.rect.center.x, row_y)
        if name.startswith("key:"):
            return self._keyboard.key_rect(name.split(":", 1)[1]).center
        if name == "btn:attach":
            return self._attach_button.rect.center
        if name == "btn:send":
            return self._send_button.rect.center
        if name.startswith("pick:"):
            return self._picker_thumbs[int(name.split(":")[1])].rect.center
        if name == "dead":
            return Point(4, 80)
        raise SimulationError(f"messaging has no tap target {name!r}")

"""Movie Studio — Dataset 04.

Video-project editing: importing clips and rendering previews/exports are
the heaviest tasks in the study's workloads, landing in the HCI *complex*
category (12 s threshold).
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.metrics.hci import CATEGORY_COMMON, CATEGORY_COMPLEX, CATEGORY_SIMPLE
from repro.uifw.app import App, Stage
from repro.uifw.view import View
from repro.uifw.widgets import Button, ProgressBar, Spinner, TextureBlock

MAX_CLIPS = 6
IMPORT_CLIP_CYCLES = 900e6
PREVIEW_STAGE_CYCLES = 550e6
PREVIEW_STAGES = 4  # ~1.8 Gcycles total
EXPORT_STAGE_CYCLES = 850e6
EXPORT_STAGES = 5  # ~3.5 Gcycles total


class MovieStudioApp(App):
    """Project timeline with clip import, preview render and export."""

    name = "moviestudio"
    launch_category = CATEGORY_COMMON

    def __init__(self) -> None:
        super().__init__()
        self._project_view = View("moviestudio:project", background=16)
        self._clips: list[TextureBlock] = []
        self._clip_count = 0
        self._previews_rendered = 0
        self._exports_done = 0
        self._busy = False

    def build_ui(self) -> None:
        self._view = self._project_view
        width, _height = self.screen_size()

        self._preview_area = TextureBlock(
            Rect(6, 12, width - 12, 40), "moviestudio:preview:empty"
        )
        self._project_view.add(self._preview_area)

        for index in range(MAX_CLIPS):
            rect = Rect(4 + index * 11, 56, 10, 12)
            clip = TextureBlock(rect, f"moviestudio:clip-slot:{index}")
            clip.visible = False
            clip.on_tap = lambda _p, i=index: self._select_clip(i)
            self._clips.append(clip)
            self._project_view.add(clip)
        self._selected_clip: int | None = None

        self._add_button = Button(Rect(4, 74, 20, 11), "addclip")
        self._add_button.on_tap = lambda _p: self._add_clip()
        self._project_view.add(self._add_button)
        self._preview_button = Button(Rect(27, 74, 20, 11), "preview")
        self._preview_button.on_tap = lambda _p: self._render_preview()
        self._project_view.add(self._preview_button)
        self._export_button = Button(Rect(50, 74, 20, 11), "export")
        self._export_button.on_tap = lambda _p: self._export()
        self._project_view.add(self._export_button)

        self._render_bar = ProgressBar(Rect(6, 92, 60, 7), "moviestudio:render")
        self._render_bar.visible = False
        self._project_view.add(self._render_bar)
        self._spinner = Spinner(Rect(30, 102, 12, 10), "moviestudio:spinner")
        self._project_view.add(self._spinner)

    def cold_start_stages(self) -> list[Stage]:
        return [(420e6, 20_000), (500e6, 15_000), (420e6, 0)]

    # --- editing operations --------------------------------------------------------------

    def _select_clip(self, index: int) -> None:
        """Timeline selection: a cheap, frequent editing tap.

        Re-selecting the current clip is ignored — it would change nothing
        on screen, so there is no interaction to service.
        """
        if (
            self._busy
            or index >= self._clip_count
            or index == self._selected_clip
        ):
            return
        token = self.context.open_interaction(
            f"select-clip:{index}", CATEGORY_SIMPLE
        )

        def done() -> None:
            previous = self._selected_clip
            if previous is not None and previous < self._clip_count:
                self._clips[previous].key = f"moviestudio:clip:{previous}"
            self._selected_clip = index
            self._clips[index].key = f"moviestudio:clip:{index}:sel"
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"select-clip:{index}", 120e6, done)

    def _add_clip(self) -> None:
        if self._busy or self._clip_count >= MAX_CLIPS:
            return
        token = self.context.open_interaction(
            f"add-clip:{self._clip_count}", CATEGORY_COMMON
        )
        index = self._clip_count
        self._busy = True
        self._spinner.active = True
        self.context.wm.hold_animation()
        self.context.invalidate()

        def done() -> None:
            self._busy = False
            self._spinner.active = False
            self.context.wm.release_animation()
            self._clips[index].key = f"moviestudio:clip:{index}"
            self._clips[index].visible = True
            self._clip_count += 1
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"import-clip:{index}", IMPORT_CLIP_CYCLES, done)

    def _render_preview(self) -> None:
        if self._busy or self._clip_count == 0:
            return
        token = self.context.open_interaction("render-preview", CATEGORY_COMPLEX)
        self._start_render(
            "preview",
            PREVIEW_STAGES,
            PREVIEW_STAGE_CYCLES,
            lambda: self._finish_preview(token),
        )

    def _finish_preview(self, token) -> None:
        self._previews_rendered += 1
        self._preview_area.key = (
            f"moviestudio:preview:{self._clip_count}:{self._previews_rendered}"
        )
        self._finish_render(token)

    def _export(self) -> None:
        if self._busy or self._previews_rendered == 0:
            return
        token = self.context.open_interaction("export-movie", CATEGORY_COMPLEX)
        self._start_render(
            "export",
            EXPORT_STAGES,
            EXPORT_STAGE_CYCLES,
            lambda: self._finish_export(token),
        )

    def _finish_export(self, token) -> None:
        self._exports_done += 1
        self._finish_render(token)

    def _start_render(
        self, label: str, stages: int, stage_cycles: float, on_done
    ) -> None:
        self._busy = True
        self._render_bar.visible = True
        self._render_bar.fraction = 0.0
        self.context.invalidate()

        def stage_done(index: int) -> None:
            self._render_bar.fraction = (index + 1) / stages
            self.context.invalidate()

        self.context.run_stages(
            label,
            [(stage_cycles, 5_000)] * stages,
            stage_done,
            on_done,
        )

    def _finish_render(self, token) -> None:
        self._busy = False
        self._render_bar.visible = False
        self.context.invalidate()
        token.complete(self.context.now())

    # --- affordances -------------------------------------------------------------------------

    def tap_target(self, name: str) -> Point:
        if name.startswith("clip:"):
            return self._clips[int(name.split(":")[1])].rect.center
        if name == "btn:addclip":
            return self._add_button.rect.center
        if name == "btn:preview":
            return self._preview_button.rect.center
        if name == "btn:export":
            return self._export_button.rect.center
        if name == "dead":
            return Point(66, 104)
        raise SimulationError(f"moviestudio has no tap target {name!r}")

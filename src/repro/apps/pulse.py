"""Pulse News — Datasets 03 (widget) and 05 (app).

A scrollable feed of stories; swipes scroll the list (short render lags),
taps open articles (multi-stage text + image loads).
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.metrics.hci import CATEGORY_COMMON, CATEGORY_SIMPLE
from repro.uifw.app import App, Stage
from repro.uifw.gestures import Swipe
from repro.uifw.view import View
from repro.uifw.widgets import ListView, TextureBlock

STORY_COUNT = 24
STORY_ROW_H = 14

SCROLL_RENDER_CYCLES = 80e6
OPEN_STORY_STAGES: list[Stage] = [(400e6, 12_000), (550e6, 0)]
REFRESH_STAGES: list[Stage] = [(350e6, 30_000), (300e6, 0)]


class PulseApp(App):
    """News feed with scrollable stories and article views."""

    name = "pulse"
    launch_category = CATEGORY_COMMON

    def __init__(self) -> None:
        super().__init__()
        self._feed_view = View("pulse:feed", background=10)
        self._article_view = View("pulse:article", background=6)
        self._current_story = 0
        self._busy = False

    def build_ui(self) -> None:
        self._view = self._feed_view
        width, height = self.screen_size()
        self._feed = ListView(
            Rect(0, 10, width, height - 24),
            [f"story:{i}" for i in range(STORY_COUNT)],
            STORY_ROW_H,
            name="pulse-feed",
        )
        self._feed.on_item_tap = self._open_story
        self._feed.on_tap = self._on_feed_tap
        self._feed_view.add(self._feed)
        self._feed_view.on_swipe = self._on_feed_swipe

        self._article_title = TextureBlock(
            Rect(4, 12, width - 8, 12), "article:title:placeholder"
        )
        self._article_view.add(self._article_title)
        self._article_body = TextureBlock(
            Rect(4, 26, width - 8, 52), "article:body:placeholder"
        )
        self._article_body.visible = False
        self._article_view.add(self._article_body)
        self._article_image = TextureBlock(
            Rect(8, 82, width - 16, 28), "article:image:placeholder"
        )
        self._article_image.visible = False
        self._article_view.add(self._article_image)

        self._refresh_banner = TextureBlock(
            Rect(14, 12, width - 28, 10), "pulse:refreshing"
        )
        self._refresh_banner.visible = False
        self._feed_view.add(self._refresh_banner)

    def cold_start_stages(self) -> list[Stage]:
        return [(300e6, 15_000), (380e6, 15_000), (350e6, 10_000), (330e6, 0)]

    # --- feed ---------------------------------------------------------------------------

    def _on_feed_tap(self, point: Point) -> None:
        index = self._feed.item_at(point)
        if index is not None:
            self._open_story(index)

    def _on_feed_swipe(self, swipe: Swipe) -> bool:
        if self._busy:
            return True
        if swipe.delta_y > 0 and self._feed.scroll_px == 0:
            # Pull-to-refresh at the top of the feed.
            self.refresh_feed()
            return True
        token = self.context.open_interaction("scroll-feed", CATEGORY_SIMPLE)
        delta_px = -swipe.delta_y * 2

        def done() -> None:
            # State changes at render completion so the visual change and
            # the lag ending coincide at every frequency.
            self._feed.scroll_by(delta_px)
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("scroll-render", SCROLL_RENDER_CYCLES, done)
        return True

    def _open_story(self, index: int) -> None:
        if self._busy:
            return
        token = self.context.open_interaction(
            f"open-story:{index}", CATEGORY_COMMON
        )
        self._current_story = index
        self._article_title.key = f"article:title:{index}"
        self._article_body.visible = False
        self._article_image.visible = False
        self._view = self._article_view

        def stage_done(stage: int) -> None:
            if stage == 0:
                self._article_body.key = f"article:body:{index}"
                self._article_body.visible = True
            else:
                self._article_image.key = f"article:image:{index}"
                self._article_image.visible = True
            self.context.invalidate()

        self.context.run_stages(
            f"open-story:{index}",
            OPEN_STORY_STAGES,
            stage_done,
            lambda: token.complete(self.context.now()),
        )

    def refresh_feed(self) -> None:
        """Pull-to-refresh: a banner appears, then the feed settles back.

        When triggered at the top of the feed, the final screen is
        identical to the one at the input — the paper's "ending looks like
        the beginning" case, which the matcher handles by looking for the
        *second* occurrence of the ending image.
        """
        if self._busy:
            return
        token = self.context.open_interaction("refresh-feed", CATEGORY_COMMON)
        self._busy = True
        self._refresh_banner.visible = True
        self.context.invalidate()

        def done() -> None:
            self._busy = False
            self._refresh_banner.visible = False
            self._feed.scroll_px = 0
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.run_stages("refresh", REFRESH_STAGES, on_done=done)

    def on_back(self, token) -> bool:
        if self._view is not self._article_view:
            return False

        def complete() -> None:
            self._view = self._feed_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("back-render", 40e6, complete)
        return True

    # --- affordances ------------------------------------------------------------------------

    def tap_target(self, name: str) -> Point:
        if name.startswith("story:"):
            index = int(name.split(":")[1])
            # Aim at the story row if it is currently visible.
            row_y = (
                self._feed.rect.y
                + index * STORY_ROW_H
                - self._feed.scroll_px
                + STORY_ROW_H // 2
            )
            if not (
                self._feed.rect.y <= row_y < self._feed.rect.bottom
            ):
                raise SimulationError(f"story {index} not on screen")
            return Point(self._feed.rect.center.x, row_y)
        if name == "dead":
            return Point(36, 115)  # strip between feed bottom and nav bar
        raise SimulationError(f"pulse has no tap target {name!r}")

    def swipe_target(self, name: str) -> tuple[Point, Point, int]:
        x = self._feed.rect.center.x
        if name == "scroll-up":  # content moves up: finger travels up
            return Point(x, 96), Point(x, 40), 180_000
        if name == "scroll-down":
            return Point(x, 40), Point(x, 96), 180_000
        if name == "pull-refresh":
            return Point(x, 30), Point(x, 80), 220_000
        raise SimulationError(f"pulse has no swipe target {name!r}")

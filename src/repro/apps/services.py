"""Background system services.

Periodic sync/housekeeping work that runs regardless of what the user
does.  This is the load the paper's first ondemand issue concerns —
frequency raised "when the user does not need extra performance, for
example, when a background task executes while the user is reading".
Timing and size jitter come from a *noise* RNG stream, so repetitions of
the same workload differ the way real runs do while the recorded input
trace stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.core.engine import Engine
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND, Task
from repro.kernel.workchains import submit_chunked


@dataclass(frozen=True, slots=True)
class ServiceSpec:
    """One periodic background service."""

    name: str
    mean_period_us: int
    period_jitter_us: int
    mean_cycles: float
    cycles_jitter: float


DEFAULT_SERVICES: tuple[ServiceSpec, ...] = (
    ServiceSpec("account-sync", 45_000_000, 12_000_000, 650e6, 200e6),
    ServiceSpec("telephony", 20_000_000, 7_000_000, 120e6, 40e6),
    ServiceSpec("sensor-batch", 8_000_000, 3_000_000, 55e6, 18e6),
    ServiceSpec("gc-housekeeping", 30_000_000, 10_000_000, 380e6, 120e6),
)


class BackgroundServices:
    """Drives the periodic background tasks of the device."""

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        noise: Random,
        services: tuple[ServiceSpec, ...] = DEFAULT_SERVICES,
    ) -> None:
        self._engine = engine
        self._scheduler = scheduler
        self._noise = noise
        self._services = services
        self._started = False
        self.tasks_spawned = 0

    def start(self) -> None:
        """Arm every service's first expiry."""
        if self._started:
            return
        self._started = True
        for spec in self._services:
            # Stagger first runs so services do not fire in phase.
            first = self._noise.randint(1_000_000, spec.mean_period_us)
            self._engine.schedule_after(first, lambda s=spec: self._fire(s))

    def _fire(self, spec: ServiceSpec) -> None:
        cycles = max(
            1e6,
            self._noise.gauss(spec.mean_cycles, spec.cycles_jitter / 2),
        )
        self.tasks_spawned += 1
        submit_chunked(
            self._engine,
            self._scheduler,
            f"svc:{spec.name}",
            cycles,
        )
        period = max(
            1_000_000,
            int(self._noise.gauss(spec.mean_period_us, spec.period_jitter_us / 2)),
        )
        self._engine.schedule_after(period, lambda: self._fire(spec))

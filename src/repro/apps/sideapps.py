"""The simpler pre-installed apps from §III-A.

Facebook, Gmail and the Play Store share a generic feed-app shape; the
Calculator is pure rapid-fire typing-category taps; the Music player runs
light periodic decode work in the background while playing — load the
governors see *outside* interaction lags.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.kernel.task import PRIORITY_BACKGROUND
from repro.kernel.workchains import PeriodicWorkChain
from repro.metrics.hci import CATEGORY_COMMON, CATEGORY_SIMPLE, CATEGORY_TYPING
from repro.uifw.app import App, Stage
from repro.uifw.gestures import Swipe
from repro.uifw.view import View
from repro.uifw.widgets import Button, ListView, ProgressBar, TextureBlock

FEED_ROW_H = 13
SCROLL_RENDER_CYCLES = 80e6

MUSIC_DECODE_PERIOD_US = 2_000_000
MUSIC_DECODE_CYCLES = 18e6


class FeedApp(App):
    """Generic scroll-and-open feed app (Facebook, Gmail, Play Store)."""

    launch_category = CATEGORY_COMMON

    def __init__(
        self,
        name: str,
        item_count: int = 20,
        open_stages: list[Stage] | None = None,
    ) -> None:
        self.name = name
        super().__init__()
        self._item_count = item_count
        self._open_stages = open_stages or [(350e6, 10_000), (430e6, 0)]
        self._feed_view = View(f"{name}:feed", background=10)
        self._item_view = View(f"{name}:item", background=6)
        self._busy = False

    def build_ui(self) -> None:
        self._view = self._feed_view
        width, height = self.screen_size()
        self._feed = ListView(
            Rect(0, 10, width, height - 24),
            [f"{self.name}:item:{i}" for i in range(self._item_count)],
            FEED_ROW_H,
            name=f"{self.name}-feed",
        )
        self._feed.on_tap = self._on_feed_tap
        self._feed_view.add(self._feed)
        self._feed_view.on_swipe = self._on_feed_swipe
        self._item_content = TextureBlock(
            Rect(4, 12, width - 8, 90), f"{self.name}:content:placeholder"
        )
        self._item_view.add(self._item_content)

    def _on_feed_tap(self, point: Point) -> None:
        index = self._feed.item_at(point)
        if index is None or self._busy:
            return
        token = self.context.open_interaction(
            f"open-item:{index}", CATEGORY_COMMON
        )

        def stage_done(stage: int) -> None:
            if stage == len(self._open_stages) - 1:
                self._item_content.key = f"{self.name}:content:{index}"
                self._view = self._item_view
            self.context.invalidate()

        self.context.run_stages(
            f"open-item:{index}",
            self._open_stages,
            stage_done,
            lambda: token.complete(self.context.now()),
        )

    def _on_feed_swipe(self, swipe: Swipe) -> bool:
        if self._busy:
            return True
        token = self.context.open_interaction("scroll", CATEGORY_SIMPLE)
        delta_px = -swipe.delta_y * 2

        def done() -> None:
            self._feed.scroll_by(delta_px)
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("scroll-render", SCROLL_RENDER_CYCLES, done)
        return True

    def on_back(self, token) -> bool:
        if self._view is not self._item_view:
            return False

        def complete() -> None:
            self._view = self._feed_view
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work("back-render", 40e6, complete)
        return True

    def tap_target(self, name: str) -> Point:
        if name.startswith("item:"):
            index = int(name.split(":")[1])
            row_y = (
                self._feed.rect.y
                + index * FEED_ROW_H
                - self._feed.scroll_px
                + FEED_ROW_H // 2
            )
            if not (self._feed.rect.y <= row_y < self._feed.rect.bottom):
                raise SimulationError(f"item {index} not on screen")
            return Point(self._feed.rect.center.x, row_y)
        if name == "dead":
            return Point(36, 115)
        raise SimulationError(f"{self.name} has no tap target {name!r}")

    def swipe_target(self, name: str) -> tuple[Point, Point, int]:
        x = self._feed.rect.center.x
        if name == "scroll-up":
            return Point(x, 96), Point(x, 40), 180_000
        if name == "scroll-down":
            return Point(x, 40), Point(x, 96), 180_000
        raise SimulationError(f"{self.name} has no swipe target {name!r}")


class CalculatorApp(App):
    """Rapid small taps; every key press is a typing-category lag."""

    name = "calculator"
    launch_category = CATEGORY_SIMPLE

    KEY_TAP_CYCLES = 60e6
    EVAL_CYCLES = 150e6

    def __init__(self) -> None:
        super().__init__()
        self._calc_view = View("calculator:root", background=14)
        self._entry = ""
        self._results = 0

    def build_ui(self) -> None:
        self._view = self._calc_view
        width, _height = self.screen_size()
        self._display = TextureBlock(Rect(4, 12, width - 8, 14), "calc:display:")
        self._calc_view.add(self._display)
        self._key_buttons: dict[str, Button] = {}
        keys = "789/456*123-0=+."
        for index, char in enumerate(keys):
            row, col = divmod(index, 4)
            rect = Rect(4 + col * 17, 30 + row * 15, 15, 13)
            button = Button(rect, f"calckey:{char}")
            button.on_tap = lambda _p, c=char: self._press(c)
            self._key_buttons[char] = button
            self._calc_view.add(button)

    def cold_start_stages(self) -> list[Stage]:
        return [(150e6, 5_000), (170e6, 0)]

    def _press(self, char: str) -> None:
        if char == "=":
            token = self.context.open_interaction("evaluate", CATEGORY_SIMPLE)

            def evaluated() -> None:
                self._results += 1
                self._entry = ""
                self._display.key = f"calc:result:{self._results}"
                self.context.invalidate()
                token.complete(self.context.now())

            self.context.post_work("evaluate", self.EVAL_CYCLES, evaluated)
            return
        token = self.context.open_interaction(f"key:{char}", CATEGORY_TYPING)

        def pressed() -> None:
            self._entry += char
            self._display.key = f"calc:display:{self._entry}"
            self.context.invalidate()
            token.complete(self.context.now())

        self.context.post_work(f"key:{char}", self.KEY_TAP_CYCLES, pressed)

    def tap_target(self, name: str) -> Point:
        if name.startswith("key:"):
            return self._key_buttons[name.split(":", 1)[1]].rect.center
        if name == "dead":
            return Point(68, 110)
        raise SimulationError(f"calculator has no tap target {name!r}")


class MusicApp(App):
    """Play/pause plus a progress bar; decoding runs in the background."""

    name = "music"
    launch_category = CATEGORY_SIMPLE

    TOGGLE_CYCLES = 200e6

    def __init__(self) -> None:
        super().__init__()
        self._music_view = View("music:root", background=12)
        self.playing = False
        self._decode_count = 0

    def build_ui(self) -> None:
        self._view = self._music_view
        width, _height = self.screen_size()
        self._art = TextureBlock(Rect(12, 14, width - 24, 44), "music:art:0")
        self._music_view.add(self._art)
        self._seek_bar = ProgressBar(Rect(8, 64, width - 16, 6), "music:seek")
        self._music_view.add(self._seek_bar)
        self._play_button = Button(Rect(26, 76, 20, 13), "play")
        self._play_button.on_tap = lambda _p: self._toggle()
        self._music_view.add(self._play_button)
        self._decode_chain = PeriodicWorkChain(
            self.context.engine,
            self.context.scheduler,
            f"{self.name}:decode",
            MUSIC_DECODE_PERIOD_US,
            MUSIC_DECODE_CYCLES,
            priority=PRIORITY_BACKGROUND,
            on_fire=self._decoded,
        )

    def cold_start_stages(self) -> list[Stage]:
        return [(190e6, 10_000), (210e6, 0)]

    def _toggle(self) -> None:
        token = self.context.open_interaction(
            "pause" if self.playing else "play", CATEGORY_SIMPLE
        )

        def done() -> None:
            self.playing = not self.playing
            self._play_button.label = "pause" if self.playing else "play"
            self.context.invalidate()
            token.complete(self.context.now())
            if self.playing:
                self._decode_chain.start()
            else:
                self._decode_chain.stop()

        self.context.post_work("toggle", self.TOGGLE_CYCLES, done)

    def _decoded(self) -> None:
        self._decode_count += 1
        self._seek_bar.fraction = (self._decode_count % 90) / 90
        if self.context.wm.foreground is self:
            self.context.invalidate()

    def dynamic_regions(self) -> list[Rect]:
        """Seek-bar advances on its own clock while playing."""
        return [self._seek_bar.rect]

    def tap_target(self, name: str) -> Point:
        if name == "btn:toggle":
            return self._play_button.rect.center
        if name == "dead":
            return Point(6, 100)
        raise SimulationError(f"music has no tap target {name!r}")


def make_side_apps() -> list[App]:
    """The side apps installed on the study device."""
    return [
        FeedApp("facebook", item_count=24),
        FeedApp("gmail", item_count=18, open_stages=[(300e6, 10_000), (350e6, 0)]),
        FeedApp("playstore", item_count=16, open_stages=[(420e6, 15_000), (460e6, 0)]),
        CalculatorApp(),
        MusicApp(),
    ]

"""Screen capture: lossless video of the device display (paper §II-C).

Batch captures materialise a :class:`Video`; the streaming pipeline
delivers closed frame runs to :class:`FrameTap` subscribers instead (see
:mod:`repro.capture.stream`).
"""

from repro.capture.hdmi import CaptureCard
from repro.capture.stream import (
    FrameDigestTap,
    FrameTap,
    SegmentStreamer,
    replay_segments,
    stream_enabled,
)
from repro.capture.video import Frame, Video, VideoSegment

__all__ = [
    "CaptureCard",
    "Frame",
    "FrameDigestTap",
    "FrameTap",
    "SegmentStreamer",
    "Video",
    "VideoSegment",
    "replay_segments",
    "stream_enabled",
]

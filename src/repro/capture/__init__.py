"""Screen capture: lossless video of the device display (paper §II-C)."""

from repro.capture.hdmi import CaptureCard
from repro.capture.video import Frame, Video, VideoSegment

__all__ = ["CaptureCard", "Frame", "Video", "VideoSegment"]

"""The capture card: display → video.

Stands in for the paper's HDMI → Elgato Game Capture HD chain (Fig. 6):
a lossless tap on the panel's composed frames.  Lossless direct capture is
the point — "we avoid image artifacts which would significantly complicate
the process of comparing video frames".
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CaptureError
from repro.device.display import Display, frame_index_at
from repro.capture.video import Video


class CaptureCard:
    """Records the display's composed frames into a :class:`Video`."""

    def __init__(self, display: Display) -> None:
        self._display = display
        self._video: Video | None = None
        self._capturing = False
        self._attached = False

    @property
    def capturing(self) -> bool:
        return self._capturing

    def start(self, now: int) -> None:
        """Begin capturing; grabs the current screen as the first frame."""
        if self._capturing:
            raise CaptureError("capture already running")
        self._video = Video(self._display.width, self._display.height)
        self._capturing = True
        if not self._attached:
            self._display.add_frame_observer(self._on_frame)
            self._attached = True
        # Seed with what is on screen right now.
        self._video.record_frame(
            frame_index_at(now), np.array(self._display.framebuffer, copy=True)
        )

    def stop(self, now: int) -> Video:
        """Stop capturing and return the finished video."""
        if not self._capturing or self._video is None:
            raise CaptureError("no capture running")
        self._capturing = False
        video = self._video
        video.finalize(frame_index_at(now) + 1)
        self._video = None
        return video

    def _on_frame(self, frame_index: int, content) -> None:
        if self._capturing and self._video is not None:
            self._video.record_frame(frame_index, content)

"""The capture card: display → video or segment stream.

Stands in for the paper's HDMI → Elgato Game Capture HD chain (Fig. 6):
a lossless tap on the panel's composed frames.  Lossless direct capture is
the point — "we avoid image artifacts which would significantly complicate
the process of comparing video frames".

Two delivery modes share one recording state machine:

* **batch** (``start(now)``): frames accumulate into a terminal
  :class:`Video` returned by ``stop`` — O(session) memory, needed when a
  consumer requires random access (the annotator, the suggester);
* **streaming** (``start(now, streaming=True)``): no video is kept;
  closed frame runs flow to subscribed :class:`~repro.capture.stream.
  FrameTap` objects as the replay executes and are then released —
  O(active-window) memory, the default replay path.

Taps registered via :meth:`add_tap` observe the identical segment
sequence in both modes: live in streaming mode, replayed from the
finished video at ``stop`` in batch mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CaptureError
from repro.device.display import Display, frame_index_at
from repro.capture.stream import FrameTap, SegmentStreamer, replay_segments
from repro.capture.video import Video


class CaptureCard:
    """Records the display's composed frames into a video or a stream."""

    def __init__(self, display: Display) -> None:
        self._display = display
        self._video: Video | None = None
        self._streamer: SegmentStreamer | None = None
        self._taps: list[FrameTap] = []
        self._capturing = False
        self._attached = False

    @property
    def capturing(self) -> bool:
        return self._capturing

    def add_tap(self, tap: FrameTap) -> None:
        """Subscribe ``tap`` to the closed-segment stream of every
        subsequent capture (register before :meth:`start`)."""
        if self._capturing:
            raise CaptureError("cannot add a tap while a capture is running")
        self._taps.append(tap)

    def start(self, now: int, *, streaming: bool = False) -> None:
        """Begin capturing; grabs the current screen as the first frame.

        With ``streaming=True`` no :class:`Video` is materialised —
        frames flow to the registered taps and are released.
        """
        if self._capturing:
            raise CaptureError("capture already running")
        if streaming:
            self._streamer = SegmentStreamer(
                self._display.width, self._display.height
            )
            for tap in self._taps:
                self._streamer.add_tap(tap)
        else:
            self._video = Video(self._display.width, self._display.height)
        self._capturing = True
        if not self._attached:
            self._display.add_frame_observer(self._on_frame)
            self._attached = True
        # Seed with what is on screen right now.
        self._sink().record_frame(
            frame_index_at(now), np.array(self._display.framebuffer, copy=True)
        )

    def stop(self, now: int) -> Video | None:
        """Stop capturing; returns the finished video (batch mode) or
        ``None`` (streaming mode — the taps already saw everything)."""
        if not self._capturing:
            raise CaptureError("no capture running")
        self._capturing = False
        end_frame = frame_index_at(now) + 1
        if self._streamer is not None:
            streamer, self._streamer = self._streamer, None
            streamer.finalize(end_frame)
            return None
        if self._video is None:
            raise CaptureError("no capture running")
        video, self._video = self._video, None
        video.finalize(end_frame)
        for tap in self._taps:
            replay_segments(video.segments(), end_frame, tap)
        return video

    def _sink(self):
        return self._streamer if self._streamer is not None else self._video

    def _on_frame(self, frame_index: int, content) -> None:
        if self._capturing:
            self._sink().record_frame(frame_index, content)

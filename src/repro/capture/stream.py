"""Streaming frame segments: the capture card's tap bus.

The batch pipeline materialises a whole :class:`~repro.capture.video.Video`
and analyses it post-hoc, which costs O(session) memory — the wall the
day-long and persona workloads hit first.  This module is the streaming
alternative: a :class:`SegmentStreamer` runs the exact RLE state machine
the video container uses, but *emits* each run of identical frames to
subscribed :class:`FrameTap` objects as soon as the run can no longer
change, then forgets it.  Consumers that can reduce online (the matcher,
digest accumulators) therefore hold O(active-window) state instead of the
whole capture.

A segment is emitted once two newer runs exist behind it: the recording
semantics (same-vsync recomposition may replace the last run or merge it
back into its predecessor) can only ever mutate the last two runs, so
holding exactly two pending runs makes emitted segments immutable.  The
``Video`` container records through this same state machine, which is what
makes streamed segments bit-identical to ``video.segments()``.

``REPRO_STREAM=0`` disables the streaming run pipeline (see
:func:`stream_enabled`), preserving the materialise-then-analyze batch
path for A/B comparison — the two paths must produce bit-identical study
output.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.core.env import env_flag
from repro.core.errors import CaptureError
from repro.obs.session import active as _obs_active

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.capture.video import Frame, VideoSegment


def stream_enabled() -> bool:
    """Whether the streaming run pipeline is on (default) or the batch
    materialise-then-analyze path should be used.

    Controlled by ``REPRO_STREAM`` (mirror of ``REPRO_FASTPATH``): any
    value but ``0`` streams.  Output (lag profiles, energy, digests) is
    bit-identical either way; ``REPRO_STREAM=0`` exists for A/B
    verification and as a kill switch.
    """
    return env_flag("REPRO_STREAM", default=True)


class FrameTap:
    """A subscriber to the capture card's segment stream.

    Taps receive every closed segment, in frame order, exactly once —
    during replay on the streaming path, or replayed from the finished
    video at ``stop()`` on the batch path, so a tap observes the same
    sequence either way.  Subclasses override what they need; both
    methods are no-ops by default.
    """

    def on_segment(self, segment: "VideoSegment") -> None:
        """One closed run of identical frames ``[start, end)``."""

    def on_stop(self, end_frame: int) -> None:
        """The capture stopped; ``end_frame`` is one past the last frame."""


class FrameDigestTap(FrameTap):
    """Accumulates the frame-journal digest without holding any frames.

    Digest of the ``(start, end, content-digest)`` triple of every
    segment — the quantity the golden-equivalence tests pin, computed in
    O(1) memory instead of over a materialised video.
    """

    def __init__(self) -> None:
        self._digest = hashlib.blake2b(digest_size=16)
        self.segment_count = 0
        self.end_frame: int | None = None

    def on_segment(self, segment: "VideoSegment") -> None:
        self._digest.update(segment.start.to_bytes(8, "big"))
        self._digest.update(segment.end.to_bytes(8, "big"))
        self._digest.update(segment.digest)
        self.segment_count += 1

    def on_stop(self, end_frame: int) -> None:
        self.end_frame = end_frame

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


class SegmentStreamer:
    """The RLE recording state machine with incremental segment emission.

    Frames are recorded exactly as into a :class:`Video` (gap filling,
    same-vsync replacement, merge-back), but completed runs flow out to
    taps instead of accumulating: at most two pending runs are held at
    any time.
    """

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._pending: list[VideoSegment] = []
        self._taps: list[FrameTap] = []
        self._finalized = False
        self._obs = _obs_active()
        self._emitted = 0

    @property
    def finalized(self) -> bool:
        return self._finalized

    def add_tap(self, tap: FrameTap) -> None:
        self._taps.append(tap)

    def pending_segments(self) -> list["VideoSegment"]:
        """The (at most two) runs that may still change."""
        return list(self._pending)

    # --- recording ------------------------------------------------------------

    def record_frame(self, frame_index: int, content: "Frame") -> None:
        """Record the display content as of ``frame_index``.

        Same contract as :meth:`Video.record_frame`: gaps are filled with
        the previous content, re-recording the current index replaces it
        (two compositions inside one vsync interval).
        """
        from repro.capture.video import VideoSegment, content_digest

        if self._finalized:
            raise CaptureError("capture already finalized")
        if content.shape != (self.height, self.width):
            raise CaptureError(
                f"frame shape {content.shape} != video {self.height, self.width}"
            )
        digest = content_digest(content)
        if not self._pending:
            if frame_index < 0:
                raise CaptureError("frame index must be >= 0")
            self._append(
                VideoSegment(frame_index, frame_index + 1, content.copy(), digest)
            )
            return
        last = self._pending[-1]
        if frame_index == last.end - 1:
            # Same vsync slot composed again: replace.
            if digest == last.digest:
                return
            if last.length == 1:
                removed = self._pending.pop()
                prev = self._pending[-1] if self._pending else None
                if prev is not None and prev.digest == digest:
                    prev.end = frame_index + 1
                else:
                    self._append(
                        VideoSegment(
                            removed.start, removed.end, content.copy(), digest
                        )
                    )
            else:
                last.end = frame_index
                self._append(
                    VideoSegment(frame_index, frame_index + 1, content.copy(), digest)
                )
            return
        if frame_index < last.end - 1:
            raise CaptureError(
                f"frame {frame_index} recorded after frame {last.end - 1}"
            )
        # Fill the still gap, then start a new segment if content changed.
        last.end = frame_index
        if digest == last.digest:
            last.end = frame_index + 1
        else:
            self._append(
                VideoSegment(frame_index, frame_index + 1, content.copy(), digest)
            )

    def finalize(self, end_frame_index: int) -> None:
        """Extend the last still period to the capture stop point, flush
        every pending segment to the taps and signal the stop."""
        if self._finalized:
            raise CaptureError("capture already finalized")
        if not self._pending:
            raise CaptureError("cannot finalize an empty video")
        last = self._pending[-1]
        if end_frame_index < last.end:
            raise CaptureError("finalize cannot truncate the video")
        last.end = end_frame_index
        self._finalized = True
        for segment in self._pending:
            self._emit(segment)
        self._pending.clear()
        for tap in self._taps:
            tap.on_stop(end_frame_index)
        obs = self._obs
        if obs is not None:
            obs.segments_streamed(self._emitted, end_frame_index)

    # --- internals ------------------------------------------------------------

    def _append(self, segment: "VideoSegment") -> None:
        self._pending.append(segment)
        # Mutations (gap fill, same-vsync replace, merge-back) only ever
        # touch the last two runs; anything older is immutable — emit it.
        while len(self._pending) > 2:
            self._emit(self._pending.pop(0))

    def _emit(self, segment: "VideoSegment") -> None:
        self._emitted += 1
        for tap in self._taps:
            tap.on_segment(segment)


def replay_segments(segments, end_frame: int, tap: FrameTap) -> None:
    """Feed an already-materialised segment list through a tap.

    The batch path (``REPRO_STREAM=0``) uses this at capture stop so a
    tap observes the identical segment sequence the streaming path would
    have delivered live.
    """
    for segment in segments:
        tap.on_segment(segment)
    tap.on_stop(end_frame)

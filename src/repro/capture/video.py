"""The video container.

A capture is a 30 fps sequence of frames.  Because the screen is still for
long stretches (the paper's 24-hour workload especially), frames are
stored as run-length segments of identical content, while the API exposes
exact frame-by-frame semantics: ``frame_at(i)`` for any index, and
segment iteration for algorithms (suggester, matcher) that can
short-circuit over still periods.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import CaptureError
from repro.device.display import VSYNC_PERIOD_US, frame_timestamp

Frame = np.ndarray


def content_digest(frame: Frame) -> bytes:
    """A stable digest of a frame's pixels (for exact-equality checks)."""
    return hashlib.blake2b(frame.tobytes(), digest_size=16).digest()


@dataclass(slots=True)
class VideoSegment:
    """A run of consecutive identical frames ``[start, end)``."""

    start: int
    end: int
    content: Frame
    digest: bytes

    @property
    def length(self) -> int:
        return self.end - self.start


class _CollectTap:
    """Streamer tap that accumulates closed segments into a list."""

    __slots__ = ("_segments",)

    def __init__(self, segments: list[VideoSegment]) -> None:
        self._segments = segments

    def on_segment(self, segment: VideoSegment) -> None:
        self._segments.append(segment)

    def on_stop(self, end_frame: int) -> None:
        pass


class Video:
    """An RLE-compressed, frame-addressable screen capture.

    Recording runs through the same :class:`~repro.capture.stream.
    SegmentStreamer` state machine the streaming pipeline uses, so the
    segments a materialised video exposes are bit-identical to the ones
    streamed to frame taps — the property the ``REPRO_STREAM`` A/B
    equivalence rests on.
    """

    def __init__(self, width: int, height: int, fps_period_us: int = VSYNC_PERIOD_US):
        from repro.capture.stream import SegmentStreamer

        self.width = width
        self.height = height
        self.fps_period_us = fps_period_us
        self._segments: list[VideoSegment] = []
        self._streamer = SegmentStreamer(width, height)
        self._streamer.add_tap(_CollectTap(self._segments))

    # --- recording side -------------------------------------------------------------

    def record_frame(self, frame_index: int, content: Frame) -> None:
        """Record the display content as of ``frame_index``.

        Gaps since the previous recorded frame are filled with the
        previous content (the capture card samples a static signal).
        Re-recording the current index replaces its content (two
        compositions inside one vsync interval).
        """
        self._streamer.record_frame(frame_index, content)

    def finalize(self, end_frame_index: int) -> None:
        """Extend the last still period to the capture stop point."""
        self._streamer.finalize(end_frame_index)

    @property
    def _finalized(self) -> bool:
        return self._streamer.finalized

    def _all_segments(self) -> list[VideoSegment]:
        """Closed plus still-pending segments (pending empty once final)."""
        if self._streamer.finalized:
            return self._segments
        return self._segments + self._streamer.pending_segments()

    # --- read side ---------------------------------------------------------------------

    @property
    def start_frame(self) -> int:
        segments = self._all_segments()
        if not segments:
            raise CaptureError("video is empty")
        return segments[0].start

    @property
    def end_frame(self) -> int:
        """One past the last frame index."""
        segments = self._all_segments()
        if not segments:
            raise CaptureError("video is empty")
        return segments[-1].end

    @property
    def frame_count(self) -> int:
        return self.end_frame - self.start_frame

    @property
    def segment_count(self) -> int:
        return len(self._all_segments())

    def segments(self) -> list[VideoSegment]:
        return list(self._all_segments())

    def segments_between(self, start: int, end: int) -> Iterator[VideoSegment]:
        """Segments overlapping frame range ``[start, end)``, clipped."""
        for segment in self._all_segments():
            if segment.end <= start:
                continue
            if segment.start >= end:
                break
            yield VideoSegment(
                max(segment.start, start),
                min(segment.end, end),
                segment.content,
                segment.digest,
            )

    def frame_at(self, frame_index: int) -> Frame:
        """The content shown during frame ``frame_index``."""
        segment = self._segment_for(frame_index)
        return segment.content

    def digest_at(self, frame_index: int) -> bytes:
        return self._segment_for(frame_index).digest

    def _segment_for(self, frame_index: int) -> VideoSegment:
        segments = self._all_segments()
        lo, hi = 0, len(segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            segment = segments[mid]
            if frame_index < segment.start:
                hi = mid - 1
            elif frame_index >= segment.end:
                lo = mid + 1
            else:
                return segment
        raise CaptureError(f"frame {frame_index} outside video range")

    def iter_frames(self, start: int | None = None, end: int | None = None):
        """Yield ``(frame_index, content)`` for every frame — the exact
        frame-by-frame view the paper's algorithms are defined over."""
        start = self.start_frame if start is None else start
        end = self.end_frame if end is None else end
        for segment in self.segments_between(start, end):
            for index in range(segment.start, segment.end):
                yield index, segment.content

    def frame_time_us(self, frame_index: int) -> int:
        """Timestamp of a frame's vsync boundary."""
        return frame_timestamp(frame_index)

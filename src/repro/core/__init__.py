"""Simulation kernel and shared primitives.

This package provides the deterministic event-driven engine
(:mod:`repro.core.engine`), the integer-microsecond time base
(:mod:`repro.core.simtime`), Linux input-event constants
(:mod:`repro.core.events`), geometry primitives, seeded RNG streams and
the exception hierarchy shared by every other subsystem.
"""

from repro.core.engine import Engine, ScheduledEvent
from repro.core.errors import (
    AnnotationError,
    MatchError,
    ReplayError,
    ReproError,
    SimulationError,
)
from repro.core.geometry import Point, Rect
from repro.core.rng import RngStreams
from repro.core.simtime import (
    MICROS_PER_MILLI,
    MICROS_PER_SECOND,
    format_micros,
    micros,
    millis,
    seconds,
    to_millis,
    to_seconds,
)

__all__ = [
    "Engine",
    "ScheduledEvent",
    "ReproError",
    "SimulationError",
    "ReplayError",
    "AnnotationError",
    "MatchError",
    "Point",
    "Rect",
    "RngStreams",
    "MICROS_PER_MILLI",
    "MICROS_PER_SECOND",
    "micros",
    "millis",
    "seconds",
    "to_millis",
    "to_seconds",
    "format_micros",
]

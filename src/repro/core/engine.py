"""Deterministic event-driven simulation engine.

The engine owns a :class:`~repro.core.simtime.SimClock` and a priority queue
of scheduled callbacks.  Events firing at the same timestamp are ordered by
an explicit priority, then by insertion order, which makes every simulation
fully deterministic regardless of Python hash seeds.

The queue is the simulator's hottest data structure: a governor replay
pushes and pops tens of thousands of entries per simulated minute.  Three
design points keep it fast:

* Heap entries are plain ``(time, priority, seq, event)`` tuples, so
  :mod:`heapq` orders them with C-level integer comparisons instead of
  calling back into a Python ``__lt__`` for every sift step.
* Cancelling leaves a tombstone in the heap (O(1)); when tombstones
  outnumber live entries the heap is compacted in place, so cancelled-timer
  churn (scheduler completions, governor re-targets) cannot bloat it.
* Periodic events (:meth:`Engine.schedule_periodic`) are re-armed in place
  by the run loop after each fire — one :class:`ScheduledEvent` for the
  lifetime of a sampling timer rather than one allocation per expiry.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.core.errors import SimulationError
from repro.core.simtime import SimClock

# Priorities for same-timestamp ordering.  Lower runs first.  Input events
# are delivered before governor timers so that the interactive governor's
# input boost sees the event in the same sample it arrived, as on Linux
# where the input notifier fires from the event path itself.
PRIORITY_INPUT = 0
PRIORITY_TASK = 10
PRIORITY_TIMER = 20
PRIORITY_RENDER = 30
PRIORITY_DEFAULT = 50

# Compact the heap once at least this many tombstones accumulate AND they
# outnumber the live entries.  The floor keeps tiny simulations from
# compacting constantly; the ratio bounds heap size at 2x the live set.
_COMPACT_MIN_TOMBSTONES = 64


class ScheduledEvent:
    """A callback scheduled to fire at a simulation timestamp.

    The event object is the *handle* callers keep (for :meth:`cancel`); the
    heap itself stores ``(time, priority, seq, event)`` tuples so ordering
    never invokes Python-level comparisons.  ``period`` is set for events
    created by :meth:`Engine.schedule_periodic`; the run loop re-arms those
    in place after each fire.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "period",
                 "_engine")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.period: int | None = None
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if not self.cancelled:
            self.cancelled = True
            engine = self._engine
            if engine is not None:
                engine._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq
        )

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        kind = f" period={self.period}" if self.period is not None else ""
        return (
            f"ScheduledEvent(t={self.time}, prio={self.priority}, "
            f"seq={self.seq}, {state}{kind})"
        )


class Engine:
    """A deterministic discrete-event simulation loop."""

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        self._queue: list[tuple[int, int, int, ScheduledEvent]] = []
        self._seq = 0
        self._running = False
        self._fired = 0
        self._tombstones = 0
        self._compactions = 0
        self._firing_priority: int | None = None

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._fired

    @property
    def heap_compactions(self) -> int:
        """Times the queue was compacted to shed cancellation tombstones."""
        return self._compactions

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    @property
    def firing_priority(self) -> int | None:
        """Priority of the event currently being dispatched (None if idle).

        Lets same-timestamp consumers (the governors' parked sampling
        timers) decide whether a timer expiry at exactly ``now`` would have
        fired before or after the event whose callback is running.
        """
        return self._firing_priority

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self.clock._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, priority, seq, callback, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.clock._now + delay, callback, priority)

    def schedule_periodic(
        self,
        first_time: int,
        period_us: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> ScheduledEvent:
        """Schedule ``callback`` at ``first_time`` and then every ``period_us``.

        The run loop re-arms the returned event in place after each fire
        (fresh ``seq``, advanced ``time``), exactly as if the callback had
        rescheduled itself as its last action — but without allocating a new
        event and heap entry per expiry.  Expirations stay aligned to
        ``first_time``; if a callback overruns an expiry the next one is
        pushed to ``now + period``.  :meth:`ScheduledEvent.cancel` stops the
        recurrence.
        """
        if period_us <= 0:
            raise SimulationError("periodic event period must be positive")
        event = self.schedule_at(first_time, callback, priority)
        event.period = period_us
        return event

    def _note_cancelled(self) -> None:
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify, in place.

        In-place (slice assignment) because the run loops bind the queue
        list locally; the list object must keep its identity.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[3].cancelled]
        heapq.heapify(queue)
        self._tombstones = 0
        self._compactions += 1

    def run_until(self, end_time: int) -> None:
        """Fire all events up to and including ``end_time``.

        The clock finishes exactly at ``end_time`` even if the queue drains
        earlier, so that end-of-run accounting (energy integration, final
        frame capture) sees the full interval.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        queue = self._queue
        clock = self.clock
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            while queue:
                entry = queue[0]
                time = entry[0]
                if time > end_time:
                    break
                heappop(queue)
                event = entry[3]
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                # Heap order guarantees monotonic time, so assign directly
                # instead of paying advance_to's rewind check per event.
                clock._now = time
                self._fired += 1
                self._firing_priority = entry[1]
                # A popped event is no longer in the heap: cancelling it
                # mid-callback must not count a tombstone.
                event._engine = None
                event.callback()
                period = event.period
                if period is not None and not event.cancelled:
                    next_time = time + period
                    if next_time <= clock._now:
                        next_time = clock._now + period
                    seq = self._seq
                    self._seq = seq + 1
                    event.time = next_time
                    event.seq = seq
                    event._engine = self
                    heappush(queue, (next_time, event.priority, seq, event))
            self._firing_priority = None
            self.clock.advance_to(max(self.clock._now, end_time))
        finally:
            self._running = False
            self._firing_priority = None

    def run_until_idle(self, limit: int | None = None) -> None:
        """Fire events until the queue is empty (or ``limit`` is reached)."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        queue = self._queue
        clock = self.clock
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            while queue:
                entry = queue[0]
                time = entry[0]
                if limit is not None and time > limit:
                    # Leave it queued: caller only wanted progress to limit.
                    break
                heappop(queue)
                event = entry[3]
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                clock._now = time
                self._fired += 1
                self._firing_priority = entry[1]
                event._engine = None
                event.callback()
                period = event.period
                if period is not None and not event.cancelled:
                    next_time = time + period
                    if next_time <= clock._now:
                        next_time = clock._now + period
                    seq = self._seq
                    self._seq = seq + 1
                    event.time = next_time
                    event.seq = seq
                    event._engine = self
                    heappush(queue, (next_time, event.priority, seq, event))
        finally:
            self._running = False
            self._firing_priority = None

"""Deterministic event-driven simulation engine.

The engine owns a :class:`~repro.core.simtime.SimClock` and a priority queue
of scheduled callbacks.  Events firing at the same timestamp are ordered by
an explicit priority, then by insertion order, which makes every simulation
fully deterministic regardless of Python hash seeds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import SimulationError
from repro.core.simtime import SimClock

# Priorities for same-timestamp ordering.  Lower runs first.  Input events
# are delivered before governor timers so that the interactive governor's
# input boost sees the event in the same sample it arrived, as on Linux
# where the input notifier fires from the event path itself.
PRIORITY_INPUT = 0
PRIORITY_TASK = 10
PRIORITY_TIMER = 20
PRIORITY_RENDER = 30
PRIORITY_DEFAULT = 50


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled to fire at a simulation timestamp."""

    time: int
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True


class Engine:
    """A deterministic discrete-event simulation loop."""

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._fired = 0

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self.clock.now}"
            )
        event = ScheduledEvent(time, priority, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback, priority)

    def run_until(self, end_time: int) -> None:
        """Fire all events up to and including ``end_time``.

        The clock finishes exactly at ``end_time`` even if the queue drains
        earlier, so that end-of-run accounting (energy integration, final
        frame capture) sees the full interval.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.clock.advance_to(event.time)
                self._fired += 1
                event.callback()
            self.clock.advance_to(max(self.clock.now, end_time))
        finally:
            self._running = False

    def run_until_idle(self, limit: int | None = None) -> None:
        """Fire events until the queue is empty (or ``limit`` is reached)."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self._queue:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if limit is not None and event.time > limit:
                    # Put it back: caller only wanted progress up to limit.
                    heapq.heappush(self._queue, event)
                    break
                self.clock.advance_to(event.time)
                self._fired += 1
                event.callback()
        finally:
            self._running = False

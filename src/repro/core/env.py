"""Process-wide ``REPRO_*`` kill-switch flags.

Every environment kill switch in the simulator follows one convention:
the variable set to ``"0"`` means *off*, any other value means *on*, and
an unset variable takes the flag's default.  ``REPRO_FASTPATH`` and
``REPRO_STREAM`` default on (they are opt-out A/B switches for
semantics-preserving optimisations); ``REPRO_TRACE`` defaults off (it is
an opt-in observability switch).

:func:`env_flag` is the one place that parsing lives.  The parsed value
is cached per process keyed on the raw environment string, so repeated
reads cost a dict probe — and a test (or caller) that mutates
``os.environ`` between reads still sees the new value, because a changed
raw string invalidates the cached parse.  Each flag name must be read
with one consistent ``default`` across the process; the well-known flags
below each have exactly one call site defining theirs.
"""

from __future__ import annotations

import os

#: The well-known kill switches, documented in the README's environment
#: variable table.  Name -> (default when unset, one-line meaning).
KNOWN_FLAGS: dict[str, tuple[bool, str]] = {
    "REPRO_FASTPATH": (
        True,
        "governor tick-elision fast path (0 = A/B-verify the slow path)",
    ),
    "REPRO_STREAM": (
        True,
        "streaming run pipeline (0 = batch materialise-then-analyze)",
    ),
    "REPRO_TRACE": (
        False,
        "observability: per-run metrics + flight recorder (1 = on)",
    ),
    "REPRO_DEMAND": (
        True,
        "kernel-only sweep evaluation over demand traces "
        "(0 = full replay per cell)",
    ),
    "REPRO_DEMAND_COMPILE": (
        True,
        "flat-array compiled demand walk "
        "(0 = A/B-verify the node-object interpreter)",
    ),
}

# name -> (raw environ string at parse time, parsed value).  The raw
# string is re-read on every call (a dict probe on os.environ); the cache
# only skips re-parsing — and, crucially, makes the parse auditable in
# one place instead of hand-rolled `!= "0"` comparisons per module.
_FLAG_CACHE: dict[str, tuple[str | None, bool]] = {}


def env_flag(name: str, default: bool = True) -> bool:
    """Whether the kill switch ``name`` is on.

    ``"0"`` means off; any other set value means on; unset means
    ``default``.  "Garbage" values (``""``, ``"no"``, ``"false"``) are
    deliberately *on* — a kill switch must only disarm on the one
    documented spelling, never on a typo.
    """
    raw = os.environ.get(name)
    hit = _FLAG_CACHE.get(name)
    if hit is not None and hit[0] == raw:
        return hit[1]
    value = default if raw is None else raw != "0"
    _FLAG_CACHE[name] = (raw, value)
    return value


def reset_env_flag_cache() -> None:
    """Drop every cached parse (test isolation helper)."""
    _FLAG_CACHE.clear()

"""Exception hierarchy for the reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The simulation engine or a device model reached an invalid state."""


class ReplayError(ReproError):
    """An event trace could not be recorded, parsed or replayed."""


class CaptureError(ReproError):
    """Screen capture failed or a video container is inconsistent."""


class AnnotationError(ReproError):
    """A workload annotation could not be created or loaded."""


class MatchError(ReproError):
    """The matcher failed to locate an expected lag ending in a video."""


class WorkloadError(ReproError):
    """A workload definition is invalid or cannot be synthesised."""


class GovernorError(ReproError):
    """A frequency governor was misconfigured or misused."""

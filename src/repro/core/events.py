"""Linux input-subsystem event model.

The paper records input directly from ``/dev/input/event*`` using the
``getevent`` tool (its Fig. 5 shows the raw hex triples).  We model the same
three-field events — ``(type, code, value)`` — plus the microsecond
timestamp ``getevent -t`` attaches, and the multi-touch protocol-B codes a
Galaxy-Nexus-class touchscreen emits.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- event types (linux/input-event-codes.h) ---------------------------------
EV_SYN = 0x00
EV_KEY = 0x01
EV_REL = 0x02
EV_ABS = 0x03
EV_MSC = 0x04

# --- synchronisation codes ----------------------------------------------------
SYN_REPORT = 0x00
SYN_MT_REPORT = 0x02

# --- multi-touch protocol B absolute-axis codes -------------------------------
ABS_MT_SLOT = 0x2F
ABS_MT_TOUCH_MAJOR = 0x30
ABS_MT_WIDTH_MAJOR = 0x32
ABS_MT_POSITION_X = 0x35
ABS_MT_POSITION_Y = 0x36
ABS_MT_TRACKING_ID = 0x39
ABS_MT_PRESSURE = 0x3A

# --- key codes for the hardware buttons we model ------------------------------
KEY_POWER = 116
KEY_VOLUMEDOWN = 114
KEY_VOLUMEUP = 115
KEY_HOME = 102
KEY_BACK = 158

# ``value`` used to end a protocol-B contact: tracking id -1, which getevent
# prints as ffffffff (see the last touch line of the paper's Fig. 5).
TRACKING_ID_NONE = 0xFFFFFFFF

_TYPE_NAMES = {
    EV_SYN: "EV_SYN",
    EV_KEY: "EV_KEY",
    EV_REL: "EV_REL",
    EV_ABS: "EV_ABS",
    EV_MSC: "EV_MSC",
}

_ABS_CODE_NAMES = {
    ABS_MT_SLOT: "ABS_MT_SLOT",
    ABS_MT_TOUCH_MAJOR: "ABS_MT_TOUCH_MAJOR",
    ABS_MT_WIDTH_MAJOR: "ABS_MT_WIDTH_MAJOR",
    ABS_MT_POSITION_X: "ABS_MT_POSITION_X",
    ABS_MT_POSITION_Y: "ABS_MT_POSITION_Y",
    ABS_MT_TRACKING_ID: "ABS_MT_TRACKING_ID",
    ABS_MT_PRESSURE: "ABS_MT_PRESSURE",
}

_KEY_CODE_NAMES = {
    KEY_POWER: "KEY_POWER",
    KEY_VOLUMEDOWN: "KEY_VOLUMEDOWN",
    KEY_VOLUMEUP: "KEY_VOLUMEUP",
    KEY_HOME: "KEY_HOME",
    KEY_BACK: "KEY_BACK",
}


def type_name(event_type: int) -> str:
    """Symbolic name for an event type (falls back to hex)."""
    return _TYPE_NAMES.get(event_type, f"0x{event_type:02x}")


def code_name(event_type: int, code: int) -> str:
    """Symbolic name for an event code within its type."""
    if event_type == EV_ABS:
        return _ABS_CODE_NAMES.get(code, f"0x{code:02x}")
    if event_type == EV_KEY:
        return _KEY_CODE_NAMES.get(code, f"KEY_{code}")
    if event_type == EV_SYN:
        return {SYN_REPORT: "SYN_REPORT", SYN_MT_REPORT: "SYN_MT_REPORT"}.get(
            code, f"0x{code:02x}"
        )
    return f"0x{code:02x}"


@dataclass(frozen=True, slots=True)
class InputEvent:
    """One kernel input event as read from ``/dev/input/event*``.

    Attributes:
        timestamp: microseconds since simulation start (``getevent -t``).
        device: device node path, e.g. ``/dev/input/event1``.
        type: event type (``EV_*``).
        code: event code within the type (``ABS_MT_*``, ``KEY_*`` …).
        value: the payload; positions, pressure, tracking ids, key state.
    """

    timestamp: int
    device: str
    type: int
    code: int
    value: int

    def is_syn_report(self) -> bool:
        """Whether this event terminates a hardware report packet."""
        return self.type == EV_SYN and self.code == SYN_REPORT

    def describe(self) -> str:
        """Human-readable rendering used by trace dumps."""
        return (
            f"[{self.timestamp:>12d}] {self.device}: "
            f"{type_name(self.type)} {code_name(self.type, self.code)} "
            f"{self.value:08x}"
        )

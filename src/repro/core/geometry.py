"""Geometry primitives shared by the UI framework, touchscreen and masks."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D integer point in screen coordinates (origin top-left)."""

    x: int
    y: int

    def offset(self, dx: int, dy: int) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x, x+w) × [y, y+h)``."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"rectangle dimensions must be >= 0: {self}")

    @property
    def right(self) -> int:
        return self.x + self.w

    @property
    def bottom(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    @property
    def center(self) -> Point:
        return Point(self.x + self.w // 2, self.y + self.h // 2)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside this rectangle."""
        return self.x <= point.x < self.right and self.y <= point.y < self.bottom

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles overlap in a region of positive area."""
        if self.area == 0 or other.area == 0:
            return False
        return (
            self.x < other.right
            and other.x < self.right
            and self.y < other.bottom
            and other.y < self.bottom
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping region, or a zero-area rect at the clamp point."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        right = min(self.right, other.right)
        bottom = min(self.bottom, other.bottom)
        return Rect(x, y, max(0, right - x), max(0, bottom - y))

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both."""
        if self.area == 0:
            return other
        if other.area == 0:
            return self
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.right, other.right)
        bottom = max(self.bottom, other.bottom)
        return Rect(x, y, right - x, bottom - y)

    def clamped_to(self, bounds: "Rect") -> "Rect":
        """This rectangle clipped to ``bounds``."""
        return self.intersection(bounds)

    def inset(self, margin: int) -> "Rect":
        """Shrink the rectangle by ``margin`` on every side (floor at 0)."""
        w = max(0, self.w - 2 * margin)
        h = max(0, self.h - 2 * margin)
        return Rect(self.x + margin, self.y + margin, w, h)

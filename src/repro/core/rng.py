"""Named, seeded random streams.

Every source of stochasticity in the simulation draws from its own named
stream so that, e.g., perturbing background-noise timing between repetitions
does not change which gestures a synthesised user performs.  This mirrors the
paper's setup where the *recorded* input trace is fixed across runs while
system noise varies.
"""

from __future__ import annotations

import random
import zlib


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are derived deterministically from a master seed and a stream
    name, so the same ``(seed, name)`` pair always yields the same sequence
    regardless of creation order.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = self._derive_seed(name)
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """A child family whose master seed is derived from ``name``.

        Useful for giving each repetition of an experiment its own noise
        streams while keeping the workload streams untouched.
        """
        return RngStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        digest = zlib.crc32(name.encode("utf-8"))
        return (self._master_seed * 1_000_003 + digest) & 0x7FFF_FFFF_FFFF_FFFF

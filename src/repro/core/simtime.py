"""Integer-microsecond time base.

All simulation timestamps are integer microseconds since the start of the
simulation.  Integers avoid the floating-point drift that would otherwise
desynchronise replayed input timings from vsync boundaries over a 24-hour
workload (86.4e9 microseconds still fits comfortably in a Python int).
"""

from __future__ import annotations

MICROS_PER_MILLI = 1_000
MICROS_PER_SECOND = 1_000_000
MICROS_PER_MINUTE = 60 * MICROS_PER_SECOND
MICROS_PER_HOUR = 60 * MICROS_PER_MINUTE


def micros(value: float) -> int:
    """Convert a value already in microseconds to the canonical int form."""
    return int(round(value))


def millis(value: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(value * MICROS_PER_MILLI))


def seconds(value: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(value * MICROS_PER_SECOND))


def minutes(value: float) -> int:
    """Convert minutes to integer microseconds."""
    return int(round(value * MICROS_PER_MINUTE))


def hours(value: float) -> int:
    """Convert hours to integer microseconds."""
    return int(round(value * MICROS_PER_HOUR))


def to_millis(timestamp: int) -> float:
    """Express an integer-microsecond timestamp in milliseconds."""
    return timestamp / MICROS_PER_MILLI


def to_seconds(timestamp: int) -> float:
    """Express an integer-microsecond timestamp in seconds."""
    return timestamp / MICROS_PER_SECOND


def format_micros(timestamp: int) -> str:
    """Render a timestamp as ``H:MM:SS.mmm`` for logs and reports."""
    total_ms, rem_us = divmod(timestamp, MICROS_PER_MILLI)
    total_s, ms = divmod(total_ms, 1000)
    total_m, s = divmod(total_s, 60)
    h, m = divmod(total_m, 60)
    base = f"{h}:{m:02d}:{s:02d}.{ms:03d}"
    if rem_us:
        base += f"{rem_us:03d}"
    return base


class SimClock:
    """Monotonic simulation clock owned by the engine.

    The clock only moves forward; the engine advances it as events fire.
    Components hold a reference to the clock rather than to the engine when
    they only need to read the current time.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    def advance_to(self, timestamp: int) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is in the past.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp

"""Demand traces: capture a workload's governor-invariant side once,
evaluate governor configurations with a kernel-only pass many times.

See :mod:`repro.demand.trace` for the data model,
:mod:`repro.demand.capture` for the instrumented capture replay,
:mod:`repro.demand.compile` for the flat-array lowering pass,
:mod:`repro.demand.replayer` for the evaluation pass, and
:mod:`repro.demand.store` for the fleet-side trace cache.  The fleet
engine wires all of it together behind the ``REPRO_DEMAND`` kill
switch; the compiled walk has its own ``REPRO_DEMAND_COMPILE`` switch.
"""

from repro.demand.capture import DemandCaptureError, DemandRecorder, capture_demand
from repro.demand.compile import (
    CompiledDemand,
    compile_trace,
    demand_compile_enabled,
)
from repro.demand.replayer import (
    DemandFallback,
    DemandProgram,
    demand_replay_run,
    make_executor,
)
from repro.demand.store import DemandTraceStore, demand_trace_key
from repro.demand.trace import (
    DEMAND_TRACE_SCHEMA_VERSION,
    DemandNode,
    DemandTrace,
    DemandTraceError,
)

__all__ = [
    "DEMAND_TRACE_SCHEMA_VERSION",
    "CompiledDemand",
    "DemandCaptureError",
    "DemandFallback",
    "DemandNode",
    "DemandProgram",
    "DemandRecorder",
    "DemandTrace",
    "DemandTraceError",
    "DemandTraceStore",
    "capture_demand",
    "compile_trace",
    "demand_compile_enabled",
    "demand_replay_run",
    "demand_trace_key",
    "make_executor",
]


def demand_enabled() -> bool:
    """Is the kernel-only evaluation pass on? (``REPRO_DEMAND``, default 1)."""
    from repro.core.env import env_flag

    return env_flag("REPRO_DEMAND")

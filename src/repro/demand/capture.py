"""Capturing a demand trace: one instrumented full replay per workload.

The recorder runs a normal full replay — apps, window manager, gesture
decoding, the lot — at the capture configuration (pinned lowest OPP, no
background-service noise) and intercepts the three seams where the UI
half hands demand to the kernel half:

* ``engine.schedule_at`` at :data:`~repro.core.engine.PRIORITY_DEFAULT`
  — every IO gap, stage pause and chunk gap the apps schedule.  Kernel
  machinery (governor sampling, task completion, vsync, input
  injection) uses dedicated priorities and passes through untouched.
* ``scheduler.submit`` — every task arrival, with name, cycles and
  priority; the task's completion callback is wrapped so demand it
  produces is recorded as its children.
* ``display.invalidate`` — every frame request.  The window manager's
  composer is a full repaint of live UI state, so painting it into a
  scratch buffer *at invalidate time* captures exactly what the next
  vsync would show; states are deduplicated and interned.

Two demand sources are deliberately **not** recorded:

* The window manager's minute/animation ticks.  They invalidate without
  submitting CPU work, and only repaint content that is either masked
  by the annotation database (clock, seek bar) or non-matching anyway
  (an animating spinner mid-lag), so dropping them cannot move a match
  time — frame digests differ between the passes, match results do not.
* :class:`~repro.kernel.workchains.PeriodicWorkChain` firings.  A chain
  is recorded as one ``chain_start``/``chain_stop`` node pair and the
  evaluation pass re-runs the loop live, because at a faster config the
  gate can close after fewer firings — unrolling the capture's firings
  would bake the capture config's timing into the trace.

Any default-priority demand arriving outside a recorded context is a
capture bug, not a recoverable condition: :class:`DemandCaptureError`
aborts the capture and the fleet falls back to full replays.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager

import numpy as np

from repro.analysis.diff import build_mask, frames_equal
from repro.core.engine import PRIORITY_DEFAULT
from repro.core.errors import ReproError
from repro.core.simtime import seconds
from repro.demand.trace import (
    KIND_CHAIN_START,
    KIND_CHAIN_STOP,
    KIND_INVALIDATE,
    KIND_TASK,
    KIND_TIMER,
    DemandNode,
    DemandTrace,
)
from repro.kernel import workchains
from repro.kernel.task import PRIORITY_FOREGROUND

#: How long past the run window the capture may keep simulating to let
#: recorded task subtrees finish (their children must be in the trace:
#: at faster configs they complete *inside* the window).
CAPTURE_TAIL_LIMIT_US = seconds(300)


class DemandCaptureError(ReproError):
    """The workload's demand could not be captured faithfully."""


class _Suppress:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<suppress>"


#: Context marker: demand produced here is intentionally not recorded.
SUPPRESS = _Suppress()

#: Context entry for the setup (app installation) phase.
_SETUP = (None, None)


class DemandRecorder:
    """Builds a :class:`DemandTrace` from one instrumented replay.

    Context is a stack of ``(parent_node_id, input_ordinal)`` entries
    (or :data:`SUPPRESS`); the top entry attributes every intercepted
    demand action.  Recorded task completions and timer expiries push
    their node id, input injections push their ordinal, chain
    transitions push :data:`SUPPRESS`.
    """

    def __init__(self, device) -> None:
        self._device = device
        self._engine = device.engine
        self._wm = None
        self._stack: list = []
        self.nodes: list[DemandNode] = []
        self.guards: dict[int, tuple[int, ...]] = {}
        self.states: list[bytes] = []
        self._state_ids: dict[bytes, int] = {}
        self._scratch = np.zeros(
            (device.display.height, device.display.width), dtype=np.uint8
        )
        self._fg_inflight: set[int] = set()
        self._chain_keys: dict[int, int] = {}
        self._chains_seen: list = []  # keep chains alive so ids stay unique
        self.next_ordinal = 0
        self.open_tasks = 0
        self.open_timers = 0
        self._instrument()

    def attach_wm(self, wm) -> None:
        """Bind the window manager whose composer paints scratch states.

        The recorder must instrument the engine *before* the window
        manager exists (its constructor arms the first minute tick), so
        the composer is attached in a second step.
        """
        self._wm = wm

    # --- context ---------------------------------------------------------------

    def _current(self):
        return self._stack[-1] if self._stack else None

    @contextmanager
    def scope(self, entry):
        self._stack.append(entry)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def setup_scope(self):
        """Active while the device's apps are installed."""
        with self.scope(_SETUP):
            yield

    def _add_node(self, kind: str, **payload) -> DemandNode:
        context = self._current()
        if context is None or context is SUPPRESS:
            raise DemandCaptureError(
                f"unattributable {kind} demand at t={self._engine.now} "
                f"({payload.get('name') or payload}): not produced by a "
                "recorded callback"
            )
        parent, ordinal = context
        node = DemandNode(
            node_id=len(self.nodes),
            kind=kind,
            parent=parent,
            input_ordinal=ordinal,
            **payload,
        )
        self.nodes.append(node)
        return node

    # --- instrumentation --------------------------------------------------------

    def _instrument(self) -> None:
        device = self._device
        engine = device.engine
        scheduler = device.scheduler
        display = device.display
        original_schedule = engine.schedule_at
        original_submit = scheduler.submit
        original_invalidate = display.invalidate
        from repro.uifw.view import WindowManager

        tick_funcs = (WindowManager._animation_tick, WindowManager._minute_tick)

        def schedule_at(time, callback, priority=PRIORITY_DEFAULT):
            if priority != PRIORITY_DEFAULT:
                return original_schedule(time, callback, priority)
            if (
                self._current() is SUPPRESS
                or getattr(callback, "__func__", None) in tick_funcs
            ):
                return original_schedule(
                    time, self._suppressed_fire(callback), priority
                )
            node = self._add_node(
                KIND_TIMER, delay_us=time - engine.now
            )
            self.open_timers += 1
            return original_schedule(
                time, self._recorded_fire(node.node_id, callback), priority
            )

        def submit(task):
            context = self._current()
            if context is SUPPRESS:
                task.on_complete = self._wrap_completion(
                    task.on_complete, None, False
                )
            else:
                node = self._add_node(
                    KIND_TASK,
                    name=task.name,
                    cycles=task.cycles,
                    priority=task.priority,
                )
                foreground = task.priority == PRIORITY_FOREGROUND
                if foreground:
                    self._fg_inflight.add(node.node_id)
                self.open_tasks += 1
                task.on_complete = self._wrap_completion(
                    task.on_complete, node.node_id, foreground
                )
            return original_submit(task)

        def invalidate():
            context = self._current()
            if context is not SUPPRESS:
                self._add_node(KIND_INVALIDATE, state_id=self._intern_state())
            return original_invalidate()

        engine.schedule_at = schedule_at
        scheduler.submit = submit
        display.invalidate = invalidate

    def _suppressed_fire(self, callback):
        def fire():
            with self.scope(SUPPRESS):
                callback()

        return fire

    def _recorded_fire(self, node_id: int, callback):
        def fire():
            self.open_timers -= 1
            with self.scope((node_id, None)):
                callback()

        return fire

    def _wrap_completion(self, original, node_id, foreground: bool):
        def completed(task):
            if node_id is None:
                entry = SUPPRESS
            else:
                self.open_tasks -= 1
                if foreground:
                    self._fg_inflight.discard(node_id)
                entry = (node_id, None)
            with self.scope(entry):
                if original is not None:
                    original(task)

        return completed

    def _intern_state(self) -> int:
        # The WM composer is a full repaint of live state; painting it at
        # invalidate time equals the next vsync's content up to masked or
        # never-matching time-varying pixels (clock, cursor, spinner).
        self._wm._compose(self._scratch)
        raw = self._scratch.tobytes()
        state_id = self._state_ids.get(raw)
        if state_id is None:
            state_id = len(self.states)
            self.states.append(zlib.compress(raw))
            self._state_ids[raw] = state_id
        return state_id

    # --- input ordinals ----------------------------------------------------------

    def wrap_agent(self, agent) -> None:
        """Attribute demand produced while injecting event *k* to ordinal k."""
        original_inject = agent._inject

        def inject(event):
            ordinal = self.next_ordinal
            self.next_ordinal = ordinal + 1
            guard = tuple(sorted(self._fg_inflight))
            if guard:
                self.guards[ordinal] = guard
            with self.scope((None, ordinal)):
                original_inject(event)

        agent._inject = inject

    # --- PeriodicWorkChain observer ----------------------------------------------

    def _chain_key(self, chain) -> int:
        key = self._chain_keys.get(id(chain))
        if key is None:
            key = len(self._chain_keys)
            self._chain_keys[id(chain)] = key
            self._chains_seen.append(chain)
        return key

    def chain_started(self, chain) -> None:
        self._add_node(
            KIND_CHAIN_START,
            chain_key=self._chain_key(chain),
            name=chain.name,
            period_us=chain.period_us,
            cycles=chain.cycles,
            priority=chain.priority,
        )

    def chain_stopped(self, chain) -> None:
        self._add_node(KIND_CHAIN_STOP, chain_key=self._chain_key(chain))

    def chain_firing(self, chain):
        return self.scope(SUPPRESS)

    # --- result ------------------------------------------------------------------

    def match_table(
        self, database
    ) -> tuple[list[tuple[int, ...]], tuple[int, ...]]:
        """Per-annotation match verdicts for every interned state.

        The evaluation pass only ever composes interned states, so
        comparing each state against each annotation ending *once here*
        lets every swept cell replace pixel comparison with a set probe
        (see :attr:`~repro.demand.trace.DemandTrace.match_states`).
        """
        display = self._device.display
        shape = (display.height, display.width)
        arrays: list = [None] * len(self.states)
        for raw, state_id in self._state_ids.items():
            arrays[state_id] = np.frombuffer(raw, dtype=np.uint8).reshape(shape)
        blank = np.zeros(shape, dtype=np.uint8)
        match_states: list[tuple[int, ...]] = []
        blank_matches: list[int] = []
        for lag_index, annotation in enumerate(database.annotations):
            mask = build_mask(annotation.image.shape, annotation.mask_rects)
            match_states.append(
                tuple(
                    state_id
                    for state_id, frame in enumerate(arrays)
                    if frames_equal(
                        frame, annotation.image, mask, annotation.tolerance_px
                    )
                )
            )
            if frames_equal(blank, annotation.image, mask,
                            annotation.tolerance_px):
                blank_matches.append(lag_index)
        return match_states, tuple(blank_matches)

    def build_trace(
        self, workload: str, capture_config: str, duration_us: int
    ) -> DemandTrace:
        display = self._device.display
        return DemandTrace(
            workload=workload,
            capture_config=capture_config,
            duration_us=duration_us,
            width=display.width,
            height=display.height,
            input_events=self.next_ordinal,
            nodes=self.nodes,
            guards=self.guards,
            states=self.states,
        )


def capture_demand(artifacts, device_config=None) -> DemandTrace:
    """Run one instrumented full replay and return its demand trace.

    The capture runs at the pinned recording frequency with background
    services disabled: services are config-seeded noise the evaluation
    pass re-runs *live* (same RNG stream as a full replay), so recording
    them here would double them.  After the normal run window the
    simulation keeps going until every recorded task subtree has
    completed — at faster configs those subtrees finish inside the
    window, so their children must be in the trace.
    """
    from repro.apps import install_standard_apps
    from repro.device.device import Device
    from repro.harness.experiment import RUN_TAIL_US
    from repro.replay import ReplayAgent
    from repro.scenarios.profiles import device_config_for
    from repro.uifw.view import WindowManager

    if device_config is None:
        device_config = device_config_for(artifacts.spec)
    capture_config = f"fixed:{device_config.frequency_table.min_khz}"
    device = Device(device_config)
    recorder = DemandRecorder(device)
    previous_observer = workchains.set_chain_observer(recorder)
    try:
        wm = WindowManager(device)
        recorder.attach_wm(wm)
        with recorder.setup_scope():
            install_standard_apps(wm)
        device.set_governor(capture_config)
        agent = ReplayAgent(device.engine, device.input_subsystem)
        recorder.wrap_agent(agent)
        agent.schedule(artifacts.trace)

        run_window = artifacts.duration_us + RUN_TAIL_US
        device.run_for(run_window)
        waited = 0
        while (recorder.open_tasks or recorder.open_timers) and (
            waited < CAPTURE_TAIL_LIMIT_US
        ):
            device.run_for(seconds(1))
            waited += seconds(1)
        if recorder.open_tasks or recorder.open_timers:
            raise DemandCaptureError(
                f"workload {artifacts.name!r}: {recorder.open_tasks} tasks "
                f"and {recorder.open_timers} timers still open "
                f"{CAPTURE_TAIL_LIMIT_US} us past the run window"
            )
    finally:
        workchains.set_chain_observer(previous_observer)
    trace = recorder.build_trace(artifacts.name, capture_config, run_window)
    trace.match_states, trace.blank_matches = recorder.match_table(
        artifacts.database
    )
    trace.validate()
    return trace

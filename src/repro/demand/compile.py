"""Lowering a demand trace to its compiled, flat-array form.

The interpreted evaluation pass (:class:`~repro.demand.replayer.
_DemandExecutor`) walks :class:`~repro.demand.trace.DemandNode` objects:
every executed node costs attribute loads on a slotted dataclass, dict
probes into the children index, and — for tasks and timers — a freshly
allocated closure.  On a sweep that is pure overhead: the trace is
immutable, so all of it can be resolved **once per worker** into parallel
``array('q')`` int64 columns and walked by integer index.

:func:`compile_trace` lowers a trace into a :class:`CompiledDemand`:

* one column per payload field (``kind`` as an integer opcode,
  ``priority``, ``delay_us``, ``state_id``, ``chain_key``, ``period_us``;
  ``-1`` encodes an absent value), plus preallocated lists for the two
  payloads that are not integers (``names``, interned; ``cycles``, kept
  as the recorded numbers so task arithmetic is bit-identical to the
  interpreter's),
* a single flat ``walk`` array of node ids holding every execution list —
  the setup phase, each input ordinal's roots, and each node's children —
  addressed CSR-style: ``child_off[i]:child_off[i+1]`` are node *i*'s
  children, ``input_off[k]:input_off[k+1]`` are ordinal *k*'s roots, and
  ``setup_lo:setup_hi`` is the setup phase.  Within every range the
  capture's callback order is preserved, exactly as
  :meth:`~repro.demand.trace.DemandTrace.children_by_parent` returns it,
* ``guards`` as a dense list indexed by input ordinal (the interpreter
  probes a dict per input),
* fused ``actions`` — one tuple per node carrying the opcode, its
  verbatim payloads and its children resolved to a preallocated list of
  action tuples — plus ``setup_actions``/``input_actions``, the root
  execution lists in the same form.  The executor iterates those lists
  directly: evaluating a node is tuple indexing off one iteration
  variable, with no per-walk dict probes, dataclass attribute loads or
  closure allocations.

The compiled walk is gated behind ``REPRO_DEMAND_COMPILE`` (default on;
``=0`` is the kill switch that A/B-verifies the interpreter), with the
contract that the emitted :class:`~repro.results.RunRecord` is
bit-identical either way — both executors issue the same scheduler
submissions and engine timers in the same order, so the event heap's
deterministic sequence numbers never diverge.
"""

from __future__ import annotations

import sys
from array import array

from repro.core.env import env_flag
from repro.demand.trace import (
    KIND_CHAIN_START,
    KIND_CHAIN_STOP,
    KIND_INVALIDATE,
    KIND_TASK,
    KIND_TIMER,
    DemandTrace,
)

_TYPECODE = "q"  # signed 64-bit: node ids, delays, state ids all fit

#: Integer opcodes of the compiled walk, one per node kind.
OP_TASK = 0
OP_TIMER = 1
OP_INVALIDATE = 2
OP_CHAIN_START = 3
OP_CHAIN_STOP = 4

_OPCODES: dict[str, int] = {
    KIND_TASK: OP_TASK,
    KIND_TIMER: OP_TIMER,
    KIND_INVALIDATE: OP_INVALIDATE,
    KIND_CHAIN_START: OP_CHAIN_START,
    KIND_CHAIN_STOP: OP_CHAIN_STOP,
}


def demand_compile_enabled() -> bool:
    """Whether the compiled flat-array walk is on (``REPRO_DEMAND_COMPILE``)."""
    return env_flag("REPRO_DEMAND_COMPILE", default=True)


class CompiledDemand:
    """The flat-array form of one demand trace (see module docstring).

    All fields are read-only by convention; one instance is shared by
    every cell a worker evaluates.
    """

    __slots__ = (
        "node_count",
        "input_events",
        "kind",
        "priority",
        "delay_us",
        "state_id",
        "chain_key",
        "period_us",
        "cycles",
        "names",
        "walk",
        "setup_lo",
        "setup_hi",
        "input_off",
        "child_off",
        "guards",
        "actions",
        "setup_actions",
        "input_actions",
        "_views",
    )

    def __init__(
        self,
        node_count: int,
        input_events: int,
        kind: array,
        priority: array,
        delay_us: array,
        state_id: array,
        chain_key: array,
        period_us: array,
        cycles: list,
        names: list,
        walk: array,
        setup_lo: int,
        setup_hi: int,
        input_off: array,
        child_off: array,
        guards: list,
        actions: list,
        setup_actions: list,
        input_actions: list,
    ) -> None:
        self.node_count = node_count
        self.input_events = input_events
        self.kind = kind
        self.priority = priority
        self.delay_us = delay_us
        self.state_id = state_id
        self.chain_key = chain_key
        self.period_us = period_us
        self.cycles = cycles
        self.names = names
        self.walk = walk
        self.setup_lo = setup_lo
        self.setup_hi = setup_hi
        self.input_off = input_off
        self.child_off = child_off
        self.guards = guards
        self.actions = actions
        self.setup_actions = setup_actions
        self.input_actions = input_actions
        self._views = None

    def views(self) -> dict[str, list]:
        """Unboxed list views of the int64 columns, built once and shared.

        Indexing an ``array('q')`` allocates a fresh int object per
        access (node ids exceed CPython's small-int cache); a list hands
        back its preallocated element.  The executor's inner loop reads
        these views; the arrays stay the canonical compact form.
        """
        if self._views is None:
            self._views = {
                "kind": self.kind.tolist(),
                "priority": self.priority.tolist(),
                "delay_us": self.delay_us.tolist(),
                "state_id": self.state_id.tolist(),
                "chain_key": self.chain_key.tolist(),
                "period_us": self.period_us.tolist(),
                "walk": self.walk.tolist(),
                "input_off": self.input_off.tolist(),
                "child_off": self.child_off.tolist(),
            }
        return self._views

    # --- introspection (tests, round-trip checks) ------------------------------

    def setup_children(self) -> list[int]:
        """Node ids of the setup phase, in callback order."""
        return list(self.walk[self.setup_lo : self.setup_hi])

    def input_children(self, ordinal: int) -> list[int]:
        """Node ids rooted at input ``ordinal``, in callback order."""
        if not 0 <= ordinal < self.input_events:
            return []
        return list(self.walk[self.input_off[ordinal] : self.input_off[ordinal + 1]])

    def children_of(self, node_id: int) -> list[int]:
        """Node ids of ``node_id``'s children, in callback order."""
        return list(self.walk[self.child_off[node_id] : self.child_off[node_id + 1]])


def compile_trace(trace: DemandTrace) -> CompiledDemand:
    """Lower ``trace`` into its flat-array form.

    Pure data transformation — no validation beyond what the column
    types force (a non-integer payload in an int64 column raises at
    compile time rather than mis-rounding silently).  The input is
    assumed to satisfy :meth:`DemandTrace.validate` (the capture and
    load paths enforce it), which is what lets the compiled task path
    skip ``Task.__init__``'s per-construction payload checks.
    ``cycles`` and ``names`` keep the recorded values so the compiled
    walk hands the scheduler bit-identical task parameters.
    """
    nodes = trace.nodes
    count = len(nodes)
    kind = array(_TYPECODE, (_OPCODES[node.kind] for node in nodes))
    priority = array(
        _TYPECODE,
        (-1 if node.priority is None else node.priority for node in nodes),
    )
    delay_us = array(
        _TYPECODE,
        (-1 if node.delay_us is None else node.delay_us for node in nodes),
    )
    state_id = array(
        _TYPECODE,
        (-1 if node.state_id is None else node.state_id for node in nodes),
    )
    chain_key = array(
        _TYPECODE,
        (-1 if node.chain_key is None else node.chain_key for node in nodes),
    )
    period_us = array(
        _TYPECODE,
        (-1 if node.period_us is None else node.period_us for node in nodes),
    )
    cycles = [node.cycles for node in nodes]
    names = [
        None if node.name is None else sys.intern(node.name) for node in nodes
    ]

    # Partition into the three root/child families, preserving capture
    # order (ids are dense and stored sorted, so append reconstructs it) —
    # the same walk children_by_parent() does, kept as ids.
    setup_ids: list[int] = []
    by_input: dict[int, list[int]] = {}
    by_node: dict[int, list[int]] = {}
    for node in nodes:
        if node.parent is not None:
            by_node.setdefault(node.parent, []).append(node.node_id)
        elif node.input_ordinal is not None:
            by_input.setdefault(node.input_ordinal, []).append(node.node_id)
        else:
            setup_ids.append(node.node_id)

    walk = array(_TYPECODE)
    walk.extend(setup_ids)
    setup_lo, setup_hi = 0, len(walk)
    input_off = array(_TYPECODE, [len(walk)])
    for ordinal in range(trace.input_events):
        roots = by_input.get(ordinal)
        if roots:
            walk.extend(roots)
        input_off.append(len(walk))
    child_off = array(_TYPECODE, bytes(8 * (count + 1)))
    for node_id in range(count):
        child_off[node_id] = len(walk)
        children = by_node.get(node_id)
        if children:
            walk.extend(children)
    child_off[count] = len(walk)

    guards = [trace.guards.get(ordinal, ()) for ordinal in range(trace.input_events)]

    # Fused per-node action tuples: everything the executor's inner loop
    # needs, gathered into one tuple so evaluating a node is tuple
    # indexing off the iteration variable — no column fan-out, no dict
    # probes, no per-walk closures.  Payloads are the recorded objects
    # verbatim (``node.priority``, not the ``-1``-encoded column) so the
    # scheduler sees bit-identical task parameters.  Children embed as
    # preallocated lists of the child tuples (``None`` when childless;
    # the lists are created empty first so parent tuples can reference
    # them before the children's own tuples exist).
    child_lists: list[list | None] = [None] * count
    for node_id in by_node:
        child_lists[node_id] = []
    actions: list[tuple | None] = [None] * count
    for node in nodes:
        node_id = node.node_id
        op = kind[node_id]
        if op == OP_TASK:
            actions[node_id] = (
                op,
                node_id,
                names[node_id],
                # Pre-floated: Task stores float(cycles), and float() of
                # an exact float is the identity, so the scheduler sees
                # the same value the interpreter's conversion produces.
                float(node.cycles),
                node.priority,
                child_lists[node_id],
            )
        elif op == OP_INVALIDATE:
            actions[node_id] = (op, node.state_id)
        elif op == OP_TIMER:
            actions[node_id] = (op, node.delay_us, child_lists[node_id])
        elif op == OP_CHAIN_START:
            actions[node_id] = (
                op,
                node.chain_key,
                names[node_id],
                node.period_us,
                node.cycles,
                node.priority,
            )
        else:
            actions[node_id] = (op, node.chain_key)
    for node_id, children in by_node.items():
        child_lists[node_id].extend(actions[child] for child in children)
    setup_actions = [actions[node_id] for node_id in setup_ids]
    input_actions = [
        [actions[node_id] for node_id in by_input[ordinal]]
        if ordinal in by_input
        else None
        for ordinal in range(trace.input_events)
    ]

    return CompiledDemand(
        node_count=count,
        input_events=trace.input_events,
        kind=kind,
        priority=priority,
        delay_us=delay_us,
        state_id=state_id,
        chain_key=chain_key,
        period_us=period_us,
        cycles=cycles,
        names=names,
        walk=walk,
        setup_lo=setup_lo,
        setup_hi=setup_hi,
        input_off=input_off,
        child_off=child_off,
        guards=guards,
        actions=actions,
        setup_actions=setup_actions,
        input_actions=input_actions,
    )

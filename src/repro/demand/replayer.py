"""The kernel-only evaluation pass: replay recorded demand, vary the response.

``demand_replay_run`` is the sweep-side counterpart of
:func:`~repro.harness.experiment.replay_run`: it produces the same
:class:`~repro.results.RunRecord` for a (config, rep) cell, but drives
only the device/governor/cpufreq/energy kernel.  Apps, window manager,
gesture decoding and UI composition are replaced by a
:class:`DemandTrace` walk:

* recorded **task** nodes are re-submitted to the real scheduler with
  their captured name/cycles/priority; when the *evaluation* kernel
  completes one — at whatever time the governor under study produces —
  its recorded children execute;
* recorded **timer** nodes re-arm the same engine delays (IO gaps,
  stage pauses);
* recorded **invalidate** nodes request composition on real vsync
  boundaries, tracking which interned state the screen would show; the
  lag profile is computed pixel-free from the trace's precomputed match
  table (:mod:`repro.demand.tablematch`), falling back to painting real
  frames through the capture card and online matcher when a caller
  needs them (a ``frame_tap``, or a trace without a table);
* recorded **chain** nodes start/stop live
  :class:`~repro.kernel.workchains.PeriodicWorkChain` loops, which fire
  as many times as *this* config's gate timing allows;
* background services run **live** with the same per-cell RNG stream a
  full replay would use — they are response-side noise, not demand.

The governor→timing feedback loop is handled by the trace's guards: the
scripted user only gestures at foreground quiescence, and the capture
runs at the pinned *minimum* frequency, so every config completes
foreground work no later than the capture did and the guards hold —
unless a config's lag pattern genuinely perturbs a recorded think-time
boundary, in which case the pass raises :class:`DemandFallback` and the
fleet re-runs that cell as a full replay (counted in telemetry).

Parity contract: energy, irritation and transition digests are
bit-identical to a full replay of the same cell.  Frame digests are
*not* part of the contract — the evaluation pass drops the window
manager's minute/animation tick frames and repaints masked or
never-matching time-varying pixels (clock, spinner phase, cursor
blink) from capture time, none of which can move a match time.
"""

from __future__ import annotations

import zlib
from functools import partial

import numpy as np

from repro.core.errors import MatchError, ReproError
from repro.demand.compile import (
    OP_CHAIN_START,
    OP_INVALIDATE,
    OP_TASK,
    OP_TIMER,
    CompiledDemand,
    compile_trace,
    demand_compile_enabled,
)
from repro.demand.tablematch import BLANK_STATE, ShadowStreamer, TableMatcher
from repro.demand.trace import (
    KIND_CHAIN_START,
    KIND_CHAIN_STOP,
    KIND_INVALIDATE,
    KIND_TASK,
    KIND_TIMER,
    DemandNode,
    DemandTrace,
)
from repro.kernel.task import PRIORITY_FOREGROUND, Task, _task_ids
from repro.kernel.workchains import PeriodicWorkChain


class DemandFallback(ReproError):
    """This cell cannot be evaluated on the kernel pass — run it full.

    ``reason`` is a short machine-readable tag the fleet telemetry
    aggregates (``guard_mismatch``, ``match_error``).
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class DemandProgram:
    """A demand trace preprocessed for repeated evaluation.

    Sweeping N cells over one trace repeats per-cell setup work — child
    indexing, match-set construction, state decompression — that depends
    only on the trace.  A fleet worker builds one program per trace and
    evaluates every assigned cell against it.
    """

    def __init__(self, trace: DemandTrace) -> None:
        self.trace = trace
        setup, by_input, by_node = trace.children_by_parent()
        self.setup = setup
        self.by_input = by_input
        self.children: list = [
            by_node.get(node_id) for node_id in range(len(trace.nodes))
        ]
        self.match_sets: list[frozenset[int]] | None = None
        if trace.match_states is not None:
            blank = frozenset(trace.blank_matches)
            self.match_sets = [
                frozenset(states)
                | ({BLANK_STATE} if index in blank else frozenset())
                for index, states in enumerate(trace.match_states)
            ]
        self._states: list | None = None
        self._compiled: CompiledDemand | None = None

    def compiled(self) -> CompiledDemand:
        """The trace's flat-array form (lowered once, shared by cells)."""
        if self._compiled is None:
            self._compiled = compile_trace(self.trace)
        return self._compiled

    def states(self) -> list:
        """Decompressed framebuffer states (pixel path only, lazy)."""
        if self._states is None:
            trace = self.trace
            shape = (trace.height, trace.width)
            self._states = [
                np.frombuffer(
                    zlib.decompress(blob), dtype=np.uint8
                ).reshape(shape)
                for blob in trace.states
            ]
        return self._states


class _DemandExecutor:
    """Walks a demand trace over a live device kernel.

    With ``pixels=False`` (the default sweep path) invalidates only
    track the current interned state id — no state is decompressed and
    nothing is painted; the caller derives the lag profile from the
    trace's match table.  With ``pixels=True`` the executor installs a
    composer that repaints the interned states, so a capture card sees
    real frames.
    """

    def __init__(self, device, program: DemandProgram, pixels: bool) -> None:
        self._engine = device.engine
        self._scheduler = device.scheduler
        self._display = device.display
        self._setup = program.setup
        self._by_input = program.by_input
        self._children = program.children
        self._guards = program.trace.guards
        self._pixels = pixels
        self._states: list | None = None
        self._frame = None
        if pixels:
            self._states = program.states()
            device.display.set_composer(self._paint)
        #: Interned state id the screen would show (BLANK_STATE at boot).
        self.current_state = BLANK_STATE
        self._chains: dict[int, PeriodicWorkChain] = {}
        self._fg_inflight: set[int] = set()
        self._next_ordinal = 0

    # --- composition -------------------------------------------------------------

    def _paint(self, framebuffer) -> None:
        if self._frame is not None:
            framebuffer[:] = self._frame

    # --- trace walking -----------------------------------------------------------

    def run_setup(self) -> None:
        """Execute the app-installation phase (engine time 0)."""
        self._run_children(self._setup)

    def on_input(self, event) -> None:
        """Input-node observer: check the guard, run the ordinal's demand."""
        ordinal = self._next_ordinal
        self._next_ordinal = ordinal + 1
        expected = self._guards.get(ordinal, ())
        actual = tuple(sorted(self._fg_inflight))
        if actual != expected:
            raise DemandFallback(
                f"input {ordinal} at t={self._engine.now}: foreground tasks "
                f"in flight {list(actual)} != recorded {list(expected)} — "
                "this config perturbs recorded think-time boundaries",
                reason="guard_mismatch",
            )
        children = self._by_input.get(ordinal)
        if children:
            self._run_children(children)

    def _run_children(self, nodes: list[DemandNode]) -> None:
        for node in nodes:
            self._execute(node)

    def _execute(self, node: DemandNode) -> None:
        kind = node.kind
        if kind == KIND_TASK:
            node_id = node.node_id
            foreground = node.priority == PRIORITY_FOREGROUND
            if foreground:
                self._fg_inflight.add(node_id)
            children = self._children[node_id]

            def completed(
                _task, node_id=node_id, foreground=foreground, children=children
            ) -> None:
                if foreground:
                    self._fg_inflight.discard(node_id)
                if children:
                    self._run_children(children)

            self._scheduler.submit(
                Task(
                    node.name,
                    node.cycles,
                    priority=node.priority,
                    on_complete=completed,
                )
            )
        elif kind == KIND_INVALIDATE:
            self.current_state = node.state_id
            if self._pixels:
                self._frame = self._states[node.state_id]
            self._display.invalidate()
        elif kind == KIND_TIMER:
            children = self._children[node.node_id]
            # A childless timer produced no recorded demand; skipping it
            # is invisible to the kernel.
            if children:
                self._engine.schedule_after(
                    node.delay_us,
                    lambda children=children: self._run_children(children),
                )
        elif kind == KIND_CHAIN_START:
            chain = self._chains.get(node.chain_key)
            if chain is None:
                chain = PeriodicWorkChain(
                    self._engine,
                    self._scheduler,
                    node.name,
                    node.period_us,
                    node.cycles,
                    priority=node.priority,
                )
                self._chains[node.chain_key] = chain
            chain.start()
        elif kind == KIND_CHAIN_STOP:
            chain = self._chains.get(node.chain_key)
            if chain is not None:
                chain.stop()


class _DemandTask(Task):
    """A compiled task node's live submission.

    Carries its compiled action tuple so one shared completion callback
    can find the node id, priority and child list — the interpreter
    allocates a fresh closure per task submission instead.  The direct
    ``__init__`` skips ``Task.__init__``'s keyword parsing and payload
    validation: compiled payloads are pre-floated and trace-validated
    (see :func:`~repro.demand.compile.compile_trace`), and the shared
    task-id counter keeps ids in step with the interpreter's.
    """

    __slots__ = ("action",)

    def __init__(self, action: tuple, on_complete) -> None:
        # (op, node_id, name, cycles, priority, children)
        self.task_id = next(_task_ids)
        self.name = action[2]
        cycles = action[3]
        self.cycles = cycles
        self.priority = action[4]
        self.on_complete = on_complete
        self.remaining_cycles = cycles
        self.submitted_at = None
        self.started_at = None
        self.completed_at = None
        self.action = action


class _CompiledExecutor:
    """Walks the compiled flat-array form of a demand trace.

    Semantically identical to :class:`_DemandExecutor` — both issue the
    same scheduler submissions and engine timers in the same order, so
    the engine's deterministic event sequence (and therefore the emitted
    :class:`~repro.results.RunRecord`) is bit-identical.  The difference
    is purely mechanical: every node resolves to a precomputed action
    tuple carrying the opcode, the verbatim payloads and the node's
    children as a preallocated list of the child tuples
    (:class:`~repro.demand.compile.CompiledDemand`), task completions
    share one bound method instead of a per-task closure, and timers
    re-arm a :func:`functools.partial` over the prebuilt child list
    instead of a fresh lambda.
    """

    __slots__ = (
        "_engine",
        "_scheduler",
        "_schedule_after",
        "_submit",
        "_invalidate",
        "_setup_actions",
        "_input_actions",
        "_guards",
        "_pixels",
        "_states",
        "_frame",
        "current_state",
        "_chains",
        "_fg_inflight",
        "_next_ordinal",
    )

    def __init__(self, device, program: DemandProgram, pixels: bool) -> None:
        compiled = program.compiled()
        self._engine = device.engine
        self._scheduler = device.scheduler
        # Bound-method interning: the inner loop calls these thousands
        # of times per cell; one attribute load here beats two per node.
        self._schedule_after = device.engine.schedule_after
        self._submit = device.scheduler.submit
        self._invalidate = device.display.invalidate
        self._setup_actions = compiled.setup_actions
        self._input_actions = compiled.input_actions
        self._guards = compiled.guards
        self._pixels = pixels
        self._states: list | None = None
        self._frame = None
        if pixels:
            self._states = program.states()
            device.display.set_composer(self._paint)
        #: Interned state id the screen would show (BLANK_STATE at boot).
        self.current_state = BLANK_STATE
        self._chains: dict[int, PeriodicWorkChain] = {}
        self._fg_inflight: set[int] = set()
        self._next_ordinal = 0

    # --- composition -------------------------------------------------------------

    def _paint(self, framebuffer) -> None:
        if self._frame is not None:
            framebuffer[:] = self._frame

    # --- trace walking -----------------------------------------------------------

    def run_setup(self) -> None:
        """Execute the app-installation phase (engine time 0)."""
        self._run_list(self._setup_actions)

    def on_input(self, event) -> None:
        """Input-node observer: check the guard, run the ordinal's demand."""
        ordinal = self._next_ordinal
        self._next_ordinal = ordinal + 1
        guards = self._guards
        expected = guards[ordinal] if ordinal < len(guards) else ()
        actual = tuple(sorted(self._fg_inflight))
        if actual != expected:
            raise DemandFallback(
                f"input {ordinal} at t={self._engine.now}: foreground tasks "
                f"in flight {list(actual)} != recorded {list(expected)} — "
                "this config perturbs recorded think-time boundaries",
                reason="guard_mismatch",
            )
        roots = self._input_actions
        if ordinal < len(roots):
            actions = roots[ordinal]
            if actions is not None:
                self._run_list(actions)

    def _task_done(self, task) -> None:
        """Shared completion callback for every submitted task node."""
        action = task.action
        # (op, node_id, name, cycles, priority, children)
        if action[4] == PRIORITY_FOREGROUND:
            self._fg_inflight.discard(action[1])
        children = action[5]
        if children is not None:
            self._run_list(children)

    def _run_list(self, actions: list) -> None:
        """Execute one prebuilt action list — the compiled inner loop."""
        for action in actions:
            op = action[0]
            if op == OP_TASK:
                # (op, node_id, name, cycles, priority, children)
                if action[4] == PRIORITY_FOREGROUND:
                    self._fg_inflight.add(action[1])
                self._submit(_DemandTask(action, self._task_done))
            elif op == OP_INVALIDATE:
                # (op, state_id)
                state = action[1]
                self.current_state = state
                if self._pixels:
                    self._frame = self._states[state]
                self._invalidate()
            elif op == OP_TIMER:
                # (op, delay_us, children).  A childless timer produced
                # no recorded demand; skipping it is invisible to the
                # kernel.
                children = action[2]
                if children is not None:
                    self._schedule_after(
                        action[1],
                        partial(self._run_list, children),
                    )
            elif op == OP_CHAIN_START:
                # (op, chain_key, name, period_us, cycles, priority)
                key = action[1]
                chain = self._chains.get(key)
                if chain is None:
                    chain = PeriodicWorkChain(
                        self._engine,
                        self._scheduler,
                        action[2],
                        action[3],
                        action[4],
                        priority=action[5],
                    )
                    self._chains[key] = chain
                chain.start()
            else:  # OP_CHAIN_STOP: (op, chain_key)
                chain = self._chains.get(action[1])
                if chain is not None:
                    chain.stop()


def make_executor(device, program: DemandProgram, pixels: bool = False):
    """The executor :func:`demand_replay_run` would use right now.

    Selected per call from ``REPRO_DEMAND_COMPILE``: the compiled
    flat-array walk by default, the node-object interpreter under the
    ``=0`` kill switch.  Exposed for the perf harness and A/B tests.
    """
    cls = _CompiledExecutor if demand_compile_enabled() else _DemandExecutor
    return cls(device, program, pixels)


def demand_replay_run(
    artifacts,
    trace: DemandTrace | DemandProgram,
    config: str,
    rep: int = 0,
    master_seed: int | None = None,
    device_config=None,
    frame_tap=None,
    **governor_tunables,
):
    """Evaluate one (config, rep) cell over recorded demand.

    Mirrors :func:`~repro.harness.experiment.replay_run` cell for cell:
    same RNG forks, same capture/matcher pipeline, same
    :class:`~repro.results.RunRecord` shape including the observability
    harvest.  Raises :class:`DemandFallback` when the cell needs a full
    replay.  ``trace`` may be a prebuilt :class:`DemandProgram` to share
    preprocessing across a sweep's cells.  The trace walk itself runs
    the compiled flat-array executor unless ``REPRO_DEMAND_COMPILE=0``
    selects the node-object interpreter; the emitted record is
    bit-identical either way.
    """
    from repro.analysis import Matcher, OnlineMatcher
    from repro.apps.services import BackgroundServices
    from repro.capture import CaptureCard, stream_enabled
    from repro.core.rng import RngStreams
    from repro.device.device import Device
    from repro.device.display import frame_index_at
    from repro.harness.experiment import DEFAULT_MASTER_SEED, RUN_TAIL_US
    from repro.obs import session as obs_session
    from repro.replay import ReplayAgent
    from repro.results import RunRecord
    from repro.scenarios.profiles import device_config_for

    if master_seed is None:
        master_seed = DEFAULT_MASTER_SEED
    obs = obs_session.active()
    owns_session = False
    if obs is None and obs_session.trace_enabled():
        obs = obs_session.ObsSession.for_run()
        obs_session.install(obs)
        owns_session = True
    try:
        streams = RngStreams(master_seed).fork(
            f"replay:{artifacts.name}:{config}:{rep}"
        )
        if device_config is None:
            device_config = device_config_for(artifacts.spec)
        program = (
            trace if isinstance(trace, DemandProgram) else DemandProgram(trace)
        )
        # The pixel-free table path needs a precomputed match table; a
        # frame tap needs real frames, so it forces the pixel path.
        pixels = frame_tap is not None or program.match_sets is None
        device = Device(device_config)
        executor = make_executor(device, program, pixels)
        # Same observer order as a full replay: the window manager's
        # decoder registers before the governor's input boost; here the
        # executor takes the decoder's slot.
        device.touchscreen.node.add_observer(executor.on_input)
        executor.run_setup()
        services = BackgroundServices(
            device.engine, device.scheduler, streams.stream("services")
        )
        services.start()
        device.set_governor(config, **governor_tunables)
        device.cpu.enable_busy_trace()
        agent = ReplayAgent(device.engine, device.input_subsystem)
        agent.schedule(artifacts.trace)
        card = online = shadow = None
        streaming = stream_enabled()
        if pixels:
            card = CaptureCard(device.display)
            if streaming:
                online = OnlineMatcher(artifacts.database)
                card.add_tap(online)
            if frame_tap is not None:
                card.add_tap(frame_tap)
            card.start(device.engine.now, streaming=streaming)
        else:
            matcher = TableMatcher(artifacts.database, program.match_sets)
            shadow = ShadowStreamer(matcher)
            device.display.add_frame_observer(
                lambda index, _frame: shadow.record(
                    index, executor.current_state
                )
            )
            # The capture card's start seed: whatever is on screen right
            # now — nothing has composed yet, so the blank boot frame.
            shadow.record(frame_index_at(device.engine.now), BLANK_STATE)

        run_window = artifacts.duration_us + RUN_TAIL_US
        device.run_for(run_window)

        try:
            if pixels:
                video = card.stop(device.engine.now)
                if streaming:
                    profile = online.profile()
                else:
                    profile = Matcher(artifacts.database).match(video)
            else:
                shadow.finalize(frame_index_at(device.engine.now) + 1)
                profile = matcher.profile()
        except MatchError as exc:
            raise DemandFallback(
                f"cell ({config!r}, rep {rep}): replayed frames no longer "
                f"match the annotation database: {exc}",
                reason="match_error",
            ) from None
        record = RunRecord(
            workload=artifacts.name,
            config=config,
            rep=rep,
            duration_us=run_window,
            energy_j=device.cpu.energy_joules(),
            dynamic_energy_j=device.cpu.dynamic_energy_joules(),
            busy_us=device.cpu.busy_time_total(),
            transitions=device.policy.transition_points(),
            busy_intervals=device.cpu.busy_pairs(),
            lags=profile.lags,
        )
        if obs is not None:
            snapshot = obs.harvest_run(device.engine, governor=device.governor)
            if obs.decisions is not None:
                from repro.obs.attribution import attribute_record

                snapshot["attribution"] = attribute_record(
                    record, boosts=obs.decisions.boosts
                ).summary()
            record.obs = snapshot
        return record
    finally:
        if owns_session:
            obs_session.uninstall()

"""On-disk store of demand traces, next to the fleet's result cache.

One workload needs exactly one demand capture per (demand schema, code,
workload) triple; the store content-addresses traces the same way the
:class:`~repro.fleet.cache.ResultCache` addresses run records, so a warm
sweep re-run loads the trace and executes **zero** full replays.  Keys
fold in

* :data:`~repro.demand.trace.DEMAND_TRACE_SCHEMA_VERSION` — a schema
  bump invalidates every stored trace,
* the code fingerprint — editing any simulator module re-captures
  instead of replaying demand recorded by old code,
* the workload fingerprint — re-recording or editing a scenario
  invalidates exactly that workload's trace.

Entries are JSON (the trace's own wire format), written atomically, and
validated on load — an unreadable or contract-violating entry is a miss
that triggers a fresh capture, never an error.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

from repro.demand.trace import (
    DEMAND_TRACE_SCHEMA_VERSION,
    DemandTrace,
    DemandTraceError,
)

#: Subdirectory of a result-cache root holding demand traces.
DEMAND_SUBDIR = "demand"


def demand_trace_key(artifacts) -> str:
    """Content address of the demand trace for a recorded workload."""
    from repro.fleet.cache import code_fingerprint, workload_fingerprint

    payload = (
        f"demand{DEMAND_TRACE_SCHEMA_VERSION}|"
        f"{code_fingerprint()}|{workload_fingerprint(artifacts)}"
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class DemandTraceStore:
    """Content-addressed demand traces under ``<cache root>/demand/``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_cache(cls, cache) -> "DemandTraceStore | None":
        """The store sharing a :class:`ResultCache`'s root (None if uncached)."""
        if cache is None:
            return None
        return cls(Path(cache.root) / DEMAND_SUBDIR)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, artifacts) -> DemandTrace | None:
        """The stored trace for ``artifacts``, or None (counting a miss)."""
        path = self.path_for(demand_trace_key(artifacts))
        try:
            trace = DemandTrace.loads(path.read_text(encoding="utf-8"))
            trace.validate()
        except (OSError, DemandTraceError):
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store(self, artifacts, trace: DemandTrace) -> None:
        path = self.path_for(demand_trace_key(artifacts))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(trace.dumps())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

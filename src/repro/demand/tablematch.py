"""Pixel-free lag matching for the demand evaluation pass.

The evaluation pass only ever composes framebuffer states interned at
capture time, so the expensive half of lag detection — comparing frame
pixels against annotation endings — collapses to a set probe against the
trace's precomputed match table.  What remains timing-dependent is the
*segmentation* of the frame stream, and that depends only on frame
indices and content equality: :class:`ShadowStreamer` runs the exact RLE
state machine of :class:`~repro.capture.stream.SegmentStreamer` over
``(frame_index, state_id)`` pairs, where state-id equality stands in for
content-digest equality (interned states are deduplicated by raw bytes,
so distinct ids are distinct pixels).

:class:`TableMatcher` subclasses :class:`~repro.analysis.online.
OnlineMatcher`, overriding only the comparison strategy — window
activation order, occurrence counting, and the profile/error contract
are shared code, so the two paths cannot drift.

One boundary asymmetry is harmless by construction: a state that is
pixel-equal to the blank power-on frame would be *merged* with it by the
pixel RLE but kept as a separate run here.  Refining a run of
pixel-equal content into adjacent segments cannot change any match
verdict (verdicts are functions of content), cannot change a rising
edge (the follow-up segment sees ``in_match`` already set), and cannot
move a measurement's end frame (the edge fires on the refined run's
first segment, which shares the merged run's start).
"""

from __future__ import annotations

from repro.analysis.annotation import AnnotationDatabase
from repro.analysis.online import OnlineMatcher, _ScanState
from repro.core.errors import CaptureError

#: Shadow state id of the blank power-on framebuffer (never interned).
BLANK_STATE = -1


class _ShadowSegment:
    """A closed run of identical frames ``[start, end)`` by state id.

    ``content`` holds the state id so the segment quacks like a
    :class:`~repro.capture.video.VideoSegment` to the matcher.
    """

    __slots__ = ("start", "end", "content")

    def __init__(self, start: int, end: int, content: int) -> None:
        self.start = start
        self.end = end
        self.content = content


class ShadowStreamer:
    """The capture RLE state machine over state ids instead of pixels.

    Mirrors :meth:`SegmentStreamer.record_frame` branch for branch (gap
    filling, same-vsync replacement, merge-back, the two-pending-run
    emission rule) with content digests replaced by state ids.
    """

    def __init__(self, tap: OnlineMatcher) -> None:
        self._tap = tap
        self._pending: list[_ShadowSegment] = []

    def record(self, frame_index: int, state: int) -> None:
        if not self._pending:
            if frame_index < 0:
                raise CaptureError("frame index must be >= 0")
            self._pending.append(
                _ShadowSegment(frame_index, frame_index + 1, state)
            )
            return
        last = self._pending[-1]
        if frame_index == last.end - 1:
            # Same vsync slot composed again: replace.
            if state == last.content:
                return
            if last.end - last.start == 1:
                removed = self._pending.pop()
                prev = self._pending[-1] if self._pending else None
                if prev is not None and prev.content == state:
                    prev.end = frame_index + 1
                else:
                    self._append(
                        _ShadowSegment(removed.start, removed.end, state)
                    )
            else:
                last.end = frame_index
                self._append(
                    _ShadowSegment(frame_index, frame_index + 1, state)
                )
            return
        if frame_index < last.end - 1:
            raise CaptureError(
                f"frame {frame_index} recorded after frame {last.end - 1}"
            )
        # Fill the still gap, then start a new segment if content changed.
        last.end = frame_index
        if state == last.content:
            last.end = frame_index + 1
        else:
            self._append(_ShadowSegment(frame_index, frame_index + 1, state))

    def finalize(self, end_frame_index: int) -> None:
        if not self._pending:
            raise CaptureError("cannot finalize an empty video")
        last = self._pending[-1]
        if end_frame_index < last.end:
            raise CaptureError("finalize cannot truncate the video")
        last.end = end_frame_index
        tap = self._tap
        for segment in self._pending:
            tap.on_segment(segment)
        self._pending.clear()
        tap.on_stop(end_frame_index)

    def _append(self, segment: _ShadowSegment) -> None:
        self._pending.append(segment)
        while len(self._pending) > 2:
            self._tap.on_segment(self._pending.pop(0))


class TableMatcher(OnlineMatcher):
    """The online matcher with comparison replaced by a verdict table.

    ``match_sets`` holds, per annotation in database order, the set of
    state ids (plus possibly :data:`BLANK_STATE`) whose pixels match that
    annotation's ending image — built once per trace by
    :class:`~repro.demand.replayer.DemandProgram`.
    """

    def __init__(
        self,
        database: AnnotationDatabase,
        match_sets: list[frozenset[int]],
    ) -> None:
        super().__init__(database)
        self._matched = match_sets

    def _activate(self, scan: _ScanState) -> None:
        """No pixel mask needed — verdicts were computed under it."""

    def _matches(self, scan: _ScanState, segment) -> bool:
        return segment.content in self._matched[scan.lag_index]

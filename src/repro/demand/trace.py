"""The demand trace: the governor-invariant half of one workload replay.

A full replay simulates two coupled halves.  The *demand* half — which
tasks the apps submit, with how many cycles and what priority, which
timers chain them, and which framebuffer contents the UI paints — is a
pure function of the recorded input trace and therefore identical under
every governor configuration.  The *response* half — when tasks finish,
what frequency the CPU runs at, what the energy meter integrates — is
what a sweep actually varies.

:class:`DemandTrace` is the demand half captured once, as a forest of
causal nodes:

* roots are the **setup** phase (app installation) and each **input
  ordinal** (the k-th getevent record delivered to the touchscreen);
* a node is a **task** submission, an engine **timer** (IO gap, think
  pause), a display **invalidate** carrying the id of an interned
  framebuffer state, or the **start/stop** of a
  :class:`~repro.kernel.workchains.PeriodicWorkChain`;
* a node's children are exactly the demand actions its completion
  callback performed, in callback order — replaying a node therefore
  means re-submitting the same work and running the children when the
  *evaluation* kernel finishes it, at whatever time the governor under
  study produces.

``guards`` snapshot the foreground tasks in flight at each input
ordinal during capture.  The scripted user only gestures at foreground
quiescence, so a guard mismatch during evaluation means the config's
lag pattern perturbed recorded think-time boundaries beyond what the
trace can express — the evaluation pass must fall back to full replay
for that cell (see :mod:`repro.demand.replayer`).

Framebuffer states are deduplicated and zlib-compressed; ``state_id``
indexes into :attr:`states`.  Because the evaluation pass only ever
composes interned states, frame comparison reduces to a table lookup:
``match_states`` records, per annotation of the workload's database (in
database order), exactly which state ids satisfy
:func:`~repro.analysis.diff.frames_equal` under that annotation's mask
and tolerance — computed once at capture, so the evaluation pass never
touches pixels.  The trace is schema-versioned and content-addressed
(:meth:`content_hash`), and serializes to JSON for the fleet's demand
store and the ``repro-qoe demand`` inspector.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import dataclass, field

from repro.core.errors import ReproError

DEMAND_TRACE_SCHEMA_VERSION = 1

KIND_TASK = "task"
KIND_TIMER = "timer"
KIND_INVALIDATE = "invalidate"
KIND_CHAIN_START = "chain_start"
KIND_CHAIN_STOP = "chain_stop"

_KINDS = (KIND_TASK, KIND_TIMER, KIND_INVALIDATE, KIND_CHAIN_START,
          KIND_CHAIN_STOP)

#: Kinds whose completion/expiry callbacks may record children.
_PARENT_KINDS = (KIND_TASK, KIND_TIMER)


class DemandTraceError(ReproError):
    """A demand trace violates its schema contract."""


@dataclass(slots=True)
class DemandNode:
    """One recorded demand action.

    ``parent`` is the node id whose callback recorded this action, or
    ``None`` for a root action; root actions carry ``input_ordinal``
    (``None`` means the setup phase).  Payload fields are used per
    ``kind``: tasks have ``name``/``cycles``/``priority``, timers have
    ``delay_us``, invalidates have ``state_id``, chain starts have
    ``chain_key``/``name``/``period_us``/``cycles``/``priority``, chain
    stops have ``chain_key``.
    """

    node_id: int
    kind: str
    parent: int | None = None
    input_ordinal: int | None = None
    name: str | None = None
    cycles: float | None = None
    priority: int | None = None
    delay_us: int | None = None
    state_id: int | None = None
    chain_key: int | None = None
    period_us: int | None = None

    def as_dict(self) -> dict:
        row: dict = {"id": self.node_id, "kind": self.kind}
        if self.parent is not None:
            row["parent"] = self.parent
        if self.input_ordinal is not None:
            row["input"] = self.input_ordinal
        for key in ("name", "cycles", "priority", "delay_us", "state_id",
                    "chain_key", "period_us"):
            value = getattr(self, key)
            if value is not None:
                row[key] = value
        return row

    @classmethod
    def from_dict(cls, row: dict) -> "DemandNode":
        return cls(
            node_id=row["id"],
            kind=row["kind"],
            parent=row.get("parent"),
            input_ordinal=row.get("input"),
            name=row.get("name"),
            cycles=row.get("cycles"),
            priority=row.get("priority"),
            delay_us=row.get("delay_us"),
            state_id=row.get("state_id"),
            chain_key=row.get("chain_key"),
            period_us=row.get("period_us"),
        )


@dataclass(slots=True)
class DemandTrace:
    """One workload's captured demand forest (see module docstring)."""

    workload: str
    capture_config: str
    duration_us: int
    width: int
    height: int
    input_events: int
    nodes: list[DemandNode] = field(default_factory=list)
    #: input ordinal -> sorted tuple of fg task node ids in flight.
    guards: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: zlib-compressed ``height x width`` uint8 framebuffer states.
    states: list[bytes] = field(default_factory=list)
    #: Per annotation (database order), the state ids whose pixels match
    #: that annotation's ending image; ``None`` when the capture did not
    #: precompute verdicts (the evaluation pass then compares pixels).
    match_states: list[tuple[int, ...]] | None = None
    #: Annotation indices matched by the blank (power-on) framebuffer.
    blank_matches: tuple[int, ...] = ()
    schema_version: int = DEMAND_TRACE_SCHEMA_VERSION

    # --- structure -------------------------------------------------------------

    def children_by_parent(
        self,
    ) -> tuple[list[DemandNode], dict[int, list[DemandNode]],
               dict[int, list[DemandNode]]]:
        """(setup roots, input-ordinal roots, per-node children).

        Within each list the capture's callback order is preserved —
        node ids are assigned in recording order and nodes are stored
        sorted, so plain append reconstructs it.
        """
        setup: list[DemandNode] = []
        by_input: dict[int, list[DemandNode]] = {}
        by_node: dict[int, list[DemandNode]] = {}
        for node in self.nodes:
            if node.parent is not None:
                by_node.setdefault(node.parent, []).append(node)
            elif node.input_ordinal is not None:
                by_input.setdefault(node.input_ordinal, []).append(node)
            else:
                setup.append(node)
        return setup, by_input, by_node

    def stats(self) -> dict:
        """Summary counters for reports and the inspection CLI."""
        kinds = {kind: 0 for kind in _KINDS}
        work_units = 0.0
        for node in self.nodes:
            kinds[node.kind] += 1
            if node.kind == KIND_TASK:
                work_units += node.cycles or 0.0
        _setup, by_input, _by_node = self.children_by_parent()
        return {
            "workload": self.workload,
            "capture_config": self.capture_config,
            "duration_us": self.duration_us,
            "input_events": self.input_events,
            "input_windows": len(by_input),
            "guarded_windows": len(self.guards),
            "task_arrivals": kinds[KIND_TASK],
            "timers": kinds[KIND_TIMER],
            "frame_deadlines": kinds[KIND_INVALIDATE],
            "chain_starts": kinds[KIND_CHAIN_START],
            "chain_stops": kinds[KIND_CHAIN_STOP],
            "work_units_cycles": work_units,
            "states": len(self.states),
            "nodes": len(self.nodes),
            "match_annotations": (
                None if self.match_states is None else len(self.match_states)
            ),
        }

    # --- contract --------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`DemandTraceError` on any contract violation."""
        if self.schema_version != DEMAND_TRACE_SCHEMA_VERSION:
            raise DemandTraceError(
                f"demand trace schema {self.schema_version} != supported "
                f"{DEMAND_TRACE_SCHEMA_VERSION}"
            )
        if self.width <= 0 or self.height <= 0 or self.duration_us <= 0:
            raise DemandTraceError(
                "demand trace needs positive dimensions and duration"
            )
        expected = self.width * self.height
        for index, blob in enumerate(self.states):
            try:
                raw = zlib.decompress(blob)
            except zlib.error as exc:
                raise DemandTraceError(
                    f"state {index} is not valid zlib data: {exc}"
                ) from None
            if len(raw) != expected:
                raise DemandTraceError(
                    f"state {index} decompresses to {len(raw)} bytes, "
                    f"expected {expected}"
                )
        seen_chains: set[int] = set()
        task_ids: dict[int, DemandNode] = {}
        for index, node in enumerate(self.nodes):
            where = f"node {node.node_id}"
            if node.node_id != index:
                raise DemandTraceError(
                    f"{where}: ids must be dense and ordered (at index {index})"
                )
            if node.kind not in _KINDS:
                raise DemandTraceError(f"{where}: unknown kind {node.kind!r}")
            if node.parent is not None:
                if node.input_ordinal is not None:
                    raise DemandTraceError(
                        f"{where}: has both a parent and an input ordinal"
                    )
                if not 0 <= node.parent < index:
                    raise DemandTraceError(
                        f"{where}: parent {node.parent} is not an earlier node"
                    )
                if self.nodes[node.parent].kind not in _PARENT_KINDS:
                    raise DemandTraceError(
                        f"{where}: parent {node.parent} is a "
                        f"{self.nodes[node.parent].kind} node and cannot "
                        "have children"
                    )
            elif node.input_ordinal is not None and not (
                0 <= node.input_ordinal < self.input_events
            ):
                raise DemandTraceError(
                    f"{where}: input ordinal {node.input_ordinal} outside "
                    f"the {self.input_events} recorded events"
                )
            if node.kind == KIND_TASK:
                if not node.name or not node.cycles or node.cycles <= 0:
                    raise DemandTraceError(
                        f"{where}: task needs a name and positive cycles"
                    )
                if node.priority not in (0, 1):
                    raise DemandTraceError(
                        f"{where}: unknown task priority {node.priority}"
                    )
                task_ids[node.node_id] = node
            elif node.kind == KIND_TIMER:
                if node.delay_us is None or node.delay_us < 0:
                    raise DemandTraceError(
                        f"{where}: timer needs a non-negative delay"
                    )
            elif node.kind == KIND_INVALIDATE:
                if node.state_id is None or not (
                    0 <= node.state_id < len(self.states)
                ):
                    raise DemandTraceError(
                        f"{where}: invalidate references state "
                        f"{node.state_id} of {len(self.states)}"
                    )
            elif node.kind == KIND_CHAIN_START:
                if (
                    node.chain_key is None
                    or not node.name
                    or not node.period_us
                    or node.period_us <= 0
                    or not node.cycles
                    or node.cycles <= 0
                    or node.priority not in (0, 1)
                ):
                    raise DemandTraceError(
                        f"{where}: chain start needs key, name, positive "
                        "period and cycles, and a valid priority"
                    )
                seen_chains.add(node.chain_key)
            elif node.kind == KIND_CHAIN_STOP:
                if node.chain_key not in seen_chains:
                    raise DemandTraceError(
                        f"{where}: chain stop for key {node.chain_key} "
                        "before any start"
                    )
        if self.match_states is not None:
            for lag_index, matched in enumerate(self.match_states):
                for state_id in matched:
                    if not 0 <= state_id < len(self.states):
                        raise DemandTraceError(
                            f"match table for annotation {lag_index} "
                            f"references state {state_id} of "
                            f"{len(self.states)}"
                        )
            for lag_index in self.blank_matches:
                if not 0 <= lag_index < len(self.match_states):
                    raise DemandTraceError(
                        f"blank-frame match references annotation "
                        f"{lag_index} of {len(self.match_states)}"
                    )
        elif self.blank_matches:
            raise DemandTraceError(
                "blank-frame matches present without a match table"
            )
        for ordinal, guard in self.guards.items():
            if not 0 <= ordinal < self.input_events:
                raise DemandTraceError(
                    f"guard ordinal {ordinal} outside the "
                    f"{self.input_events} recorded events"
                )
            for node_id in guard:
                node = task_ids.get(node_id)
                if node is None:
                    raise DemandTraceError(
                        f"guard at ordinal {ordinal} references node "
                        f"{node_id}, which is not a task"
                    )
                if node.priority != 0:
                    raise DemandTraceError(
                        f"guard at ordinal {ordinal} references background "
                        f"task node {node_id}"
                    )

    # --- serialization ----------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema_version,
            "workload": self.workload,
            "capture_config": self.capture_config,
            "duration_us": self.duration_us,
            "width": self.width,
            "height": self.height,
            "input_events": self.input_events,
            "nodes": [node.as_dict() for node in self.nodes],
            "guards": {
                str(ordinal): list(guard)
                for ordinal, guard in sorted(self.guards.items())
            },
            "states": [
                base64.b64encode(blob).decode("ascii") for blob in self.states
            ],
            "match_states": (
                None
                if self.match_states is None
                else [list(matched) for matched in self.match_states]
            ),
            "blank_matches": list(self.blank_matches),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "DemandTrace":
        try:
            trace = cls(
                workload=payload["workload"],
                capture_config=payload["capture_config"],
                duration_us=payload["duration_us"],
                width=payload["width"],
                height=payload["height"],
                input_events=payload["input_events"],
                nodes=[DemandNode.from_dict(row) for row in payload["nodes"]],
                guards={
                    int(ordinal): tuple(guard)
                    for ordinal, guard in payload.get("guards", {}).items()
                },
                states=[
                    base64.b64decode(blob)
                    for blob in payload.get("states", [])
                ],
                match_states=(
                    None
                    if payload.get("match_states") is None
                    else [
                        tuple(matched)
                        for matched in payload["match_states"]
                    ]
                ),
                blank_matches=tuple(payload.get("blank_matches", ())),
                schema_version=payload["schema"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DemandTraceError(
                f"malformed demand trace payload: {exc}"
            ) from None
        return trace

    def dumps(self) -> str:
        return json.dumps(self.to_json_dict(), separators=(",", ":"))

    @classmethod
    def loads(cls, text: str) -> "DemandTrace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DemandTraceError(
                f"demand trace is not valid JSON: {exc}"
            ) from None
        return cls.from_json_dict(payload)

    def content_hash(self) -> str:
        """Content address of the trace (stable across dump/load)."""
        return hashlib.sha256(self.dumps().encode("utf-8")).hexdigest()

"""The simulated mobile device.

Substitutes for the paper's Qualcomm Dragonboard APQ8074: a single active
Krait core with the 14 published OPPs, a cpufreq-style DVFS layer, an
evdev-like input subsystem, a framebuffer display with vsync, and a power
model calibrated the way the paper calibrates theirs (CPU-bound
microbenchmark per frequency, idle power subtracted).
"""

from repro.device.cpu import CpuCore
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.device import Device, DeviceConfig
from repro.device.display import Display
from repro.device.frequencies import (
    FrequencyTable,
    OperatingPoint,
    snapdragon_8074_table,
)
from repro.device.input_device import InputDeviceNode, InputSubsystem
from repro.device.power import EnergyMeter, PowerModel
from repro.device.touchscreen import Touchscreen

__all__ = [
    "CpuCore",
    "CpuFreqPolicy",
    "Device",
    "DeviceConfig",
    "Display",
    "FrequencyTable",
    "OperatingPoint",
    "snapdragon_8074_table",
    "InputDeviceNode",
    "InputSubsystem",
    "EnergyMeter",
    "PowerModel",
    "Touchscreen",
]

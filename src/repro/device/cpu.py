"""The single active CPU core.

The paper disables all but one core of the quad-core Snapdragon 8074 to
reduce load-balancing noise; we model that single core.  The core tracks
busy/idle state, cycle throughput at the current frequency, per-frequency
residency (the ``/sys`` cpufreq ``time_in_state`` equivalent) and feeds the
energy meter.  Task execution itself lives in :mod:`repro.kernel.scheduler`;
the core is the mechanism, the scheduler the policy.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Callable

from repro.core.errors import SimulationError
from repro.core.simtime import SimClock
from repro.device.frequencies import FrequencyTable
from repro.device.power import EnergyMeter, PowerModel


class CpuCore:
    """One core with DVFS, busy accounting and energy metering."""

    def __init__(
        self,
        clock: SimClock,
        table: FrequencyTable,
        power_model: PowerModel | None = None,
    ) -> None:
        self._clock = clock
        self._table = table
        self._power_model = power_model or PowerModel()
        self._meter = EnergyMeter(self._power_model)
        self._freq_khz = table.min_khz
        self._volts = table.point(self._freq_khz).volts
        self._busy = False
        self._busy_since: int | None = None
        self._busy_total = 0
        self._state_since = 0
        self._time_in_state: dict[int, int] = defaultdict(int)
        self._transitions = 0
        self._cycles_retired = 0.0
        # Busy intervals accumulate as two parallel int64 arrays (16 B per
        # interval): a day-long replay logs ~half a million of them, and
        # boxed (start, end) tuples would dominate the run's memory.
        self._busy_starts: array | None = None
        self._busy_ends: array | None = None
        self._busy_listeners: list[Callable[[], None]] = []
        self._idle_listeners: list[Callable[[], None]] = []

    # --- read-side properties -------------------------------------------------

    @property
    def table(self) -> FrequencyTable:
        return self._table

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def frequency_khz(self) -> int:
        return self._freq_khz

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def transitions(self) -> int:
        """Number of frequency changes so far (cpufreq ``total_trans``)."""
        return self._transitions

    @property
    def cycles_retired(self) -> float:
        """Total cycles executed so far (updated on state changes)."""
        return self._cycles_retired

    def add_busy_listener(self, listener: Callable[[], None]) -> None:
        """``listener`` fires on every idle-to-busy transition.

        The governors' idle fast path uses this as its wake signal: a
        parked sampling timer must resume before the first sample window
        that could observe non-zero load.
        """
        self._busy_listeners.append(listener)

    def remove_busy_listener(self, listener: Callable[[], None]) -> None:
        self._busy_listeners.remove(listener)

    def add_idle_listener(self, listener: Callable[[], None]) -> None:
        """``listener`` fires on every busy-to-idle transition.

        Wake signal for the busy-elision fast path: a sampling timer
        parked during a pinned-at-max busy stretch must resume before the
        first sample window that could observe load below 100.
        """
        self._idle_listeners.append(listener)

    def remove_idle_listener(self, listener: Callable[[], None]) -> None:
        self._idle_listeners.remove(listener)

    def busy_time_total(self) -> int:
        """Cumulative busy microseconds, including the open interval."""
        total = self._busy_total
        if self._busy and self._busy_since is not None:
            total += self._clock._now - self._busy_since
        return total

    def time_in_state(self) -> dict[int, int]:
        """Residency per frequency in microseconds, including open interval."""
        result = dict(self._time_in_state)
        result[self._freq_khz] = result.get(self._freq_khz, 0) + (
            self._clock.now - self._state_since
        )
        return result

    def energy_joules(self) -> float:
        """Energy consumed up to the current simulation time."""
        return self._meter.energy_at(self._clock.now)

    def dynamic_energy_joules(self) -> float:
        """Energy above the idle floor — the paper's energy metric.

        The paper's power model subtracts idle system power and charges
        only dynamic core power against the frequency-load profile; the
        equivalent here is busy-time energy minus the idle power the same
        interval would have cost anyway.
        """
        busy_s = self.busy_time_total() / 1e6
        busy_energy = self._meter.busy_energy_at(self._clock.now)
        return busy_energy - self._power_model.idle_power() * busy_s

    def cycles_per_micro(self) -> float:
        """Cycles retired per microsecond at the current frequency."""
        return self._freq_khz / 1_000.0

    def enable_busy_trace(self) -> None:
        """Record (start, end) busy intervals for oracle composition."""
        if self._busy_starts is None:
            self._busy_starts = array("q")
            self._busy_ends = array("q")

    def busy_trace(self) -> list[tuple[int, int]]:
        """Recorded busy intervals, closing any open one at 'now'."""
        return self.busy_pairs().tolist()

    def busy_pairs(self):
        """The recorded intervals as compact :class:`~repro.results.
        IntPairs`, closing any open interval at 'now' — the O(1)-boxing
        form the run record stores."""
        from repro.results.pairs import IntPairs

        if self._busy_starts is None:
            raise SimulationError("busy trace was not enabled on this core")
        starts = array("q", self._busy_starts)
        ends = array("q", self._busy_ends)
        if self._busy and self._busy_since is not None:
            if self._clock.now > self._busy_since:
                starts.append(self._busy_since)
                ends.append(self._clock.now)
        return IntPairs.from_arrays(starts, ends)

    # --- state changes ----------------------------------------------------------

    def set_frequency(self, freq_khz: int) -> None:
        """Switch the core to a new operating point.

        The caller (the cpufreq policy) is responsible for validating the
        target against policy limits; the core only requires it to be a
        real OPP.
        """
        if not self._table.contains(freq_khz):
            raise SimulationError(f"{freq_khz} kHz is not an operating point")
        if freq_khz == self._freq_khz:
            return
        now = self._clock._now
        self._account_open_intervals(now)
        self._time_in_state[self._freq_khz] += now - self._state_since
        self._state_since = now
        self._freq_khz = freq_khz
        self._transitions += 1
        self._volts = self._table.point(freq_khz).volts
        self._meter.set_state(now, self._busy, freq_khz, self._volts)

    def set_busy(self, busy: bool) -> None:
        """Mark the core as executing (True) or idle (False)."""
        if busy == self._busy:
            return
        now = self._clock._now
        self._account_open_intervals(now)
        self._busy = busy
        self._busy_since = now if busy else None
        self._meter.set_state(now, busy, self._freq_khz, self._volts)
        if busy:
            if self._busy_listeners:
                for listener in self._busy_listeners:
                    listener()
        elif self._idle_listeners:
            for listener in self._idle_listeners:
                listener()

    def _account_open_intervals(self, now: int) -> None:
        """Close the open busy interval and retire its cycles."""
        if self._busy and self._busy_since is not None:
            elapsed = now - self._busy_since
            self._busy_total += elapsed
            self._cycles_retired += elapsed * (self._freq_khz / 1_000.0)
            if self._busy_starts is not None and elapsed > 0:
                self._busy_starts.append(self._busy_since)
                self._busy_ends.append(now)
            self._busy_since = now

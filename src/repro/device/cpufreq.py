"""cpufreq core: the policy object governors drive.

Mirrors the Linux cpufreq split: the *policy* owns frequency limits,
validates and clamps targets, applies them to the core and keeps the
transition trace that the experiment harness later overlays with lag
profiles (the paper's Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import GovernorError
from repro.core.simtime import SimClock
from repro.device.cpu import CpuCore

# Relation semantics from the Linux cpufreq API.
RELATION_LOW = "low"  # highest frequency <= target
RELATION_HIGH = "high"  # lowest frequency >= target


@dataclass(frozen=True, slots=True)
class FrequencyTransition:
    """One DVFS transition: when and to what frequency."""

    timestamp: int
    freq_khz: int


class CpuFreqPolicy:
    """Frequency limits + target application for one core."""

    def __init__(
        self,
        clock: SimClock,
        core: CpuCore,
        min_khz: int | None = None,
        max_khz: int | None = None,
    ) -> None:
        table = core.table
        self._clock = clock
        self._core = core
        self._min_khz = table.ceil(min_khz) if min_khz else table.min_khz
        self._max_khz = table.floor(max_khz) if max_khz else table.max_khz
        if self._min_khz > self._max_khz:
            raise GovernorError(
                f"policy min {self._min_khz} above max {self._max_khz}"
            )
        self._transitions: list[FrequencyTransition] = [
            FrequencyTransition(clock.now, core.frequency_khz)
        ]
        self._observers: list[Callable[[int, int], None]] = []

    @property
    def core(self) -> CpuCore:
        return self._core

    @property
    def min_khz(self) -> int:
        return self._min_khz

    @property
    def max_khz(self) -> int:
        return self._max_khz

    @property
    def current_khz(self) -> int:
        return self._core.frequency_khz

    @property
    def transitions(self) -> list[FrequencyTransition]:
        """The frequency trace: every transition with its timestamp."""
        return list(self._transitions)

    def add_transition_observer(
        self, observer: Callable[[int, int], None]
    ) -> None:
        """Register ``observer(timestamp, freq_khz)`` for every transition."""
        self._observers.append(observer)

    def clamp(self, freq_khz: int) -> int:
        """Clamp a raw target into the policy limits."""
        return max(self._min_khz, min(self._max_khz, freq_khz))

    def set_target(self, freq_khz: int, relation: str = RELATION_LOW) -> int:
        """Resolve a target against the OPP table and apply it.

        Returns the frequency actually set.
        """
        table = self._core.table
        clamped = self.clamp(freq_khz)
        if relation == RELATION_LOW:
            resolved = table.floor(clamped)
        elif relation == RELATION_HIGH:
            resolved = table.ceil(clamped)
        else:
            raise GovernorError(f"unknown relation {relation!r}")
        resolved = self.clamp(resolved)
        if resolved != self._core.frequency_khz:
            self._core.set_frequency(resolved)
            transition = FrequencyTransition(self._clock.now, resolved)
            self._transitions.append(transition)
            for observer in self._observers:
                observer(transition.timestamp, transition.freq_khz)
        return resolved

    def frequency_at(self, timestamp: int) -> int:
        """Frequency in force at ``timestamp`` according to the trace."""
        result = self._transitions[0].freq_khz
        for transition in self._transitions:
            if transition.timestamp > timestamp:
                break
            result = transition.freq_khz
        return result

"""cpufreq core: the policy object governors drive.

Mirrors the Linux cpufreq split: the *policy* owns frequency limits,
validates and clamps targets, applies them to the core and keeps the
transition trace that the experiment harness later overlays with lag
profiles (the paper's Fig. 3).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import GovernorError
from repro.core.simtime import SimClock
from repro.device.cpu import CpuCore
from repro.obs.session import active as _obs_active

# Relation semantics from the Linux cpufreq API.
RELATION_LOW = "low"  # highest frequency <= target
RELATION_HIGH = "high"  # lowest frequency >= target


@dataclass(frozen=True, slots=True)
class FrequencyTransition:
    """One DVFS transition: when and to what frequency."""

    timestamp: int
    freq_khz: int


class CpuFreqPolicy:
    """Frequency limits + target application for one core."""

    def __init__(
        self,
        clock: SimClock,
        core: CpuCore,
        min_khz: int | None = None,
        max_khz: int | None = None,
    ) -> None:
        table = core.table
        self._clock = clock
        self._core = core
        self._table = table
        self._min_khz = table.ceil(min_khz) if min_khz else table.min_khz
        self._max_khz = table.floor(max_khz) if max_khz else table.max_khz
        if self._min_khz > self._max_khz:
            raise GovernorError(
                f"policy min {self._min_khz} above max {self._max_khz}"
            )
        # The trace accumulates as two parallel int64 arrays (timestamps
        # for bisect, frequencies alongside): governor-heavy day-long
        # replays log hundreds of thousands of transitions, and boxed
        # tuples — let alone a frozen dataclass per append — would
        # dominate the run's memory and the set_target path.  The
        # ``transitions`` property materialises FrequencyTransition
        # objects for read-side callers.
        self._trans_times: array = array("q", [clock.now])
        self._trans_freqs: array = array("q", [core.frequency_khz])
        self._observers: list[Callable[[int, int], None]] = []
        self._obs = _obs_active()

    @property
    def core(self) -> CpuCore:
        return self._core

    @property
    def min_khz(self) -> int:
        return self._min_khz

    @property
    def max_khz(self) -> int:
        return self._max_khz

    @property
    def current_khz(self) -> int:
        return self._core._freq_khz  # flattened: hot in governor samples

    @property
    def transitions(self) -> list[FrequencyTransition]:
        """The frequency trace: every transition with its timestamp."""
        return [
            FrequencyTransition(timestamp, freq_khz)
            for timestamp, freq_khz in zip(self._trans_times, self._trans_freqs)
        ]

    def transition_pairs(self) -> list[tuple[int, int]]:
        """The trace as raw ``(timestamp, freq_khz)`` pairs (no wrappers)."""
        return list(zip(self._trans_times, self._trans_freqs))

    def transition_points(self):
        """The trace as compact :class:`~repro.results.IntPairs` — the
        form the run record stores (16 bytes per transition)."""
        from repro.results.pairs import IntPairs

        return IntPairs.from_arrays(
            array("q", self._trans_times), array("q", self._trans_freqs)
        )

    def add_transition_observer(
        self, observer: Callable[[int, int], None]
    ) -> None:
        """Register ``observer(timestamp, freq_khz)`` for every transition."""
        self._observers.append(observer)

    def clamp(self, freq_khz: int) -> int:
        """Clamp a raw target into the policy limits."""
        if freq_khz < self._min_khz:
            return self._min_khz
        if freq_khz > self._max_khz:
            return self._max_khz
        return freq_khz

    def set_target(self, freq_khz: int, relation: str = RELATION_LOW) -> int:
        """Resolve a target against the OPP table and apply it.

        Returns the frequency actually set.
        """
        min_khz = self._min_khz
        max_khz = self._max_khz
        clamped = freq_khz
        if clamped < min_khz:
            clamped = min_khz
        elif clamped > max_khz:
            clamped = max_khz
        if relation == RELATION_LOW:
            resolved = self._table.floor(clamped)
        elif relation == RELATION_HIGH:
            resolved = self._table.ceil(clamped)
        else:
            raise GovernorError(f"unknown relation {relation!r}")
        if resolved < min_khz:
            resolved = min_khz
        elif resolved > max_khz:
            resolved = max_khz
        core = self._core
        if resolved != core._freq_khz:
            core.set_frequency(resolved)
            timestamp = self._clock._now
            self._trans_times.append(timestamp)
            self._trans_freqs.append(resolved)
            obs = self._obs
            if obs is not None:
                obs.freq_transition(timestamp, resolved)
            for observer in self._observers:
                observer(timestamp, resolved)
        return resolved

    def frequency_at(self, timestamp: int) -> int:
        """Frequency in force at ``timestamp`` according to the trace.

        O(log n) bisect over the transition timestamps; callers that walk
        a whole run (oracle profiles, energy overlays) stay linear overall
        instead of quadratic in the transition count.
        """
        index = bisect_right(self._trans_times, timestamp)
        if index == 0:
            return self._trans_freqs[0]
        return self._trans_freqs[index - 1]

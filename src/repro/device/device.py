"""The assembled device: engine, core, cpufreq, input, display.

A :class:`Device` is the simulated equivalent of the paper's Dragonboard:
one active core with the Snapdragon 8074 OPP table, a touchscreen exposed
at ``/dev/input/event1``, a 30 fps panel, and a cpufreq policy ready to
host any registered governor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import Engine
from repro.core.errors import GovernorError
from repro.device.cpu import CpuCore
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.display import Display
from repro.device.frequencies import FrequencyTable, snapdragon_8074_table
from repro.device.input_device import InputSubsystem
from repro.device.loadtracker import LoadTracker
from repro.device.power import PowerModel
from repro.device.touchscreen import Touchscreen
from repro.kernel.scheduler import Scheduler

TOUCHSCREEN_PATH = "/dev/input/event1"
TOUCHSCREEN_NAME = "synthetic-touchscreen"

# Galaxy-Nexus-class 720x1280 panel scaled 1:10; touch coordinates map 1:1
# onto framebuffer pixels.
DEFAULT_SCREEN_WIDTH = 72
DEFAULT_SCREEN_HEIGHT = 128


@dataclass(slots=True)
class DeviceConfig:
    """Construction parameters for a simulated device."""

    screen_width: int = DEFAULT_SCREEN_WIDTH
    screen_height: int = DEFAULT_SCREEN_HEIGHT
    power_model: PowerModel = field(default_factory=PowerModel)
    frequency_table: FrequencyTable = field(default_factory=snapdragon_8074_table)


class Device:
    """The simulated phone the experiments run on."""

    def __init__(self, config: DeviceConfig | None = None) -> None:
        self.config = config or DeviceConfig()
        self.engine = Engine()
        self.cpu = CpuCore(
            self.engine.clock,
            self.config.frequency_table,
            self.config.power_model,
        )
        self.policy = CpuFreqPolicy(self.engine.clock, self.cpu)
        self.scheduler = Scheduler(self.engine, self.cpu)
        # Bound method, not a lambda: one frame less per DVFS transition.
        self.policy.add_transition_observer(self.scheduler.on_transition)
        self.input_subsystem = InputSubsystem()
        touch_node = self.input_subsystem.register(
            TOUCHSCREEN_PATH, TOUCHSCREEN_NAME
        )
        self.touchscreen = Touchscreen(
            self.engine,
            touch_node,
            self.config.screen_width,
            self.config.screen_height,
        )
        self.display = Display(
            self.engine, self.config.screen_width, self.config.screen_height
        )
        self._governor = None

    @property
    def governor(self):
        return self._governor

    def governor_context(self):
        """A fresh :class:`~repro.governors.base.GovernorContext`."""
        from repro.governors.base import GovernorContext

        return GovernorContext(
            engine=self.engine,
            policy=self.policy,
            load_tracker=LoadTracker(self.engine.clock, self.cpu),
            input_subsystem=self.input_subsystem,
            scheduler=self.scheduler,
        )

    def set_governor(self, name: str, **tunables):
        """Install and start a governor by sysfs-style name.

        ``fixed:<khz>`` pins the userspace governor at a frequency, which
        is how the paper's 14 fixed-frequency configurations are run.
        """
        from repro.governors.base import create_governor

        if self._governor is not None:
            self._governor.stop()
        governor = create_governor(name, self.governor_context(), **tunables)
        governor.start()
        self._governor = governor
        return governor

    def stop_governor(self) -> None:
        if self._governor is not None:
            self._governor.stop()
            self._governor = None

    def run_for(self, duration_us: int) -> None:
        """Advance the simulation by ``duration_us`` microseconds."""
        if duration_us < 0:
            raise GovernorError("duration must be >= 0")
        self.engine.run_until(self.engine.now + duration_us)

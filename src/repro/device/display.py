"""Framebuffer display with on-demand vsync.

The display owns the framebuffer the UI framework draws into.  Like
Android's Choreographer, a frame is only composed when a client invalidated
something; composition happens on the next 30 fps vsync boundary.  Capture
clients (the HDMI capture card) observe composed frames.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.engine import PRIORITY_RENDER, Engine
from repro.core.errors import CaptureError
from repro.obs.session import active as _obs_active

FRAME_RATE = 30
VSYNC_PERIOD_US = 33_333  # 1e6 / 30, truncated; the video time base

FrameObserver = Callable[[int, np.ndarray], None]
"""Called with ``(frame_index, framebuffer_copy)`` after composition."""


def frame_index_at(timestamp: int) -> int:
    """The vsync frame index in force at a simulation timestamp."""
    return timestamp // VSYNC_PERIOD_US


def frame_timestamp(frame_index: int) -> int:
    """Simulation timestamp of a frame's vsync boundary."""
    return frame_index * VSYNC_PERIOD_US


class Display:
    """A ``width x height`` 8-bit grayscale panel with vsync composition."""

    def __init__(self, engine: Engine, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise CaptureError("display dimensions must be positive")
        self._engine = engine
        self.width = width
        self.height = height
        self._framebuffer = np.zeros((height, width), dtype=np.uint8)
        self._observers: list[FrameObserver] = []
        self._composer: Callable[[np.ndarray], None] | None = None
        self._vsync_scheduled = False
        self._frames_composed = 0
        self._last_composed_index = -1
        self._obs = _obs_active()

    @property
    def frames_composed(self) -> int:
        return self._frames_composed

    @property
    def framebuffer(self) -> np.ndarray:
        """The live framebuffer (callers must not mutate)."""
        return self._framebuffer

    def set_composer(self, composer: Callable[[np.ndarray], None]) -> None:
        """Install the client that redraws the framebuffer on vsync.

        The window manager registers here; on each vsync with pending
        invalidations the composer is handed the framebuffer to repaint.
        """
        self._composer = composer

    def add_frame_observer(self, observer: FrameObserver) -> None:
        self._observers.append(observer)

    def invalidate(self) -> None:
        """Request composition on the next vsync boundary."""
        if self._vsync_scheduled:
            return
        self._vsync_scheduled = True
        now = self._engine.now
        next_boundary = frame_timestamp(frame_index_at(now) + 1)
        self._engine.schedule_at(
            next_boundary, self._compose, priority=PRIORITY_RENDER
        )

    def compose_now(self) -> None:
        """Force an immediate composition (used at capture start)."""
        self._compose()

    def _compose(self) -> None:
        self._vsync_scheduled = False
        if self._composer is not None:
            self._composer(self._framebuffer)
        index = frame_index_at(self._engine.now)
        self._frames_composed += 1
        self._last_composed_index = index
        obs = self._obs
        if obs is not None:
            obs.frame_composed(self._engine.now, index)
        snapshot = self._framebuffer.copy()
        for observer in self._observers:
            observer(index, snapshot)

"""Operating-performance-point (OPP) table of the Snapdragon 8074.

The paper's Dragonboard APQ8074 exposes 14 frequency points, labelled in its
figures as 0.30 … 2.15 GHz.  We use the actual MSM8974 kHz values those
labels round from.  Each OPP carries the rail voltage used by the power
model; the curve has a *voltage floor* — below ~0.96 GHz the rail cannot
scale down further — which is what makes 0.96 GHz the most energy-efficient
frequency (the paper's observation for its workloads) rather than an
arbitrary constant we hard-code.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.errors import SimulationError

# MSM8974 (Snapdragon 800/8074) CPU OPPs in kHz.
SNAPDRAGON_8074_FREQS_KHZ: tuple[int, ...] = (
    300_000,
    422_400,
    652_800,
    729_600,
    883_200,
    960_000,
    1_036_800,
    1_190_400,
    1_267_200,
    1_497_600,
    1_574_400,
    1_728_000,
    1_958_400,
    2_150_400,
)

# Rail voltage floor and slope above the knee (volts, volts/GHz).  The
# slope is calibrated so the fixed-frequency dynamic-energy curve has the
# paper's shape: ~1.1x the minimum at 0.30 GHz, ~1.7-1.8x at 2.15 GHz.
VOLTAGE_FLOOR = 0.80
VOLTAGE_KNEE_GHZ = 0.96
VOLTAGE_SLOPE_PER_GHZ = 0.252


def rail_voltage(freq_khz: int) -> float:
    """Rail voltage for an operating point, with the low-frequency floor."""
    freq_ghz = freq_khz / 1e6
    if freq_ghz <= VOLTAGE_KNEE_GHZ:
        return VOLTAGE_FLOOR
    return VOLTAGE_FLOOR + VOLTAGE_SLOPE_PER_GHZ * (freq_ghz - VOLTAGE_KNEE_GHZ)


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """One DVFS operating point: frequency plus rail voltage."""

    freq_khz: int
    volts: float

    @property
    def freq_ghz(self) -> float:
        return self.freq_khz / 1e6

    @property
    def label(self) -> str:
        """The figure-axis label the paper uses, e.g. ``1.50 GHz``."""
        return f"{self.freq_ghz:.2f} GHz"


class FrequencyTable:
    """An ordered set of operating points with lookup helpers."""

    def __init__(self, points: list[OperatingPoint]) -> None:
        if not points:
            raise SimulationError("frequency table cannot be empty")
        ordered = sorted(points, key=lambda p: p.freq_khz)
        if len({p.freq_khz for p in ordered}) != len(ordered):
            raise SimulationError("frequency table has duplicate points")
        self._points = tuple(ordered)
        self._freqs = tuple(p.freq_khz for p in ordered)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        return self._points

    @property
    def frequencies_khz(self) -> tuple[int, ...]:
        return self._freqs

    @property
    def min_khz(self) -> int:
        return self._freqs[0]

    @property
    def max_khz(self) -> int:
        return self._freqs[-1]

    def contains(self, freq_khz: int) -> bool:
        index = bisect.bisect_left(self._freqs, freq_khz)
        return index < len(self._freqs) and self._freqs[index] == freq_khz

    def point(self, freq_khz: int) -> OperatingPoint:
        """The operating point at exactly ``freq_khz``."""
        index = bisect.bisect_left(self._freqs, freq_khz)
        if index >= len(self._freqs) or self._freqs[index] != freq_khz:
            raise SimulationError(f"{freq_khz} kHz is not an operating point")
        return self._points[index]

    def ceil(self, freq_khz: int) -> int:
        """The lowest operating frequency >= ``freq_khz`` (clamped to max)."""
        index = bisect.bisect_left(self._freqs, freq_khz)
        if index >= len(self._freqs):
            return self._freqs[-1]
        return self._freqs[index]

    def floor(self, freq_khz: int) -> int:
        """The highest operating frequency <= ``freq_khz`` (clamped to min)."""
        index = bisect.bisect_right(self._freqs, freq_khz)
        if index == 0:
            return self._freqs[0]
        return self._freqs[index - 1]

    def step_up(self, freq_khz: int, steps: int = 1) -> int:
        """The frequency ``steps`` table entries above ``freq_khz``."""
        index = self._freqs.index(self.ceil(freq_khz))
        return self._freqs[min(index + steps, len(self._freqs) - 1)]

    def step_down(self, freq_khz: int, steps: int = 1) -> int:
        """The frequency ``steps`` table entries below ``freq_khz``."""
        index = self._freqs.index(self.floor(freq_khz))
        return self._freqs[max(index - steps, 0)]


def snapdragon_8074_table() -> FrequencyTable:
    """The 14-point OPP table of the paper's experiment platform."""
    return FrequencyTable(
        [
            OperatingPoint(freq_khz=khz, volts=rail_voltage(khz))
            for khz in SNAPDRAGON_8074_FREQS_KHZ
        ]
    )

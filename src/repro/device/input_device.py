"""The evdev-like input subsystem.

Models ``/dev/input/event*`` device nodes: every hardware event is a
``(type, code, value)`` triple delivered to all readers of the node.  The
recorder (``getevent``), the UI framework's gesture decoder and the
interactive governor's input notifier all attach here, exactly mirroring
the consumers on a real Android system.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import ReplayError
from repro.core.events import InputEvent

EventObserver = Callable[[InputEvent], None]


class InputDeviceNode:
    """One input device node, e.g. ``/dev/input/event1`` (touchscreen)."""

    def __init__(self, path: str, name: str) -> None:
        self.path = path
        self.name = name
        self._observers: list[EventObserver] = []
        self._events_delivered = 0

    @property
    def events_delivered(self) -> int:
        return self._events_delivered

    def add_observer(self, observer: EventObserver) -> None:
        """Attach a reader; it will see every subsequent event."""
        self._observers.append(observer)

    def remove_observer(self, observer: EventObserver) -> None:
        self._observers.remove(observer)

    def emit(self, event: InputEvent) -> None:
        """Deliver one event to all readers (driver-side write)."""
        if event.device != self.path:
            raise ReplayError(
                f"event for {event.device} written to node {self.path}"
            )
        self._events_delivered += 1
        for observer in list(self._observers):
            observer(event)


class InputSubsystem:
    """Registry of input device nodes on the device."""

    def __init__(self) -> None:
        self._nodes: dict[str, InputDeviceNode] = {}

    def register(self, path: str, name: str) -> InputDeviceNode:
        if path in self._nodes:
            raise ReplayError(f"input node {path} already registered")
        node = InputDeviceNode(path, name)
        self._nodes[path] = node
        return node

    def node(self, path: str) -> InputDeviceNode:
        try:
            return self._nodes[path]
        except KeyError:
            raise ReplayError(f"no input node at {path}") from None

    def nodes(self) -> list[InputDeviceNode]:
        return list(self._nodes.values())

    def emit(self, event: InputEvent) -> None:
        """Route an event to its device node (used by the replay agent)."""
        self.node(event.device).emit(event)

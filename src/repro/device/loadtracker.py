"""Per-sample CPU load computation.

Linux cpufreq governors sample the fraction of wall time the core spent
non-idle since the previous sample.  The tracker wraps the core's cumulative
busy counter and turns it into the 0-100 load percentage the governor state
machines consume.
"""

from __future__ import annotations

from repro.core.simtime import SimClock
from repro.device.cpu import CpuCore


class LoadTracker:
    """Computes load over the window since the previous sample."""

    def __init__(self, clock: SimClock, core: CpuCore) -> None:
        self._clock = clock
        self._core = core
        self._last_time = clock.now
        self._last_busy = core.busy_time_total()

    def sample(self) -> int:
        """Load percentage (0-100) since the last call, then reset."""
        now = self._clock.now
        busy = self._core.busy_time_total()
        window = now - self._last_time
        busy_delta = busy - self._last_busy
        self._last_time = now
        self._last_busy = busy
        if window <= 0:
            return 100 if self._core.busy else 0
        load = round(100 * busy_delta / window)
        return max(0, min(100, load))

    def peek_window(self) -> int:
        """Microseconds elapsed since the last sample (without resetting)."""
        return self._clock.now - self._last_time

"""Per-sample CPU load computation.

Linux cpufreq governors sample the fraction of wall time the core spent
non-idle since the previous sample.  The tracker wraps the core's cumulative
busy counter and turns it into the 0-100 load percentage the governor state
machines consume.
"""

from __future__ import annotations

from repro.core.simtime import SimClock
from repro.device.cpu import CpuCore


class LoadTracker:
    """Computes load over the window since the previous sample."""

    __slots__ = ("_clock", "_core", "_last_time", "_last_busy")

    def __init__(self, clock: SimClock, core: CpuCore) -> None:
        self._clock = clock
        self._core = core
        self._last_time = clock.now
        self._last_busy = core.busy_time_total()

    def sample(self) -> int:
        """Load percentage (0-100) since the last call, then reset."""
        now = self._clock._now
        # Inlined CpuCore.busy_time_total: this runs once per governor
        # sample window, the single hottest call site in a replay.
        core = self._core
        busy = core._busy_total
        if core._busy and core._busy_since is not None:
            busy += now - core._busy_since
        window = now - self._last_time
        busy_delta = busy - self._last_busy
        self._last_time = now
        self._last_busy = busy
        if window <= 0:
            return 100 if core._busy else 0
        load = round(100 * busy_delta / window)
        return max(0, min(100, load))

    def fast_forward(self, timestamp: int, busy_total: int | None = None) -> None:
        """Reset the window as if a sample had run at ``timestamp``.

        Used by the governors' fast path: when a parked sampling timer
        wakes up, the window must start at the last elided tick — exactly
        where a real (no-op) sample would have left it.  For the idle
        variant (no busy time accrued since the previous sample) the
        default ``busy_total`` is correct; the busy-elision variant passes
        the busy counter as of ``timestamp`` explicitly.
        """
        self._last_time = timestamp
        if busy_total is None:
            busy_total = self._core.busy_time_total()
        self._last_busy = busy_total

    def peek_window(self) -> int:
        """Microseconds elapsed since the last sample (without resetting)."""
        return self._clock.now - self._last_time

"""Power model and energy accounting.

The paper calibrates a power model by running a CPU-bound microbenchmark at
every operating point, measuring overall system power and subtracting the
idle system power to obtain dynamic core power per frequency.  We model
active power as

    P_active(f) = P_base + kappa * V(f)^2 * f

(the classic CMOS dynamic term plus the static power burnt while the core
is out of its sleep state) and a low idle power while the core sleeps.
Because the rail voltage has a floor below ~0.96 GHz, the energy needed to
retire a fixed amount of work,

    E_per_work(f) = (P_base - P_idle) / f + kappa * V(f)^2,

is minimised at the voltage knee — reproducing both the paper's
race-to-idle discussion and its observation that 0.96 GHz is the most
energy-efficient fixed frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.simtime import MICROS_PER_SECOND
from repro.device.frequencies import FrequencyTable

# Default model constants (watts, watts per GHz*V^2).  Chosen so that a
# 10-minute interaction-intensive workload lands in the paper's 60-100 J
# range (Fig. 13) and the fixed-frequency energy curve has the paper's
# shape: ~1.1x minimum at 0.30 GHz and ~1.7x minimum at 2.15 GHz.
DEFAULT_KAPPA = 0.62
DEFAULT_ACTIVE_BASE_W = 0.062
DEFAULT_IDLE_W = 0.037


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Maps core state (busy/idle, frequency) to power draw in watts."""

    kappa: float = DEFAULT_KAPPA
    active_base_w: float = DEFAULT_ACTIVE_BASE_W
    idle_w: float = DEFAULT_IDLE_W

    def __post_init__(self) -> None:
        if self.kappa <= 0:
            raise SimulationError("kappa must be positive")
        if self.idle_w < 0 or self.active_base_w < self.idle_w:
            raise SimulationError(
                "need 0 <= idle power <= active base power for race-to-idle"
            )

    def active_power(self, freq_khz: int, volts: float) -> float:
        """Power while the core is executing at the given operating point."""
        freq_ghz = freq_khz / 1e6
        return self.active_base_w + self.kappa * volts * volts * freq_ghz

    def idle_power(self) -> float:
        """Power while the core sleeps in its idle state."""
        return self.idle_w

    def energy_per_gigacycle(self, freq_khz: int, volts: float) -> float:
        """Joules to retire 1e9 cycles at an OPP, *beyond* the idle floor.

        This is the quantity race-to-idle trades on: running slower keeps
        the core out of sleep longer, paying the base-power premium for
        more seconds.
        """
        freq_ghz = freq_khz / 1e6
        base_premium = self.active_base_w - self.idle_w
        return base_premium / freq_ghz + self.kappa * volts * volts

    def most_efficient_frequency(self, table: FrequencyTable) -> int:
        """The OPP minimising energy-per-work — the paper's microbenchmark
        calibration outcome (0.96 GHz on the Snapdragon 8074 table)."""
        best = min(
            table.points,
            key=lambda p: self.energy_per_gigacycle(p.freq_khz, p.volts),
        )
        return best.freq_khz

    def calibrate(
        self, table: FrequencyTable, spin_seconds: float = 1.0
    ) -> dict[int, float]:
        """Reproduce the paper's calibration procedure.

        Conceptually runs a CPU-bound spin for ``spin_seconds`` at each
        frequency, "measures" total power and subtracts idle power,
        returning dynamic core power per frequency in watts.
        """
        if spin_seconds <= 0:
            raise SimulationError("spin duration must be positive")
        dynamic: dict[int, float] = {}
        for point in table.points:
            total = self.active_power(point.freq_khz, point.volts)
            dynamic[point.freq_khz] = total - self.idle_w
        return dynamic


class EnergyMeter:
    """Integrates power over time as the core changes state.

    The meter is updated lazily: callers invoke :meth:`sync` (directly or
    via the state-change helpers) with the current timestamp, and the meter
    charges the elapsed interval at the power of the *previous* state.
    """

    def __init__(self, model: PowerModel) -> None:
        self._model = model
        self._energy_j = 0.0
        self._busy_energy_j = 0.0
        self._last_sync = 0
        self._power_w = model.idle_power()
        self._busy = False
        # Operating-point power cache: governors re-visit the same handful
        # of OPPs thousands of times per run; the CMOS model is pure, so
        # compute each point's active power once.
        self._idle_power_w = model.idle_power()
        self._active_power_cache: dict[tuple[int, float], float] = {}

    @property
    def energy_joules(self) -> float:
        """Total energy charged so far (without a pending sync)."""
        return self._energy_j

    @property
    def busy_energy_joules(self) -> float:
        """Energy charged while the core was executing."""
        return self._busy_energy_j

    def busy_energy_at(self, now: int) -> float:
        """Busy energy including the un-synced tail interval up to ``now``."""
        if not self._busy:
            return self._busy_energy_j
        elapsed_s = (now - self._last_sync) / MICROS_PER_SECOND
        if elapsed_s < 0:
            raise SimulationError("cannot query energy in the past")
        return self._busy_energy_j + self._power_w * elapsed_s

    @property
    def current_power_w(self) -> float:
        return self._power_w

    def sync(self, now: int) -> None:
        """Charge the interval since the last sync at the current power."""
        if now < self._last_sync:
            raise SimulationError(
                f"energy meter cannot rewind: {now} < {self._last_sync}"
            )
        elapsed_s = (now - self._last_sync) / MICROS_PER_SECOND
        charge = self._power_w * elapsed_s
        self._energy_j += charge
        if self._busy:
            self._busy_energy_j += charge
        self._last_sync = now

    def set_state(self, now: int, busy: bool, freq_khz: int, volts: float) -> None:
        """Record a state change (busy/idle or frequency) at ``now``."""
        # Inlined sync(): this runs twice per task and once per DVFS
        # transition — hundreds of thousands of times in a day-long replay.
        if now < self._last_sync:
            raise SimulationError(
                f"energy meter cannot rewind: {now} < {self._last_sync}"
            )
        charge = self._power_w * ((now - self._last_sync) / MICROS_PER_SECOND)
        self._energy_j += charge
        if self._busy:
            self._busy_energy_j += charge
        self._last_sync = now
        self._busy = busy
        if busy:
            key = (freq_khz, volts)
            power = self._active_power_cache.get(key)
            if power is None:
                power = self._model.active_power(freq_khz, volts)
                self._active_power_cache[key] = power
            self._power_w = power
        else:
            self._power_w = self._idle_power_w

    def energy_at(self, now: int) -> float:
        """Total energy including the un-synced tail interval up to ``now``."""
        elapsed_s = (now - self._last_sync) / MICROS_PER_SECOND
        if elapsed_s < 0:
            raise SimulationError("cannot query energy in the past")
        return self._energy_j + self._power_w * elapsed_s

"""Touchscreen driver: gestures in, multi-touch protocol-B events out.

When a (synthetic) user performs a tap or swipe, the driver emits the same
event packets a Galaxy-Nexus-class panel produces: a tracking id, touch
major, pressure and absolute position, terminated by ``SYN_REPORT``, with
the contact released via tracking id -1 (``ffffffff`` in getevent output —
the paper's Fig. 5).  Move packets are sampled at the panel scan rate.
"""

from __future__ import annotations

from repro.core import events as ev
from repro.core.engine import PRIORITY_INPUT, Engine
from repro.core.errors import SimulationError
from repro.core.geometry import Point
from repro.device.input_device import InputDeviceNode

TOUCH_PANEL_SCAN_HZ = 90
TOUCH_PANEL_SCAN_PERIOD_US = 1_000_000 // TOUCH_PANEL_SCAN_HZ

# Typical contact parameters reported by the panel firmware.
DEFAULT_TOUCH_MAJOR = 0x0E
DEFAULT_PRESSURE = 0x81

TAP_HOLD_US = 70_000  # finger-down time of a quick tap


class Touchscreen:
    """Encodes gestures into kernel input events on a device node."""

    def __init__(
        self,
        engine: Engine,
        node: InputDeviceNode,
        width: int,
        height: int,
    ) -> None:
        self._engine = engine
        self._node = node
        self._width = width
        self._height = height
        self._next_tracking_id = 3  # ids are arbitrary; Fig. 5 starts at 3
        self._contact_active = False

    @property
    def node(self) -> InputDeviceNode:
        return self._node

    @property
    def contact_active(self) -> bool:
        """Whether a finger is currently down (a gesture is in flight).

        A tap's interaction only opens once the finger lifts, so a
        session deadline can land between down and up; the recording
        harness uses this to keep waiting instead of cutting the video
        before the interaction has even begun.
        """
        return self._contact_active

    def schedule_tap(self, at: int, point: Point, hold_us: int = TAP_HOLD_US) -> int:
        """Schedule a tap gesture starting at time ``at``.

        Returns the finger-up timestamp.
        """
        self._check_point(point)
        tracking_id = self._take_tracking_id()
        self._engine.schedule_at(
            at,
            lambda: self._emit_down(point, tracking_id),
            priority=PRIORITY_INPUT,
        )
        up_time = at + hold_us
        self._engine.schedule_at(up_time, self._emit_up, priority=PRIORITY_INPUT)
        return up_time

    def schedule_swipe(
        self,
        at: int,
        start: Point,
        end: Point,
        duration_us: int,
    ) -> int:
        """Schedule a swipe gesture; returns the finger-up timestamp."""
        self._check_point(start)
        self._check_point(end)
        if duration_us <= 0:
            raise SimulationError("swipe duration must be positive")
        tracking_id = self._take_tracking_id()
        self._engine.schedule_at(
            at,
            lambda: self._emit_down(start, tracking_id),
            priority=PRIORITY_INPUT,
        )
        steps = max(1, duration_us // TOUCH_PANEL_SCAN_PERIOD_US)
        for step in range(1, steps + 1):
            fraction = step / steps
            point = Point(
                round(start.x + (end.x - start.x) * fraction),
                round(start.y + (end.y - start.y) * fraction),
            )
            when = at + step * duration_us // (steps + 1)
            self._engine.schedule_at(
                when,
                lambda p=point: self._emit_move(p),
                priority=PRIORITY_INPUT,
            )
        up_time = at + duration_us
        self._engine.schedule_at(up_time, self._emit_up, priority=PRIORITY_INPUT)
        return up_time

    # --- packet emission -------------------------------------------------------

    def _emit_down(self, point: Point, tracking_id: int) -> None:
        now = self._engine.now
        self._contact_active = True
        self._abs(now, ev.ABS_MT_TRACKING_ID, tracking_id)
        self._abs(now, ev.ABS_MT_TOUCH_MAJOR, DEFAULT_TOUCH_MAJOR)
        self._abs(now, ev.ABS_MT_PRESSURE, DEFAULT_PRESSURE)
        self._abs(now, ev.ABS_MT_POSITION_X, point.x)
        self._abs(now, ev.ABS_MT_POSITION_Y, point.y)
        self._syn(now)

    def _emit_move(self, point: Point) -> None:
        if not self._contact_active:
            return
        now = self._engine.now
        self._abs(now, ev.ABS_MT_POSITION_X, point.x)
        self._abs(now, ev.ABS_MT_POSITION_Y, point.y)
        self._syn(now)

    def _emit_up(self) -> None:
        now = self._engine.now
        self._contact_active = False
        self._abs(now, ev.ABS_MT_TRACKING_ID, ev.TRACKING_ID_NONE)
        self._syn(now)

    def _abs(self, timestamp: int, code: int, value: int) -> None:
        self._node.emit(
            ev.InputEvent(timestamp, self._node.path, ev.EV_ABS, code, value)
        )

    def _syn(self, timestamp: int) -> None:
        self._node.emit(
            ev.InputEvent(
                timestamp, self._node.path, ev.EV_SYN, ev.SYN_REPORT, 0
            )
        )

    def _take_tracking_id(self) -> int:
        tracking_id = self._next_tracking_id
        self._next_tracking_id = (self._next_tracking_id + 1) & 0xFFFF
        return tracking_id

    def _check_point(self, point: Point) -> None:
        if not (0 <= point.x < self._width and 0 <= point.y < self._height):
            raise SimulationError(
                f"touch point {point} outside {self._width}x{self._height} panel"
            )

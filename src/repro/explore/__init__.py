"""Governor design-space exploration.

The paper characterises a *fixed* set of 17 configurations; this package
turns that study grid into an open-ended search.  A
:class:`~repro.explore.space.GovernorSpace` declares a governor's
tunables as an enumerable grid of config strings, a
:class:`~repro.explore.strategies.SearchStrategy` decides which
candidates to spend a budget on, the
:class:`~repro.explore.evaluator.ExploreEvaluator` replays them through
the fleet engine's content-addressed cache, and
:mod:`~repro.explore.pareto` reports which candidates are Pareto-optimal
on the energy-irritation plane, with the oracle as the lower bound.
"""

from repro.explore.evaluator import CandidateScore, ExploreEvaluator
from repro.explore.pareto import (
    dominates,
    pareto_frontier,
    render_frontier_report,
)
from repro.explore.space import (
    GovernorSpace,
    ParamSpec,
    builtin_space,
    builtin_space_names,
)
from repro.explore.strategies import (
    GridSearch,
    HillClimb,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    make_strategy,
    strategy_names,
)

__all__ = [
    "CandidateScore",
    "ExploreEvaluator",
    "GovernorSpace",
    "GridSearch",
    "HillClimb",
    "ParamSpec",
    "RandomSearch",
    "SearchStrategy",
    "SuccessiveHalving",
    "builtin_space",
    "builtin_space_names",
    "dominates",
    "make_strategy",
    "pareto_frontier",
    "render_frontier_report",
    "strategy_names",
]

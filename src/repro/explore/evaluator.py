"""Batch candidate evaluation on the fleet engine.

The explorer's unit of cost is one *candidate evaluation*: replay the
workload ``reps`` times under a candidate's config string and score the
mean against the oracle.  :class:`ExploreEvaluator` lowers candidate
batches to :class:`~repro.fleet.spec.RunSpec` lists and dispatches them
through one :class:`~repro.fleet.engine.FleetEngine`, so

* a batch fans out over ``jobs`` worker processes,
* every (config, rep) cell is content-addressed in the
  :class:`~repro.fleet.cache.ResultCache` — a candidate revisited by a
  later strategy iteration (or a warm re-run of the whole exploration)
  costs nothing, and a successive-halving promotion from 2 to 4 reps
  only pays for the two new reps,
* results merge in spec order, so scores are bit-identical for any
  ``jobs`` value.

The oracle (paper §III-B) is composed once, from the 14 fixed-frequency
runs dispatched through the same engine and cache that the candidates
use — an exploration therefore shares cells with any earlier ``sweep``
of the same dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.device.frequencies import FrequencyTable
from repro.device.power import PowerModel
from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine, ProgressHook
from repro.fleet.spec import RunSpec, group_results_by_config
from repro.governors.config import canonical_config
from repro.harness.experiment import WorkloadArtifacts
from repro.results import RunRecord
from repro.harness.sweep import compose_oracle_from_runs, fixed_configs
from repro.metrics.hci import HciModel
from repro.oracle.builder import OracleResult

#: Default exchange rate for scalarising (energy, irritation) when a
#: strategy must rank candidates: one second of user irritation costs as
#: much as 5% of the oracle's whole-workload energy.
DEFAULT_IRRITATION_WEIGHT = 0.05


@dataclass(frozen=True, slots=True)
class CandidateScore:
    """One candidate's position on the paper's energy-irritation plane.

    ``dominant_cause`` names the largest per-cause irritation share from
    the runs' attribution harvest (``REPRO_TRACE=1``), or is ``None``
    when any rep lacks the harvest — an untraced run, or a cache row
    written before attribution existed — or when irritation is zero.
    """

    config: str
    reps: int
    mean_energy_j: float
    energy_norm: float
    irritation_s: float
    dominant_cause: str | None = None

    def point(self) -> tuple[float, float]:
        """(energy normalised to oracle, irritation seconds) — minimise both."""
        return (self.energy_norm, self.irritation_s)

    def scalar(
        self, irritation_weight: float = DEFAULT_IRRITATION_WEIGHT
    ) -> float:
        """Weighted single objective for strategies that need a ranking."""
        return self.energy_norm + irritation_weight * self.irritation_s


def dominant_cause_of_runs(runs: Sequence[RunRecord]) -> str | None:
    """The largest irritation cause summed across ``runs``' attributions.

    ``None`` when any run lacks the attribution harvest (untraced, or
    cached before the attribution engine existed) or when the summed
    irritation is zero — a score must never claim a cause it cannot
    back with every rep's evidence.
    """
    from repro.obs.attribution.causes import cause_order_key

    totals: dict[str, int] = {}
    for run in runs:
        summary = (run.obs or {}).get("attribution")
        if not isinstance(summary, dict):
            return None
        for cause, penalty_us in summary.get(
            "per_cause_penalty_us", {}
        ).items():
            totals[cause] = totals.get(cause, 0) + int(penalty_us)
    if not any(totals.values()):
        return None
    return min(
        totals.items(), key=lambda item: (-item[1], cause_order_key(item[0]))
    )[0]


class ExploreEvaluator:
    """Score candidate config strings against the dataset's oracle."""

    def __init__(
        self,
        artifacts: WorkloadArtifacts,
        jobs: int = 1,
        cache: ResultCache | None = None,
        master_seed: int | None = None,
        oracle_reps: int = 1,
        table: FrequencyTable | None = None,
        power_model: PowerModel | None = None,
        hci_model: HciModel | None = None,
        progress: ProgressHook | None = None,
        backend=None,
    ) -> None:
        from repro.scenarios.profiles import frequency_table_for, power_model_for

        self.artifacts = artifacts
        self.table = table or frequency_table_for(artifacts.spec)
        self.power_model = power_model or power_model_for(artifacts.spec)
        self.hci_model = hci_model
        self.master_seed = (
            artifacts.recording_master_seed
            if master_seed is None
            else master_seed
        )
        self.oracle_reps = oracle_reps
        self._engine = FleetEngine(
            jobs=jobs, cache=cache, progress=progress, backend=backend
        )
        self._scores: dict[tuple[str, int], CandidateScore] = {}
        self._oracle: OracleResult | None = None
        self.replays_executed = 0
        self.cache_hits = 0

    @property
    def oracle(self) -> OracleResult:
        """The composed oracle, built on first use from the fixed runs."""
        if self._oracle is None:
            configs = fixed_configs(self.table)
            specs = self._specs(configs, self.oracle_reps)
            results = self._run(specs)
            runs = group_results_by_config(specs, results, configs)
            self._oracle = compose_oracle_from_runs(
                self.artifacts, runs, self.table, self.power_model
            )
        return self._oracle

    def evaluate(
        self, configs: list[str], reps: int = 1
    ) -> list[CandidateScore]:
        """Score a batch of config strings at ``reps`` repetitions each.

        Input order is preserved; duplicate and previously-evaluated
        candidates are served from the in-memory score memo (and their
        replays from the result cache before that).
        """
        canonical = [canonical_config(config) for config in configs]
        oracle = self.oracle  # composed before any candidate runs
        todo: list[str] = []
        for config in canonical:
            if (config, reps) not in self._scores and config not in todo:
                todo.append(config)
        if todo:
            specs = self._specs(todo, reps)
            results = self._run(specs)
            grouped = group_results_by_config(specs, results, todo)
            for config in todo:
                runs = grouped[config]
                mean_energy = sum(r.dynamic_energy_j for r in runs) / len(runs)
                irritation = sum(
                    r.irritation_seconds(self.hci_model) for r in runs
                ) / len(runs)
                self._scores[(config, reps)] = CandidateScore(
                    config=config,
                    reps=reps,
                    mean_energy_j=mean_energy,
                    energy_norm=mean_energy / oracle.energy_j,
                    irritation_s=irritation,
                    dominant_cause=dominant_cause_of_runs(runs),
                )
        return [self._scores[(config, reps)] for config in canonical]

    def _specs(self, configs: list[str], reps: int) -> list[RunSpec]:
        return [
            RunSpec(
                dataset=self.artifacts.name,
                config=config,
                rep=rep,
                master_seed=self.master_seed,
            )
            for config in configs
            for rep in range(reps)
        ]

    def _run(self, specs: list[RunSpec]) -> list[RunRecord]:
        results = self._engine.run(self.artifacts, specs)
        self.replays_executed += self._engine.last_stats.executed
        self.cache_hits += self._engine.last_stats.cache_hits
        return results

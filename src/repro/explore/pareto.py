"""Pareto characterisation on the energy-irritation plane.

The paper plots every configuration as a point (energy, irritation) with
the oracle as the unreachable lower-left bound (Fig. 13).  This module
computes which explored candidates are Pareto-optimal — no other
candidate is at least as good on both axes and better on one — and
renders the frontier as an ASCII report: a ranked table plus a scatter
of the plane with the frontier and the oracle marked.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.explore.evaluator import CandidateScore
from repro.harness.figures import format_table

PLOT_WIDTH = 64
PLOT_HEIGHT = 16


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """True when point ``a`` Pareto-dominates ``b`` (minimising both)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def pareto_frontier(scores: Iterable[CandidateScore]) -> list[CandidateScore]:
    """The non-dominated candidates, sorted by energy then irritation.

    Of several candidates at exactly the same point, the first in
    ``(point, config)`` order represents the point; the duplicates are
    dominated by nothing yet add nothing to the frontier.
    """
    ordered = sorted(
        scores, key=lambda s: (s.energy_norm, s.irritation_s, s.config)
    )
    frontier: list[CandidateScore] = []
    seen_points: set[tuple[float, float]] = set()
    for score in ordered:
        point = score.point()
        if point in seen_points:
            continue
        if any(dominates(kept.point(), point) for kept in frontier):
            continue
        frontier.append(score)
        seen_points.add(point)
    return frontier


def render_frontier_report(
    scores: Sequence[CandidateScore],
    oracle_irritation_s: float,
    baselines: Sequence[CandidateScore] = (),
    show_causes: bool = False,
) -> str:
    """The exploration's result: ranked table + ASCII plane.

    ``scores`` are the explored candidates; ``baselines`` (stock
    governors at their defaults) are plotted for reference but take no
    part in the frontier.  The oracle sits at (1.0, its own irritation)
    by construction.

    ``show_causes`` appends the attribution engine's dominant-irritation
    -cause column (``-`` for zero-irritation or unattributed scores);
    the CLI enables it only under ``REPRO_TRACE=1`` so untraced stdout
    stays byte-identical to pre-attribution output.
    """
    frontier = pareto_frontier(scores)
    frontier_configs = {score.config for score in frontier}

    def _row(mark: str, score: CandidateScore) -> list[str]:
        row = [
            mark,
            score.config,
            str(score.reps),
            f"{score.energy_norm:.3f}",
            f"{score.irritation_s:.2f}",
        ]
        if show_causes:
            row.append(score.dominant_cause or "-")
        return row

    rows = []
    for score in sorted(
        scores, key=lambda s: (s.energy_norm, s.irritation_s, s.config)
    ):
        rows.append(_row("*" if score.config in frontier_configs else "", score))
    for score in sorted(baselines, key=lambda s: s.config):
        rows.append(_row("b", score))
    oracle_row = ["@", "oracle", "", "1.000", f"{oracle_irritation_s:.2f}"]
    headers = ["", "config", "reps", "energy/oracle", "irritation s"]
    if show_causes:
        oracle_row.append("")
        headers.append("dominant cause")
    rows.append(oracle_row)
    table = format_table(headers, rows)
    plot = _render_plane(scores, frontier_configs, baselines, oracle_irritation_s)
    return (
        f"{len(scores)} candidate(s), {len(frontier)} on the Pareto "
        "frontier (*; b = stock baseline, @ = oracle)\n"
        + table
        + "\n\n"
        + plot
    )


def _render_plane(
    scores: Sequence[CandidateScore],
    frontier_configs: set[str],
    baselines: Sequence[CandidateScore],
    oracle_irritation_s: float,
) -> str:
    """ASCII scatter: x = energy/oracle, y = irritation seconds."""
    points = [(s.energy_norm, s.irritation_s, "o") for s in scores]
    points += [
        (s.energy_norm, s.irritation_s, "*")
        for s in scores
        if s.config in frontier_configs
    ]
    points += [(s.energy_norm, s.irritation_s, "b") for s in baselines]
    points.append((1.0, oracle_irritation_s, "@"))
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * PLOT_WIDTH for _ in range(PLOT_HEIGHT)]
    # Later markers overwrite earlier ones: frontier over plain candidates,
    # baselines and the oracle over everything.
    for x, y, mark in points:
        col = round((x - x_lo) / x_span * (PLOT_WIDTH - 1))
        row = round((y - y_lo) / y_span * (PLOT_HEIGHT - 1))
        grid[PLOT_HEIGHT - 1 - row][col] = mark
    lines = [
        f"irritation {y_hi:6.2f} s +" + "".join(grid[0]),
    ]
    lines.extend("                    |" + "".join(row) for row in grid[1:-1])
    lines.append(f"           {y_lo:6.2f} s +" + "".join(grid[-1]))
    lines.append(
        "                     "
        + f"{x_lo:.2f}".ljust(PLOT_WIDTH - 6)
        + f"{x_hi:.2f}".rjust(6)
    )
    lines.append(
        "                     " + "energy normalised to oracle".center(PLOT_WIDTH)
    )
    return "\n".join(lines)

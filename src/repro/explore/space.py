"""Declarative governor parameter spaces.

The paper studies 17 *fixed* configurations; its §VI sketches a governor
whose tunables we would want to search, not hard-code.  This module makes
that search space a value: a :class:`GovernorSpace` declares, per
registered governor, which tunables exist (:class:`ParamSpec`), which
values are worth trying, and how a point in the space serializes to a
config string like ``qoe_aware:boost=1036800,settle=40000`` — the same
strings the sweep, the fleet cache and ``create_governor`` understand.

A *candidate* is a plain ``{short_key: value}`` dict.  Spaces are finite
grids: every parameter draws from an explicit value tuple, so exhaustive
enumeration, seeded sampling and one-step neighbourhoods (for hill
climbing) are all well-defined and deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from random import Random
from typing import Iterator

import repro.governors  # noqa: F401  — populate the governor registry
from repro.core.errors import ReproError
from repro.device.frequencies import FrequencyTable, snapdragon_8074_table
from repro.governors.base import check_config_params, governor_factory
from repro.governors.config import format_config, parse_config

Candidate = dict[str, int]


@dataclass(frozen=True, slots=True)
class ParamSpec:
    """One tunable: its config-string key and the values to explore.

    ``unit`` is documentation ("khz", "us", "%", ...); frequency-valued
    parameters (``unit="khz"``) are validated against the OPP table when
    the enclosing space is built.
    """

    key: str
    values: tuple[int, ...]
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ReproError(f"parameter {self.key!r} has no values")
        ordered = tuple(sorted(set(self.values)))
        if ordered != self.values:
            object.__setattr__(self, "values", ordered)

    def index(self, value: int) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ReproError(
                f"parameter {self.key!r}: {value} is not one of "
                f"{list(self.values)}"
            ) from None

    def neighbours(self, value: int) -> tuple[int, ...]:
        """The values one grid step below/above ``value`` (if any)."""
        index = self.index(value)
        out = []
        if index > 0:
            out.append(self.values[index - 1])
        if index + 1 < len(self.values):
            out.append(self.values[index + 1])
        return tuple(out)


class GovernorSpace:
    """A finite, enumerable parameter grid for one registered governor."""

    def __init__(
        self,
        governor: str,
        params: tuple[ParamSpec, ...] | list[ParamSpec],
        table: FrequencyTable | None = None,
    ) -> None:
        table = table or snapdragon_8074_table()
        factory = governor_factory(governor)
        ordered = tuple(sorted(params, key=lambda p: p.key))
        seen: set[str] = set()
        for param in ordered:
            if param.key in seen:
                raise ReproError(
                    f"space for {governor!r} declares {param.key!r} twice"
                )
            seen.add(param.key)
            check_config_params(governor, factory, [param.key])
            if param.unit == "khz":
                for value in param.values:
                    if not table.contains(value):
                        raise ReproError(
                            f"space for {governor!r}: {param.key}={value} "
                            "is not an operating point of the table"
                        )
        self.governor = governor
        self.params = ordered
        self.table = table

    @property
    def size(self) -> int:
        out = 1
        for param in self.params:
            out *= len(param.values)
        return out

    def grid(self) -> Iterator[Candidate]:
        """Every candidate, in deterministic key-major order."""
        keys = [p.key for p in self.params]
        for values in itertools.product(*(p.values for p in self.params)):
            yield dict(zip(keys, values))

    def sample(self, rng: Random, count: int) -> list[Candidate]:
        """``count`` distinct candidates drawn with ``rng`` (seeded)."""
        if count >= self.size:
            return list(self.grid())
        chosen: list[Candidate] = []
        seen: set[str] = set()
        while len(chosen) < count:
            candidate = {
                p.key: rng.choice(p.values) for p in self.params
            }
            config = self.config(candidate)
            if config not in seen:
                seen.add(config)
                chosen.append(candidate)
        return chosen

    def neighbours(self, candidate: Candidate) -> list[Candidate]:
        """Candidates differing from ``candidate`` by one step in one key."""
        out: list[Candidate] = []
        for param in self.params:
            for value in param.neighbours(candidate[param.key]):
                step = dict(candidate)
                step[param.key] = value
                out.append(step)
        return out

    def config(self, candidate: Candidate) -> str:
        """Serialize a candidate to its canonical config string."""
        self._check_keys(candidate)
        return format_config(self.governor, dict(candidate))

    def parse(self, config: str) -> Candidate:
        """Parse a config string back into an in-space candidate."""
        base, params = parse_config(config)
        if base != self.governor:
            raise ReproError(
                f"config {config!r} names governor {base!r}, "
                f"space is for {self.governor!r}"
            )
        self._check_keys(params)
        for param in self.params:
            param.index(params[param.key])  # raises if off-grid
        return params

    def _check_keys(self, candidate: Candidate) -> None:
        expected = {p.key for p in self.params}
        if set(candidate) != expected:
            raise ReproError(
                f"candidate keys {sorted(candidate)} do not match the "
                f"space's parameters {sorted(expected)}"
            )


def builtin_space(
    governor: str, table: FrequencyTable | None = None
) -> GovernorSpace:
    """The stock search space for one of the studied governors."""
    table = table or snapdragon_8074_table()
    try:
        params = _BUILTIN_PARAMS[governor](table)
    except KeyError:
        known = ", ".join(sorted(_BUILTIN_PARAMS))
        raise ReproError(
            f"no built-in search space for {governor!r} (known: {known})"
        ) from None
    return GovernorSpace(governor, params, table)


def builtin_space_names() -> list[str]:
    return sorted(_BUILTIN_PARAMS)


def _upper_opps(table: FrequencyTable, count: int) -> tuple[int, ...]:
    """The ``count`` highest operating points, ascending."""
    return table.frequencies_khz[-count:]


def _qoe_aware_params(table: FrequencyTable) -> list[ParamSpec]:
    # Boost OPPs from just under the knee upward: below the efficient
    # point a "boost" cannot service interactions any faster.
    return [
        ParamSpec("boost", _upper_opps(table, 9), unit="khz"),
        ParamSpec("timer", (10_000, 20_000, 40_000), unit="us"),
        ParamSpec("settle", (20_000, 40_000, 60_000, 100_000), unit="us"),
    ]


def _interactive_params(table: FrequencyTable) -> list[ParamSpec]:
    return [
        ParamSpec("hispeed", _upper_opps(table, 6), unit="khz"),
        ParamSpec("timer", (10_000, 20_000, 40_000), unit="us"),
        ParamSpec("go_hispeed", (85, 95, 99), unit="%"),
        ParamSpec("min_sample", (40_000, 80_000), unit="us"),
    ]


def _ondemand_params(_table: FrequencyTable) -> list[ParamSpec]:
    return [
        ParamSpec("up_threshold", (80, 90, 95, 98), unit="%"),
        ParamSpec("sampling", (10_000, 20_000, 40_000, 80_000), unit="us"),
        ParamSpec("down_factor", (1, 2, 4)),
    ]


def _conservative_params(_table: FrequencyTable) -> list[ParamSpec]:
    # down_threshold stays at its stock 20: the grid keeps the
    # constructor's 0 < down < up invariant valid for every candidate.
    return [
        ParamSpec("up_threshold", (40, 60, 80), unit="%"),
        ParamSpec("step", (5, 10, 20, 40), unit="%"),
        ParamSpec("sampling", (80_000, 200_000), unit="us"),
    ]


_BUILTIN_PARAMS = {
    "qoe_aware": _qoe_aware_params,
    "interactive": _interactive_params,
    "ondemand": _ondemand_params,
    "conservative": _conservative_params,
}

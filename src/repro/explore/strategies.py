"""Search strategies over a governor parameter space.

A strategy decides *which* candidates to evaluate and in what order,
within a budget counted in candidate evaluations; the actual replays are
the evaluator's business.  All strategies are deterministic functions of
``(space, budget, rng seed, evaluation results)``: ties break on the
canonical config string, candidate draws come from the seeded ``rng``,
and no wall-clock state enters any decision — which is what keeps an
exploration bit-identical across worker counts.

Strategies ship in four shapes, mirroring how real DVFS tuning proceeds:

* :class:`GridSearch` — exhaustive enumeration, the static-study analogue,
* :class:`RandomSearch` — seeded uniform sampling, the cheap baseline,
* :class:`SuccessiveHalving` — evaluate wide at 1 rep, promote the best
  half to double the repetitions, repeat; the content-addressed cache
  makes each promotion pay only for its *new* reps,
* :class:`HillClimb` — local refinement: evaluate a seed candidate's
  one-step neighbourhood, move to the best improvement, stop at a local
  optimum or budget exhaustion.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from random import Random
from typing import Callable

from repro.core.errors import ReproError
from repro.explore.evaluator import DEFAULT_IRRITATION_WEIGHT, CandidateScore
from repro.explore.space import Candidate, GovernorSpace

#: ``evaluate(configs, reps)`` — score a batch of config strings.
Evaluate = Callable[[list[str], int], list[CandidateScore]]


class SearchStrategy(ABC):
    """Base class: a budgeted search over one governor space."""

    name: str = "abstract"

    def __init__(
        self,
        reps: int = 1,
        irritation_weight: float = DEFAULT_IRRITATION_WEIGHT,
    ) -> None:
        if reps < 1:
            raise ReproError(f"strategy needs reps >= 1, got {reps}")
        self.reps = reps
        self.irritation_weight = irritation_weight

    @abstractmethod
    def search(
        self,
        space: GovernorSpace,
        evaluate: Evaluate,
        budget: int,
        rng: Random,
    ) -> list[CandidateScore]:
        """Spend up to ``budget`` candidate evaluations; return the scores.

        The returned list holds one score per distinct candidate (the
        highest-repetition evaluation where a strategy re-scores), in a
        deterministic order.
        """

    def _key(self, score: CandidateScore) -> tuple[float, str]:
        """Deterministic ranking key: scalarised score, then config."""
        return (score.scalar(self.irritation_weight), score.config)

    @staticmethod
    def _check_budget(budget: int) -> None:
        if budget < 1:
            raise ReproError(f"search budget must be >= 1, got {budget}")


class GridSearch(SearchStrategy):
    """Exhaustive enumeration, truncated to the budget in grid order."""

    name = "grid"

    def search(self, space, evaluate, budget, rng):
        self._check_budget(budget)
        configs = [space.config(c) for c in space.grid()]
        return evaluate(configs[:budget], self.reps)


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling of distinct candidates."""

    name = "random"

    def search(self, space, evaluate, budget, rng):
        self._check_budget(budget)
        candidates = space.sample(rng, min(budget, space.size))
        return evaluate([space.config(c) for c in candidates], self.reps)


class SuccessiveHalving(SearchStrategy):
    """Wide-then-deep: halve the field, double the repetitions.

    Rung 0 evaluates ``~budget/2`` sampled candidates at ``reps``
    repetitions; each following rung keeps the better half and re-scores
    it at twice the repetitions.  Because run cells are content-addressed
    per (config, rep), a rung at 2k reps reuses the k reps already
    replayed — promotion costs only the new half.
    """

    name = "halving"

    def search(self, space, evaluate, budget, rng):
        self._check_budget(budget)
        initial = max(2, (budget + 1) // 2)
        candidates = space.sample(rng, min(initial, space.size))
        configs = [space.config(c) for c in candidates]
        best: dict[str, CandidateScore] = {}
        spent = 0
        reps = self.reps
        while configs and spent < budget:
            rung = configs[: budget - spent]
            scores = evaluate(rung, reps)
            spent += len(rung)
            for score in scores:
                best[score.config] = score
            if len(rung) <= 1:
                break
            ranked = sorted(scores, key=self._key)
            configs = [s.config for s in ranked[: math.ceil(len(ranked) / 2)]]
            reps *= 2
        return sorted(best.values(), key=lambda s: s.config)


class HillClimb(SearchStrategy):
    """Greedy local refinement from a seeded starting candidate.

    Evaluates the current candidate's one-step neighbourhood, moves to
    the best strictly-improving neighbour, and stops at a local optimum
    (or when the budget runs out).  Already-evaluated candidates are
    never re-spent.
    """

    name = "hillclimb"

    def search(self, space, evaluate, budget, rng):
        self._check_budget(budget)
        [start] = space.sample(rng, 1)
        [current] = evaluate([space.config(start)], self.reps)
        seen: dict[str, CandidateScore] = {current.config: current}
        spent = 1
        cursor = start
        while spent < budget:
            fresh = [
                candidate
                for candidate in space.neighbours(cursor)
                if space.config(candidate) not in seen
            ][: budget - spent]
            if not fresh:
                break
            scores = evaluate([space.config(c) for c in fresh], self.reps)
            spent += len(fresh)
            for score in scores:
                seen[score.config] = score
            champion = min(scores, key=self._key)
            if self._key(champion) < self._key(current):
                current = champion
                cursor = space.parse(champion.config)
            else:
                break
        return sorted(seen.values(), key=lambda s: s.config)


_STRATEGIES: dict[str, type[SearchStrategy]] = {
    cls.name: cls
    for cls in (GridSearch, RandomSearch, SuccessiveHalving, HillClimb)
}


def strategy_names() -> list[str]:
    return sorted(_STRATEGIES)


_ALIASES = {"exhaustive": "grid"}


def make_strategy(
    name: str,
    reps: int = 1,
    irritation_weight: float = DEFAULT_IRRITATION_WEIGHT,
) -> SearchStrategy:
    """Instantiate a search strategy by name."""
    try:
        cls = _STRATEGIES[_ALIASES.get(name, name)]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ReproError(
            f"unknown search strategy {name!r} (known: {known})"
        ) from None
    return cls(reps=reps, irritation_weight=irritation_weight)

"""Fleet execution: parallel sweeps over a fleet of simulated devices.

The study grid (17 configurations × 5 repetitions × N datasets) is
embarrassingly parallel — every cell is an independent, deterministic
replay.  This package exploits that:

* :mod:`repro.fleet.spec` — :class:`RunSpec`, the pure value naming one
  cell, plus the grid enumerator,
* :mod:`repro.fleet.engine` — :class:`FleetEngine`, multiprocessing
  dispatch with ordered merge and per-worker failure capture,
* :mod:`repro.fleet.cache` — :class:`ResultCache`, a content-addressed
  on-disk store so re-running a study only executes invalidated cells,
* :mod:`repro.fleet.progress` — :class:`ProgressReporter`, aggregated
  ``done/total`` + ETA reporting across all workers.

The serial sweep in :mod:`repro.harness.sweep` is now a thin layer over
this package; ``FleetEngine(jobs=1)`` is the serial path, and any other
worker count produces bit-identical output.
"""

from repro.fleet.cache import ResultCache, workload_fingerprint
from repro.fleet.engine import (
    FleetEngine,
    FleetError,
    FleetStats,
    WorkerFailure,
    execute_spec,
)
from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import RunSpec, enumerate_sweep_specs, freeze_tunables

__all__ = [
    "FleetEngine",
    "FleetError",
    "FleetStats",
    "ProgressReporter",
    "ResultCache",
    "RunSpec",
    "WorkerFailure",
    "enumerate_sweep_specs",
    "execute_spec",
    "freeze_tunables",
    "workload_fingerprint",
]

"""Fleet execution: parallel sweeps over a fleet of simulated devices.

The study grid (17 configurations × 5 repetitions × N datasets) is
embarrassingly parallel — every cell is an independent, deterministic
replay.  This package exploits that:

* :mod:`repro.fleet.spec` — :class:`RunSpec`, the pure value naming one
  cell, plus the grid enumerator,
* :mod:`repro.fleet.engine` — :class:`FleetEngine`, backend-driven
  dispatch with ordered merge and per-worker failure capture,
* :mod:`repro.fleet.backends` — pluggable execution backends behind a
  ``NAME[:key=value,...]`` registry: :class:`LocalBackend` (inline /
  ``multiprocessing.Pool``) and :class:`DistributedBackend`
  (work-pulling workers over a shared sqlite queue with lease/ack
  semantics, publishing rows to a shared content-addressed store),
* :mod:`repro.fleet.cache` — :class:`RecordStore` / :class:`ResultCache`,
  a content-addressed on-disk store so re-running a study only executes
  invalidated cells,
* :mod:`repro.fleet.progress` — :class:`ProgressReporter`, aggregated
  ``done/total`` + ETA reporting across all workers.

The serial sweep in :mod:`repro.harness.sweep` is now a thin layer over
this package; ``FleetEngine(jobs=1)`` is the serial path, and any other
worker count — or backend — produces bit-identical output.
"""

from repro.fleet.backends import (
    DistributedBackend,
    FleetBackend,
    LocalBackend,
    backend_names,
    create_backend,
    parse_backend_spec,
    register_backend,
)
from repro.fleet.cache import RecordStore, ResultCache, workload_fingerprint
from repro.fleet.engine import (
    FleetEngine,
    FleetError,
    FleetStats,
    WorkerFailure,
    execute_spec,
)
from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import RunSpec, enumerate_sweep_specs, freeze_tunables

__all__ = [
    "DistributedBackend",
    "FleetBackend",
    "FleetEngine",
    "FleetError",
    "FleetStats",
    "LocalBackend",
    "ProgressReporter",
    "RecordStore",
    "ResultCache",
    "RunSpec",
    "WorkerFailure",
    "backend_names",
    "create_backend",
    "enumerate_sweep_specs",
    "execute_spec",
    "freeze_tunables",
    "parse_backend_spec",
    "register_backend",
    "workload_fingerprint",
]

"""Pluggable fleet execution backends.

* :mod:`repro.fleet.backends.registry` — the name → backend registry and
  the ``NAME[:key=value,...]`` spec grammar behind ``--backend``,
* :mod:`repro.fleet.backends.local` — inline / ``multiprocessing.Pool``
  execution on this machine (the default, and the bit-identical
  reference path),
* :mod:`repro.fleet.backends.distributed` — work-pulling workers over a
  shared sqlite work queue with lease/ack semantics, publishing
  ``RunRecord`` rows to a shared content-addressed store; crash-safe
  and resumable.

Importing this package registers the built-ins (the governor-registry
idiom); :func:`create_backend` does so on demand.
"""

from repro.fleet.backends.distributed import DistributedBackend, SqliteWorkQueue
from repro.fleet.backends.local import LocalBackend
from repro.fleet.backends.registry import (
    FleetBackend,
    backend_names,
    create_backend,
    parse_backend_spec,
    register_backend,
)

__all__ = [
    "DistributedBackend",
    "FleetBackend",
    "LocalBackend",
    "SqliteWorkQueue",
    "backend_names",
    "create_backend",
    "parse_backend_spec",
    "register_backend",
]

"""The distributed backend: a shared work queue + shared record store.

Workers *pull* :class:`~repro.fleet.spec.RunSpec` batches from a shared
sqlite work queue and *publish* schema-versioned
:class:`~repro.results.RunRecord` rows to the shared content-addressed
record store (the same :class:`~repro.fleet.cache.ResultCache` format,
on a filesystem every worker can reach) — the work-pulling worker
topology, sized for sweeps that outgrow one machine's pool.

Lease/ack semantics make the queue crash-safe:

* leasing a cell marks it ``leased`` with an expiry ``lease`` seconds
  out and bumps its attempt counter; acking marks it ``done`` and
  attaches the result row (or the captured failure) plus telemetry.
  With ``batch=N`` a worker leases N cells in one transaction, executes
  them all, and acks them all in one transaction — one queue round-trip
  per N cells, which matters once the demand pass makes cells cheap
  enough that per-cell dispatch overhead shows,
* a worker that dies mid-batch never acks — its cells' leases expire
  and any live worker re-leases them (straggler re-dispatch).  A *slow*
  worker that outlives its lease causes at worst a duplicate execution,
  never a wrong result: replays are deterministic, acks idempotent, and
  the coordinator consumes each cell exactly once,
* if the whole worker fleet dies, the coordinator releases every lease
  and drains the remaining cells inline, so a run always terminates.

Durable truth lives in the record store, not the queue: rows are
published (content-addressed, atomically) *before* the ack.  A sweep
killed at any point — coordinator included — is therefore resumable:
the restarted engine's cache scan finds every published row and
re-dispatches only the unfinished cells, executing **zero** duplicate
replays.  The queue itself is coordination-only state, scoped per
``run_id``; stale rows from a killed run are ignored and swept on the
next enqueue.

The ``chaos_exit_after=N`` option is a test/CI knob: the first worker
hard-exits (``os._exit``) after acking N cells, simulating a mid-batch
worker death so lease expiry and re-dispatch stay continuously proven.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sqlite3
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import ReproError
from repro.fleet.backends.registry import (
    CellResult,
    FleetBackend,
    opt_float,
    opt_int,
    register_backend,
    reject_unknown_opts,
)
from repro.fleet.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import WorkloadArtifacts

#: Seconds between coordinator polls of the queue.
POLL_S = 0.02
#: Seconds a worker naps when every remaining cell is leased elsewhere.
WORKER_IDLE_S = 0.05

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    run_id        TEXT NOT NULL,
    idx           INTEGER NOT NULL,
    spec          TEXT NOT NULL,
    key           TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    lease_expires REAL,
    worker        TEXT,
    row           TEXT,
    failure       TEXT,
    telemetry     TEXT,
    PRIMARY KEY (run_id, idx)
);
CREATE INDEX IF NOT EXISTS cells_state ON cells (run_id, state);
"""


class SqliteWorkQueue:
    """Leased work-cell queue shared by coordinator and workers.

    Every mutation is one short ``BEGIN IMMEDIATE`` transaction, so any
    number of processes can lease and ack concurrently; sqlite's file
    lock is the arbiter.  ``clock`` is injectable so lease expiry is
    testable without sleeping.
    """

    def __init__(self, path: str | Path, clock=time.time) -> None:
        self.path = Path(path)
        self._clock = clock

    def _connect(self) -> sqlite3.Connection:
        # Autocommit connections: transactions are explicit BEGIN
        # IMMEDIATE blocks so every mutation holds the write lock for
        # exactly one short critical section.
        conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA busy_timeout=30000")
        # The queue is coordination-only state: durable truth lives in
        # the record store, and rows are published there *before* the
        # ack.  synchronous=NORMAL (safe with WAL — a power loss can
        # roll back the last transactions but never corrupt the file)
        # therefore risks at worst a duplicate execution, never a lost
        # result, and drops an fsync from every lease/ack.
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _mutate(self, operate) -> object:
        """Run ``operate(conn)`` inside one immediate transaction."""
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            try:
                result = operate(conn)
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            return result
        finally:
            conn.close()

    def _read(self, operate) -> object:
        conn = self._connect()
        try:
            return operate(conn)
        finally:
            conn.close()

    def ensure(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)

        def operate(conn):
            # WAL journal mode is persistent (recorded in the database
            # file), so setting it once here covers every later worker
            # connection: readers stop blocking the writer, and short
            # lease/ack transactions append to the log instead of
            # rewriting pages under a rollback journal.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)

        self._read(operate)

    def enqueue(
        self, run_id: str, cells: list[tuple[int, dict, str]]
    ) -> None:
        """Add ``(index, spec wire dict, store key)`` cells for ``run_id``.

        Rows from other (dead) runs are swept first: the queue carries no
        durable state — completed work lives in the record store.
        """

        def operate(conn):
            conn.execute("DELETE FROM cells WHERE run_id != ?", (run_id,))
            conn.executemany(
                "INSERT OR REPLACE INTO cells (run_id, idx, spec, key) "
                "VALUES (?, ?, ?, ?)",
                [
                    (run_id, index, json.dumps(wire, sort_keys=True), key)
                    for index, wire, key in cells
                ],
            )

        self._mutate(operate)

    def lease(
        self, run_id: str, worker: str, batch: int, lease_s: float
    ) -> list[tuple[int, dict, str]]:
        """Claim up to ``batch`` runnable cells: pending, or expired leases.

        Re-leasing an expired cell is the straggler re-dispatch path; the
        attempt counter records every dispatch so ``redispatched()`` can
        report how many cells needed more than one.
        """
        now = self._clock()

        def operate(conn):
            rows = conn.execute(
                "SELECT idx, spec, key FROM cells "
                "WHERE run_id = ? AND state != 'done' "
                "AND (state = 'pending' OR lease_expires < ?) "
                "ORDER BY idx LIMIT ?",
                (run_id, now, batch),
            ).fetchall()
            if rows:
                conn.executemany(
                    "UPDATE cells SET state = 'leased', "
                    "attempts = attempts + 1, lease_expires = ?, worker = ? "
                    "WHERE run_id = ? AND idx = ?",
                    [
                        (now + lease_s, worker, run_id, idx)
                        for idx, _, _ in rows
                    ],
                )
            return rows

        rows = self._mutate(operate)
        return [(idx, json.loads(spec), key) for idx, spec, key in rows]

    def ack(
        self,
        run_id: str,
        index: int,
        row: dict | None,
        failure: dict | None,
        telemetry: dict,
    ) -> None:
        """Mark one cell done with its result (idempotent: last ack wins)."""
        self.ack_many(run_id, [(index, row, failure, telemetry)])

    def ack_many(
        self,
        run_id: str,
        acks: list[tuple[int, dict | None, dict | None, dict]],
    ) -> None:
        """Mark a batch of ``(index, row, failure, telemetry)`` cells done.

        One ``BEGIN IMMEDIATE`` covers the whole batch, so a ``batch=N``
        worker pays one queue round-trip (and one WAL sync point) per N
        cells instead of per cell.  Idempotent like :meth:`ack`; an
        empty batch is a no-op.
        """
        if not acks:
            return
        payload = [
            (
                None if row is None else json.dumps(row, sort_keys=True),
                None
                if failure is None
                else json.dumps(failure, sort_keys=True),
                json.dumps(telemetry, sort_keys=True),
                run_id,
                index,
            )
            for index, row, failure, telemetry in acks
        ]
        self._mutate(
            lambda conn: conn.executemany(
                "UPDATE cells SET state = 'done', lease_expires = NULL, "
                "row = ?, failure = ?, telemetry = ? "
                "WHERE run_id = ? AND idx = ?",
                payload,
            )
        )

    def done_cells(
        self, run_id: str, skip: set[int]
    ) -> list[tuple[int, dict | None, dict | None, dict]]:
        """Completed cells not yet consumed, in index order."""
        rows = self._read(
            lambda conn: conn.execute(
                "SELECT idx, row, failure, telemetry FROM cells "
                "WHERE run_id = ? AND state = 'done' ORDER BY idx",
                (run_id,),
            ).fetchall()
        )
        return [
            (
                idx,
                None if row is None else json.loads(row),
                None if failure is None else json.loads(failure),
                json.loads(telemetry) if telemetry else {},
            )
            for idx, row, failure, telemetry in rows
            if idx not in skip
        ]

    def counts(self, run_id: str) -> dict[str, int]:
        return dict(
            self._read(
                lambda conn: conn.execute(
                    "SELECT state, COUNT(*) FROM cells WHERE run_id = ? "
                    "GROUP BY state",
                    (run_id,),
                ).fetchall()
            )
        )

    def release_leases(self, run_id: str) -> int:
        """Return every leased cell to pending (the fleet-died path)."""
        return self._mutate(
            lambda conn: conn.execute(
                "UPDATE cells SET state = 'pending', lease_expires = NULL "
                "WHERE run_id = ? AND state = 'leased'",
                (run_id,),
            ).rowcount
        )

    def redispatched(self, run_id: str) -> int:
        """Cells that needed more than one dispatch (expired leases)."""
        return self._read(
            lambda conn: conn.execute(
                "SELECT COUNT(*) FROM cells WHERE run_id = ? "
                "AND attempts > 1",
                (run_id,),
            ).fetchone()[0]
        )


def _failure_to_wire(failure) -> dict:
    return {
        "spec": failure.spec.to_wire(),
        "exc_type": failure.exc_type,
        "message": failure.message,
        "traceback_text": failure.traceback_text,
    }


def _failure_from_wire(wire: dict):
    from repro.fleet.engine import WorkerFailure

    return WorkerFailure(
        spec=RunSpec.from_wire(wire["spec"]),
        exc_type=wire["exc_type"],
        message=wire["message"],
        traceback_text=wire["traceback_text"],
    )


def _work_cells(
    queue: SqliteWorkQueue,
    run_id: str,
    store,
    worker: str,
    lease_s: float,
    batch: int,
    wait_for_stragglers: bool,
    chaos_exit_after: int | None = None,
) -> None:
    """The pull loop: lease a batch, execute it, publish, ack — until
    the queue drains.

    Assumes :func:`~repro.fleet.backends.local.init_worker` already
    installed this process's artifacts (and demand program).  Every row
    is published to the shared store *before* its ack, so a cell the
    queue says is done is always resumable from the store.  The batch
    acks in one transaction; a worker that dies mid-batch leaves its
    executed-but-unacked cells leased, and their re-execution after
    lease expiry is harmless — replays are deterministic and the store
    publish is an idempotent identical-bytes write.
    """
    from repro.fleet.backends.local import run_spec_cell
    from repro.results import RunRecord

    acked = 0
    while True:
        cells = queue.lease(run_id, worker, batch, lease_s)
        if not cells:
            counts = queue.counts(run_id)
            if counts.get("pending", 0) == 0 and (
                not wait_for_stragglers or counts.get("leased", 0) == 0
            ):
                return
            time.sleep(WORKER_IDLE_S)
            continue
        acks: list[tuple[int, dict | None, dict | None, dict]] = []
        chaos_now = False
        for index, wire, key in cells:
            spec = RunSpec.from_wire(wire)
            _, row, failure, telemetry = run_spec_cell((index, spec))
            if row is not None and store is not None:
                store.store(key, RunRecord.from_json_dict(row))
            acks.append(
                (
                    index,
                    row,
                    None if failure is None else _failure_to_wire(failure),
                    telemetry,
                )
            )
            if (
                chaos_exit_after is not None
                and acked + len(acks) >= chaos_exit_after
            ):
                # Test/CI knob: flush the acks so far, then die mid-batch
                # without cleanup.  The batch's remaining leased, un-acked
                # cells expire and re-dispatch to live workers.
                chaos_now = True
                break
        queue.ack_many(run_id, acks)
        acked += len(acks)
        if chaos_now:
            os._exit(17)


def _distributed_worker(
    queue_path: str,
    run_id: str,
    store,
    artifacts,
    demand_trace,
    worker: str,
    lease_s: float,
    batch: int,
    chaos_exit_after: int | None,
) -> None:
    """Entry point of one spawned worker process."""
    from repro.fleet.backends.local import init_worker

    init_worker(artifacts, demand_trace)
    _work_cells(
        queue=SqliteWorkQueue(queue_path),
        run_id=run_id,
        store=store,
        worker=worker,
        lease_s=lease_s,
        batch=batch,
        wait_for_stragglers=True,
        chaos_exit_after=chaos_exit_after,
    )


class DistributedBackend(FleetBackend):
    """Work-pulling workers over a shared sqlite queue + record store."""

    name = "distributed"
    stores_results = True
    requires_store = True

    #: Subdirectory names under the shared directory.
    QUEUE_FILENAME = "queue.sqlite3"
    STORE_SUBDIR = "store"

    def __init__(
        self,
        root: str | Path,
        workers: int = 2,
        lease_s: float = 30.0,
        batch: int = 1,
        chaos_exit_after: int | None = None,
    ) -> None:
        if workers < 1:
            raise ReproError(
                f"distributed backend needs at least one worker, got {workers}"
            )
        if batch < 1:
            raise ReproError(
                f"distributed backend needs a batch of at least one cell, "
                f"got {batch}"
            )
        self.root = Path(root).expanduser()
        self.queue_path = self.root / self.QUEUE_FILENAME
        self.workers = workers
        self.lease_s = lease_s
        self.batch = batch
        self.chaos_exit_after = chaos_exit_after
        #: Cells that needed more than one dispatch in the last execute().
        self.last_redispatched = 0
        #: Worker processes that died (without a clean exit) last execute().
        self.last_workers_lost = 0

    @classmethod
    def from_opts(cls, opts: dict[str, str], jobs: int = 1) -> "DistributedBackend":
        reject_unknown_opts(
            cls.name,
            opts,
            ("dir", "workers", "lease", "batch", "chaos_exit_after"),
        )
        root = opts.get("dir")
        if not root:
            raise ReproError(
                "distributed backend needs a shared directory: "
                "--backend distributed:dir=PATH[,workers=N,lease=S,batch=B]"
            )
        chaos = opts.get("chaos_exit_after")
        return cls(
            root=root,
            workers=opt_int(opts, "workers", jobs),
            lease_s=opt_float(opts, "lease", 30.0),
            batch=opt_int(opts, "batch", 1),
            chaos_exit_after=None if chaos is None else opt_int(
                opts, "chaos_exit_after", 1
            ),
        )

    def describe(self) -> str:
        return (
            f"{self.name}:dir={self.root},workers={self.workers},"
            f"lease={self.lease_s:g},batch={self.batch}"
        )

    def result_store(self):
        """The shared record store under this backend's directory.

        The CLI uses it as the engine's result cache, so the cache scan,
        the workers' publishes and the demand-trace store all share one
        content-addressed root — which is what makes a killed sweep
        resumable with zero duplicate replays.
        """
        from repro.fleet.cache import ResultCache

        return ResultCache(self.root / self.STORE_SUBDIR)

    def execute(
        self,
        artifacts: "WorkloadArtifacts",
        pending: list[tuple[int, RunSpec]],
        demand_trace=None,
        keys: dict[int, str] | None = None,
        store=None,
    ) -> Iterable[CellResult]:
        if not pending:
            return
        if keys is None or store is None:
            raise ReproError(
                "distributed backend needs the content-addressed store "
                "and per-cell keys; run with a result cache"
            )
        run_id = uuid.uuid4().hex
        self.last_redispatched = 0
        self.last_workers_lost = 0
        queue = SqliteWorkQueue(self.queue_path)
        queue.ensure()
        queue.enqueue(
            run_id,
            [(index, spec.to_wire(), keys[index]) for index, spec in pending],
        )
        workers = [
            multiprocessing.Process(
                target=_distributed_worker,
                args=(
                    str(self.queue_path),
                    run_id,
                    store,
                    artifacts,
                    demand_trace,
                    f"worker-{seq}",
                    self.lease_s,
                    self.batch,
                    self.chaos_exit_after if seq == 0 else None,
                ),
                daemon=True,
            )
            for seq in range(min(self.workers, len(pending)))
        ]
        for process in workers:
            process.start()
        consumed: set[int] = set()
        try:
            while len(consumed) < len(pending):
                for index, row, failure_wire, telemetry in queue.done_cells(
                    run_id, consumed
                ):
                    consumed.add(index)
                    failure = (
                        None
                        if failure_wire is None
                        else _failure_from_wire(failure_wire)
                    )
                    yield index, row, failure, telemetry
                if len(consumed) >= len(pending):
                    break
                if not any(process.is_alive() for process in workers):
                    # The whole fleet died (or drained and exited) with
                    # cells outstanding: reclaim their leases and drain
                    # inline so the run always terminates.
                    queue.release_leases(run_id)
                    self._drain_inline(queue, run_id, store, artifacts,
                                       demand_trace)
                    continue
                time.sleep(POLL_S)
        finally:
            for process in workers:
                process.join(timeout=self.lease_s + 5.0)
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.terminate()
                    process.join(timeout=5.0)
            self.last_workers_lost = sum(
                1 for process in workers if process.exitcode not in (0, None)
            )
            self.last_redispatched = queue.redispatched(run_id)

    def _drain_inline(
        self, queue: SqliteWorkQueue, run_id: str, store, artifacts,
        demand_trace,
    ) -> None:
        """Run the remaining cells in the coordinator process."""
        from repro.fleet.backends.local import init_worker

        init_worker(artifacts, demand_trace)
        try:
            _work_cells(
                queue=queue,
                run_id=run_id,
                store=store,
                worker="coordinator",
                lease_s=self.lease_s,
                batch=max(1, self.batch),
                wait_for_stragglers=False,
            )
        finally:
            init_worker(None)


register_backend(DistributedBackend.name, DistributedBackend.from_opts)

"""The local backend: inline execution and the multiprocessing pool.

This is the execution path :class:`~repro.fleet.engine.FleetEngine`
shipped with from day one, extracted behind the backend contract:

* ``jobs == 1`` (or a single pending cell) runs inline in the parent
  process — no pool overhead, and the reference the parallel paths must
  be bit-identical to,
* ``jobs > 1`` chunks cells across a :mod:`multiprocessing` pool whose
  workers receive the recorded artifacts (and, when the demand pass is
  on, the preprocessed :class:`~repro.demand.replayer.DemandProgram`)
  once at pool initialisation.

The worker-side functions (:func:`init_worker`, :func:`run_spec_cell`)
live here so other process-spanning backends — the distributed worker
loop — execute cells through exactly the same code as the pool path.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import ReproError
from repro.fleet.backends.registry import (
    CellResult,
    FleetBackend,
    opt_int,
    register_backend,
    reject_unknown_opts,
)
from repro.fleet.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import WorkloadArtifacts

# --- worker-process side ----------------------------------------------------------

_WORKER_ARTIFACTS = None  # WorkloadArtifacts | None
_WORKER_PROGRAM = None  # DemandProgram | None


def init_worker(artifacts, demand_trace=None) -> None:
    """Install the per-process replay state: artifacts and, when the
    demand pass is on, the trace preprocessed once into a
    :class:`~repro.demand.replayer.DemandProgram` shared by every cell
    this worker runs."""
    global _WORKER_ARTIFACTS, _WORKER_PROGRAM
    _WORKER_ARTIFACTS = artifacts
    if demand_trace is None:
        _WORKER_PROGRAM = None
    else:
        from repro.demand import DemandProgram

        _WORKER_PROGRAM = DemandProgram(demand_trace)


def run_spec_cell(item: tuple[int, RunSpec]) -> CellResult:
    """Execute one cell; the result crosses the process boundary as the
    schema-versioned :class:`~repro.results.RunRecord` JSON row, not a
    pickled object.

    The fourth element is the worker's telemetry for this cell — its pid,
    wall and CPU seconds spent, and which evaluation pass produced the
    record (demand cells also carry a ``compiled`` flag naming the walk:
    the flat-array executor or the ``REPRO_DEMAND_COMPILE=0``
    interpreter) — measured here so the numbers cover exactly the
    replay, not pool scheduling or IPC.  A demand cell that raises
    :class:`~repro.demand.replayer.DemandFallback` re-runs as a full
    replay in place, tagged with the fallback reason; the wall clock then
    covers both attempts, which is the honest cost of that cell.
    """
    from repro.fleet.engine import WorkerFailure, execute_spec

    index, spec = item
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    mode = "full"
    fallback_reason = None
    try:
        if _WORKER_PROGRAM is not None:
            from repro.demand import DemandFallback, demand_replay_run

            try:
                record = demand_replay_run(
                    _WORKER_ARTIFACTS,
                    _WORKER_PROGRAM,
                    spec.config,
                    rep=spec.rep,
                    master_seed=spec.master_seed,
                    **spec.tunables_dict(),
                )
                mode = "demand"
            except DemandFallback as fallback:
                fallback_reason = fallback.reason
                record = execute_spec(_WORKER_ARTIFACTS, spec)
        else:
            record = execute_spec(_WORKER_ARTIFACTS, spec)
        row, failure = record.to_json_dict(), None
    except Exception as exc:  # shipped home; the pool must not die
        row = None
        failure = WorkerFailure(
            spec=spec,
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
        )
    telemetry = {
        "pid": os.getpid(),
        "wall_s": time.perf_counter() - wall_start,
        "cpu_s": time.process_time() - cpu_start,
        "mode": mode,
    }
    if mode == "demand":
        from repro.demand import demand_compile_enabled

        telemetry["compiled"] = demand_compile_enabled()
    if fallback_reason is not None:
        telemetry["fallback_reason"] = fallback_reason
    return index, row, failure, telemetry


# --- parent side ------------------------------------------------------------------


class LocalBackend(FleetBackend):
    """Inline / ``multiprocessing.Pool`` execution on this machine."""

    name = "local"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ReproError(f"fleet needs at least one worker, got {jobs}")
        self.jobs = jobs

    @classmethod
    def from_opts(cls, opts: dict[str, str], jobs: int = 1) -> "LocalBackend":
        reject_unknown_opts(cls.name, opts, ("jobs",))
        return cls(jobs=opt_int(opts, "jobs", jobs))

    def describe(self) -> str:
        return f"{self.name}:jobs={self.jobs}"

    def execute(
        self,
        artifacts: "WorkloadArtifacts",
        pending: list[tuple[int, RunSpec]],
        demand_trace=None,
        keys: dict[int, str] | None = None,
        store=None,
    ) -> Iterable[CellResult]:
        if not pending:
            return
        jobs = min(self.jobs, len(pending))
        if jobs == 1:
            # Inline path: identical semantics, no pool overhead.  This is
            # also the reference the parallel path must be bit-identical to.
            init_worker(artifacts, demand_trace)
            try:
                for item in pending:
                    yield run_spec_cell(item)
            finally:
                # Drop the parent-process reference so the trace/database
                # can be collected once the run is over.
                init_worker(None)
            return
        chunksize = max(1, len(pending) // (jobs * 4))
        with multiprocessing.Pool(
            processes=jobs,
            initializer=init_worker,
            initargs=(artifacts, demand_trace),
        ) as pool:
            yield from pool.imap_unordered(
                run_spec_cell, pending, chunksize=chunksize
            )


register_backend(LocalBackend.name, LocalBackend.from_opts)

"""The fleet backend registry: name → execution backend.

A *backend* is the piece of the fleet engine that actually runs pending
cells: the engine decides *what* to run (cache scan, demand-trace
resolution, ordered merge, accounting) and the backend decides *where*
and *how* (inline, a local process pool, a shared work queue spanning
processes or machines).  Backends are addressable by spec strings on the
CLI — ``--backend NAME[:key=value,...]`` — through the same
``name:options`` grammar governor configs use::

    local                      # inline / multiprocessing.Pool (default)
    local:jobs=8               # override the worker count
    distributed:dir=/shared,workers=4,lease=30,batch=2

Every backend honours the engine's contract: it receives the pending
``(index, spec)`` cells and yields ``(index, row, failure, telemetry)``
in completion order; the engine's ordered merge then makes output
bit-identical to the serial path regardless of backend, worker count or
completion order.

Registration follows the governor-registry idiom: importing
:mod:`repro.fleet.backends` registers the built-ins; callers go through
:func:`create_backend` which loads them on demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.engine import WorkerFailure
    from repro.fleet.spec import RunSpec
    from repro.harness.experiment import WorkloadArtifacts

#: One executed cell crossing the backend boundary: the spec's index,
#: the RunRecord JSON row (or None), the captured failure (or None) and
#: the worker's telemetry dict.
CellResult = tuple[int, "dict | None", "WorkerFailure | None", dict]


class FleetBackend:
    """Contract every execution backend implements.

    ``stores_results`` — True when :meth:`execute` publishes executed
    rows to the shared record store itself (workers write as they ack);
    the engine then skips its own per-cell store call but still counts
    the row as stored.

    ``requires_store`` — True when the backend cannot run without a
    content-addressed record store (the distributed backend's workers
    publish rows there; the store is also what makes a killed run
    resumable).  The engine rejects such a backend when caching is off.
    """

    name = "?"
    stores_results = False
    requires_store = False

    def execute(
        self,
        artifacts: "WorkloadArtifacts",
        pending: "list[tuple[int, RunSpec]]",
        demand_trace=None,
        keys: dict[int, str] | None = None,
        store=None,
    ) -> Iterable[CellResult]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


BackendFactory = Callable[[dict, int], FleetBackend]

_REGISTRY: dict[str, BackendFactory] = {}
_BUILTINS_LOADED = False


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory receives the parsed option dict (string values, the
    backend's job to coerce and validate) and the CLI ``--jobs`` value
    as its default worker count.
    """
    _REGISTRY[name] = factory


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.fleet.backends.distributed  # noqa: F401  — self-registers
    import repro.fleet.backends.local  # noqa: F401  — self-registers

    _BUILTINS_LOADED = True


def backend_names() -> list[str]:
    _load_builtins()
    return sorted(_REGISTRY)


def parse_backend_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``NAME[:key=value,...]`` into ``(name, options)``.

    Mirrors the governor config grammar; every malformed spelling raises
    a one-line :class:`ReproError` before any recording or replay starts.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ReproError(f"empty backend spec {spec!r}")
    spec = spec.strip()
    name, sep, opt_text = spec.partition(":")
    name = name.strip()
    if not name:
        raise ReproError(f"backend spec {spec!r} has no backend name")
    if sep and not opt_text.strip():
        raise ReproError(f"backend spec {spec!r} has a ':' but no options")
    opts: dict[str, str] = {}
    if opt_text:
        for pair in opt_text.split(","):
            key, eq, value = pair.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise ReproError(
                    f"backend spec {spec!r}: malformed option {pair!r} "
                    "(expected key=value)"
                )
            if key in opts:
                raise ReproError(
                    f"backend spec {spec!r}: duplicate option {key!r}"
                )
            opts[key] = value
    return name, opts


def create_backend(spec: str | None = None, jobs: int = 1) -> FleetBackend:
    """Build the backend a spec string names (default: ``local``).

    ``jobs`` seeds the backend's default worker count (the CLI's
    ``--jobs``); a backend option like ``workers=`` overrides it.
    """
    _load_builtins()
    name, opts = parse_backend_spec(spec if spec is not None else "local")
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ReproError(
            f"unknown fleet backend {name!r} "
            f"(known: {', '.join(backend_names())})"
        )
    return factory(opts, jobs)


def opt_int(opts: dict[str, str], key: str, default: int, minimum: int = 1) -> int:
    """Coerce an integer backend option with a one-line error."""
    text = opts.get(key)
    if text is None:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ReproError(
            f"backend option {key}={text!r} needs an integer value"
        ) from None
    if value < minimum:
        raise ReproError(f"backend option {key}={value} must be >= {minimum}")
    return value


def opt_float(
    opts: dict[str, str], key: str, default: float, minimum: float = 0.0
) -> float:
    """Coerce a float backend option with a one-line error."""
    text = opts.get(key)
    if text is None:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ReproError(
            f"backend option {key}={text!r} needs a numeric value"
        ) from None
    if value < minimum:
        raise ReproError(f"backend option {key}={value} must be >= {minimum}")
    return value


def reject_unknown_opts(name: str, opts: dict[str, str], known: tuple[str, ...]) -> None:
    """One-line error for misspelled backend options."""
    unknown = [key for key in opts if key not in known]
    if unknown:
        raise ReproError(
            f"backend {name!r} does not take option(s) "
            f"{', '.join(sorted(unknown))} (known: {', '.join(known)})"
        )

"""Content-addressed on-disk cache of run records.

A cache entry is keyed by a SHA-256 over (cache format version, RunRecord
schema version, code fingerprint, workload fingerprint, spec identity).
The fingerprint hashes the recorded artifacts themselves — trace,
annotation database, duration, recording seed — so editing a dataset
plan, changing the recorder, or re-recording with a different master seed
all invalidate exactly the affected cells and nothing else.  Entries are
immutable once written: a warm re-run of a study loads every completed
cell and executes only invalidated ones.

Values are stored as canonical :class:`~repro.results.RunRecord` JSON
rows under ``<root>/<aa>/<key>.json`` (two-level fan-out keeps
directories small) — the same schema-versioned wire format fleet workers
ship over IPC, not pickles, so a cache entry is inspectable with any JSON
tool and can never execute code on load.  Rows are written atomically via
a temp file and :func:`os.replace`, so a crashed or concurrent writer can
never leave a truncated entry a later reader would trust.  Unreadable
rows — including rows carrying an older ``schema_version`` — are treated
as misses and re-executed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.fleet.spec import RunSpec
from repro.results import RUN_RECORD_SCHEMA_VERSION, RunRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.harness.experiment import WorkloadArtifacts

CACHE_VERSION = 2  # v2: RunRecord JSON rows replaced RunResult pickles
_PICKLE_PROTOCOL = 4  # fixed so fingerprints are stable across interpreters

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Content hash of the simulator's own source tree.

    Folded into every cache key so that editing any ``repro`` module —
    a governor, the power model, the matcher — invalidates previously
    cached results instead of silently serving output of old code.
    Computed once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def workload_fingerprint(artifacts: "WorkloadArtifacts") -> str:
    """Content hash of a recorded workload's replay-relevant state."""
    blob = pickle.dumps(
        (
            CACHE_VERSION,
            artifacts.spec.name,
            artifacts.duration_us,
            artifacts.recording_master_seed,
            artifacts.trace,
            artifacts.database,
        ),
        protocol=_PICKLE_PROTOCOL,
    )
    return hashlib.sha256(blob).hexdigest()


class RecordStore:
    """Contract of a content-addressed :class:`RunRecord` row store.

    The key derivation (:meth:`key_for`) is storage-independent — it
    folds the cache format, the record schema, the code and workload
    fingerprints and the spec identity — so any store implementation
    (filesystem, a future network store) addresses the identical cells.
    Implementations supply :meth:`load` / :meth:`store` /
    :meth:`contains`; both must tolerate concurrent writers racing the
    same key (rows are immutable values: last write wins with identical
    bytes) and treat truncated, corrupt or schema-stale rows as misses,
    never as errors.
    """

    hits: int
    misses: int

    def key_for(self, spec: RunSpec, fingerprint: str) -> str:
        payload = (
            f"v{CACHE_VERSION}|rr{RUN_RECORD_SCHEMA_VERSION}|"
            f"{code_fingerprint()}|{fingerprint}|{spec.cache_token()}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def load(self, key: str) -> "RunRecord | None":
        raise NotImplementedError

    def store(self, key: str, record: "RunRecord") -> None:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError


class ResultCache(RecordStore):
    """Filesystem implementation: rows under ``<root>/<aa>/<key>.json``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> "RunRecord | None":
        """The cached record for ``key``, or None (counting a miss)."""
        path = self.path_for(key)
        try:
            record = RunRecord.loads(path.read_text(encoding="utf-8"))
        except Exception:
            # Missing, truncated, not JSON, or a row written under a
            # different RunRecord schema version: a miss either way — the
            # cell re-executes.
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: "RunRecord") -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(record.dumps())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

"""The fleet executor: parallel, cache-aware dispatch of run specs.

One :class:`FleetEngine` turns a list of :class:`RunSpec` into the same
ordered list of :class:`~repro.results.RunRecord` the serial loop
produced, but

* **backend-driven** — *what* to run (cache scan, demand-trace
  resolution, accounting, ordered merge) is decided here; *where* and
  *how* cells execute is a pluggable
  :class:`~repro.fleet.backends.registry.FleetBackend`: the default
  :class:`~repro.fleet.backends.local.LocalBackend` runs inline or on a
  :mod:`multiprocessing` pool, the
  :class:`~repro.fleet.backends.distributed.DistributedBackend` has
  workers pull batches from a shared sqlite work queue with lease/ack
  semantics and publish rows to a shared content-addressed store,
* **deterministic** — every replay seeds its RNG streams from the spec
  alone, and results are merged back in spec order, so output is
  bit-identical to the serial path regardless of backend, worker count
  or completion order,
* **typed IPC** — a worker ships its result home as the schema-versioned
  :class:`RunRecord` JSON row (the same wire format the cache stores),
  never as a pickled object graph, so the inline path, the pool path,
  the shared work queue and the cache all carry the identical compact
  shape,
* **cache-aware** — with a :class:`~repro.fleet.cache.ResultCache`, cells
  whose content address (spec + workload fingerprint) is already stored
  are served without executing, and fresh results are stored on the way
  out.  A backend that publishes rows itself (the distributed workers
  write to the shared store before acking) makes a killed run resumable:
  the restarted engine's cache scan finds every published row and
  re-executes nothing twice,
* **failure-capturing** — an exception inside a worker is caught there
  and shipped back as a :class:`WorkerFailure` (with its traceback text);
  the remaining cells still run, then the engine raises a single
  :class:`FleetError` describing every failed cell,
* **demand-accelerated** — unless ``REPRO_DEMAND=0``, the engine captures
  the workload's demand trace once (or loads it from the cache-adjacent
  :class:`~repro.demand.store.DemandTraceStore`), ships it to every
  worker, and evaluates each cell with the kernel-only
  :func:`~repro.demand.replayer.demand_replay_run`.  A cell whose replay
  diverges from the trace's contract raises
  :class:`~repro.demand.replayer.DemandFallback` and is transparently
  re-run as a full replay; :class:`FleetStats` counts both populations
  and every fallback reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median
from typing import TYPE_CHECKING, Callable

from repro.core.errors import ReproError
from repro.fleet.cache import ResultCache, workload_fingerprint
from repro.fleet.spec import RunSpec
from repro.results import RunRecord

if TYPE_CHECKING:  # pragma: no cover - harness imports fleet; break the cycle
    from repro.fleet.backends.registry import FleetBackend
    from repro.harness.experiment import WorkloadArtifacts

ProgressHook = Callable[[RunSpec, bool], None]


@dataclass(frozen=True, slots=True)
class WorkerFailure:
    """One spec's failure, captured inside the worker that ran it."""

    spec: RunSpec
    exc_type: str
    message: str
    traceback_text: str

    def describe(self) -> str:
        return f"{self.spec.label()}: {self.exc_type}: {self.message}"


class FleetError(ReproError):
    """Raised after a fleet run in which one or more specs failed."""

    def __init__(self, failures: list[WorkerFailure]) -> None:
        self.failures = failures
        lines = [f"{len(failures)} fleet run(s) failed:"]
        lines.extend(f"  - {failure.describe()}" for failure in failures)
        lines.append("First worker traceback:")
        lines.append(failures[0].traceback_text)
        super().__init__("\n".join(lines))


@dataclass(slots=True)
class FleetStats:
    """What one :meth:`FleetEngine.run` actually did.

    ``run_telemetry`` holds one worker-side measurement per successfully
    *executed* cell — ``{"pid", "wall_s", "cpu_s", "mode"}`` plus a
    ``fallback_reason`` tag when the demand pass bailed out — in
    completion order.  Cached cells execute nothing and failed cells are
    kept apart in ``failure_telemetry``, so the worker and straggler
    summaries always agree with ``executed``
    (``straggler_summary()["runs"] == executed``).

    The demand fields describe the trace-once/replay-many split:
    ``demand_cells``/``full_cells`` partition the successfully executed
    cells by evaluation pass (``compiled_cells`` counts the demand cells
    that ran the compiled flat-array walk rather than the
    ``REPRO_DEMAND_COMPILE=0`` interpreter), ``fallback_cells`` counts
    demand cells
    that had to re-run as full replays (every one is also a
    ``full_cells`` member), and ``demand_trace_source`` records where
    the trace came from (``"cache"``, ``"captured"``, or None when the
    run used full replays throughout).  ``fallback_reasons`` counts
    every fallback — including a cell whose full-replay rerun then
    failed — so reason totals may exceed ``fallback_cells``.

    ``backend`` names the execution backend and ``redispatched`` counts
    cells the distributed queue had to dispatch more than once (expired
    leases: a worker died or straggled mid-batch).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    stored: int = 0
    failures: int = 0
    run_telemetry: list[dict] = field(default_factory=list)
    failure_telemetry: list[dict] = field(default_factory=list)
    demand_cells: int = 0
    compiled_cells: int = 0
    full_cells: int = 0
    fallback_cells: int = 0
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    demand_trace_source: str | None = None
    demand_capture_s: float | None = None
    demand_capture_error: str | None = None
    backend: str = "local"
    redispatched: int = 0

    def summary(self) -> str:
        return (
            f"{self.total} runs: {self.cache_hits} cached, "
            f"{self.executed} executed"
        )

    def worker_summary(self) -> dict[int, dict]:
        """Per-worker aggregates: runs, total wall and CPU seconds."""
        workers: dict[int, dict] = {}
        for entry in self.run_telemetry:
            worker = workers.setdefault(
                entry["pid"], {"runs": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            worker["runs"] += 1
            worker["wall_s"] += entry["wall_s"]
            worker["cpu_s"] += entry["cpu_s"]
        return workers

    def straggler_summary(self) -> dict | None:
        """Spread of per-run wall times — the straggler signal.

        None when nothing executed (fully cached or empty grids).
        Failed cells are excluded: ``runs`` always equals ``executed``.
        """
        walls = [entry["wall_s"] for entry in self.run_telemetry]
        if not walls:
            return None
        return {
            "runs": len(walls),
            "max_wall_s": max(walls),
            "median_wall_s": median(walls),
            "total_wall_s": sum(walls),
        }


def execute_spec(artifacts: "WorkloadArtifacts", spec: RunSpec) -> RunRecord:
    """Run one spec to completion on a fresh simulated device."""
    from repro.harness.experiment import replay_run

    return replay_run(
        artifacts,
        spec.config,
        rep=spec.rep,
        master_seed=spec.master_seed,
        **spec.tunables_dict(),
    )


class FleetEngine:
    """Dispatch specs through a backend with optional result cache.

    ``backend`` is any :class:`~repro.fleet.backends.registry.FleetBackend`;
    by default a :class:`~repro.fleet.backends.local.LocalBackend` over
    ``jobs`` worker processes (``jobs == 1`` is the inline serial path).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: ProgressHook | None = None,
        backend: "FleetBackend | None" = None,
    ) -> None:
        if jobs < 1:
            raise ReproError(f"fleet needs at least one worker, got {jobs}")
        if backend is None:
            from repro.fleet.backends.local import LocalBackend

            backend = LocalBackend(jobs)
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.backend = backend
        self.last_stats = FleetStats()
        self._fingerprinted: tuple[WorkloadArtifacts, str] | None = None

    def run(
        self, artifacts: WorkloadArtifacts, specs: list[RunSpec]
    ) -> list[RunRecord]:
        """Execute ``specs`` and return records in spec order."""
        stats = FleetStats(total=len(specs), backend=self.backend.name)
        self.last_stats = stats
        if self.backend.requires_store and self.cache is None:
            raise ReproError(
                f"backend {self.backend.name!r} publishes results to a "
                "shared store and needs a result cache (it is also what "
                "makes a killed run resumable); do not disable caching"
            )
        results: dict[int, RunRecord] = {}
        keys: dict[int, str] = {}
        pending: list[tuple[int, RunSpec]] = []

        if self.cache is not None:
            fingerprint = self._fingerprint(artifacts)
            for index, spec in enumerate(specs):
                key = self.cache.key_for(spec, fingerprint)
                keys[index] = key
                cached = self.cache.load(key)
                if cached is None:
                    pending.append((index, spec))
                else:
                    results[index] = cached
                    stats.cache_hits += 1
                    self._report(spec, cached=True)
        else:
            pending = list(enumerate(specs))

        demand_trace = self._demand_trace(artifacts, stats) if pending else None

        failures: list[WorkerFailure] = []
        for index, row, failure, telemetry in self.backend.execute(
            artifacts,
            pending,
            demand_trace=demand_trace,
            keys=keys if self.cache is not None else None,
            store=self.cache,
        ):
            spec = specs[index]
            # A demand cell that fell back is counted by reason whether
            # its full-replay rerun succeeded or failed; the remaining
            # accounting splits on the outcome.
            reason = telemetry.get("fallback_reason")
            if reason is not None:
                stats.fallback_reasons[reason] = (
                    stats.fallback_reasons.get(reason, 0) + 1
                )
            if failure is not None:
                # Failed cells are kept out of run_telemetry so the
                # worker/straggler summaries always agree with executed.
                failures.append(failure)
                stats.failures += 1
                stats.failure_telemetry.append(telemetry)
                continue
            stats.run_telemetry.append(telemetry)
            if telemetry.get("mode") == "demand":
                stats.demand_cells += 1
                if telemetry.get("compiled"):
                    stats.compiled_cells += 1
            else:
                stats.full_cells += 1
            if reason is not None:
                stats.fallback_cells += 1
            record = RunRecord.from_json_dict(row)
            results[index] = record
            stats.executed += 1
            if self.cache is not None:
                if not self.backend.stores_results:
                    self.cache.store(keys[index], record)
                stats.stored += 1
            self._report(spec, cached=False, telemetry=telemetry)

        stats.redispatched = getattr(self.backend, "last_redispatched", 0)
        self._report_summary(stats)
        if failures:
            failures.sort(key=lambda f: f.spec.label())
            raise FleetError(failures)
        return [results[index] for index in range(len(specs))]

    def _fingerprint(self, artifacts: WorkloadArtifacts) -> str:
        """The artifacts' content hash, computed once per artifacts object.

        Hashing re-pickles the full trace and annotation database;
        callers that funnel many batches through one engine (the
        design-space evaluator, multi-rung searches) must not pay that
        per batch.
        """
        if self._fingerprinted is None or self._fingerprinted[0] is not artifacts:
            self._fingerprinted = (artifacts, workload_fingerprint(artifacts))
        return self._fingerprinted[1]

    def _demand_trace(self, artifacts: WorkloadArtifacts, stats: FleetStats):
        """Resolve the workload's demand trace: cached, captured, or None.

        None (full replays throughout) when ``REPRO_DEMAND=0`` or when the
        one-time capture itself fails — a capture failure is recorded in
        the stats and degrades the run, never aborts it.  The capture
        wall time is reported to the progress hook so ETAs extrapolate
        per-cell cost only, not the one-off setup.
        """
        from repro.demand import (
            DemandTraceStore,
            capture_demand,
            demand_enabled,
        )

        if not demand_enabled():
            return None
        store = DemandTraceStore.for_cache(self.cache)
        trace = store.load(artifacts) if store is not None else None
        if trace is not None:
            stats.demand_trace_source = "cache"
            return trace
        capture_start = time.perf_counter()
        try:
            trace = capture_demand(artifacts)
        except ReproError as exc:
            stats.demand_capture_error = f"{type(exc).__name__}: {exc}"
            return None
        stats.demand_capture_s = time.perf_counter() - capture_start
        stats.demand_trace_source = "captured"
        self._note_capture(stats.demand_capture_s)
        if store is not None:
            store.store(artifacts, trace)
        return trace

    def _note_capture(self, seconds: float) -> None:
        """Tell an ETA-aware progress hook about one-time capture cost."""
        note = getattr(self.progress, "note_capture_seconds", None)
        if note is not None:
            note(seconds)

    def _report(
        self, spec: RunSpec, cached: bool, telemetry: dict | None = None
    ) -> None:
        """Feed one completion to the progress hook.

        A :class:`~repro.fleet.progress.ProgressReporter` (anything with
        an ``observe`` method) receives the worker telemetry too; a plain
        ``(spec, cached)`` callable — the explorer's hook, test doubles —
        keeps its original signature.
        """
        progress = self.progress
        if progress is None:
            return
        observe = getattr(progress, "observe", None)
        if observe is not None:
            observe(spec, cached=cached, telemetry=telemetry)
        else:
            progress(spec, cached)

    def _report_summary(self, stats: FleetStats) -> None:
        progress = self.progress
        if progress is None:
            return
        fleet_summary = getattr(progress, "fleet_summary", None)
        if fleet_summary is not None:
            fleet_summary(stats, self.cache)

"""Aggregated progress, ETA and machine-readable telemetry for fleet runs.

The old CLI callback printed one unbuffered line per run with no sense of
scale; on an 85-run sweep the user could not tell 5% from 95% done.  A
:class:`ProgressReporter` is bound to a spec list before the fleet starts
and then observes completions (from any worker, in any order), printing
``config c/C, rep r/R`` positions, an aggregate ``done/total`` count, an
ETA extrapolated from completed runs, and a ``[cached]`` marker for cells
served from the result cache.  Every line is flushed so progress is
visible through pipes and log files.

Fleet telemetry (``--progress-jsonl PATH``)
-------------------------------------------

Alongside the human lines the reporter can stream JSON-lines events to a
second file: one ``grid_bound`` event when the spec list is learned, a
``run_completed`` event per observation (with the worker's pid, wall and
CPU seconds when the run executed), rate-limited ``heartbeat`` events
with per-worker aggregates, and one final ``fleet_summary`` with cache
hit/miss counts, straggler statistics, and the demand-pass accounting
(kernel-only vs full-replay cell counts, how many demand cells ran the
compiled flat-array walk, fallback reasons, and where the demand trace
came from).  Events carry a monotonically
increasing ``seq`` so a consumer can detect truncation; everything is
plain JSON, one object per line, append-only.

All human output goes to ``stream`` (stderr by default) and all telemetry
to ``jsonl_stream`` — never stdout, which belongs to study results and is
pinned byte-identical by the integration tests.  ``clock`` is injectable
so the ETA and heartbeat logic is testable without sleeping.
"""

from __future__ import annotations

import json
import sys
import time
from typing import TextIO

from repro.fleet.spec import RunSpec

#: Seconds between heartbeat events on the JSONL stream.
DEFAULT_HEARTBEAT_S = 30.0


class ProgressReporter:
    """Streamed ``done/total`` + ETA lines over an enumerated spec list."""

    def __init__(
        self,
        label: str,
        stream: TextIO | None = None,
        jsonl_stream: TextIO | None = None,
        human: bool = True,
        clock=time.monotonic,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        self.label = label
        self._stream = stream
        self._jsonl = jsonl_stream
        self._human = human
        self._clock = clock
        self._heartbeat_s = heartbeat_s
        self._config_index: dict[str, int] = {}
        self._reps = 0
        self._total = 0
        self._done = 0
        self._cached = 0
        self._started_at: float | None = None
        self._seq = 0
        self._last_heartbeat: float | None = None
        self._capture_s = 0.0
        # pid -> {"runs": int, "wall_s": float, "cpu_s": float}
        self._workers: dict[int, dict] = {}

    def bind(self, specs: list[RunSpec]) -> "ProgressReporter":
        """Learn the grid shape; called by the sweep before dispatch.

        Rebinding (a study's next workload) resets every per-grid
        accumulator — counts, worker aggregates, heartbeat pacing, the
        demand-capture allowance — so the new grid's heartbeats and
        ``fleet_summary`` never carry the previous grid's runs.  Only
        ``seq`` survives: the JSONL stream is one ordered sequence.
        """
        self._config_index = {}
        self._reps = 0
        for spec in specs:
            self._config_index.setdefault(spec.config, len(self._config_index))
            self._reps = max(self._reps, spec.rep + 1)
        self._total = len(specs)
        self._done = 0
        self._cached = 0
        self._workers = {}
        self._last_heartbeat = None
        self._capture_s = 0.0
        self._started_at = self._clock()
        self._emit_jsonl(
            {
                "event": "grid_bound",
                "label": self.label,
                "total": self._total,
                "configs": len(self._config_index),
                "reps": self._reps,
            }
        )
        return self

    @property
    def done(self) -> int:
        return self._done

    @property
    def cached(self) -> int:
        return self._cached

    def __call__(self, spec: RunSpec, cached: bool = False) -> None:
        """Back-compat callable form of :meth:`observe` (no telemetry)."""
        self.observe(spec, cached=cached)

    def observe(
        self,
        spec: RunSpec,
        cached: bool = False,
        telemetry: dict | None = None,
    ) -> None:
        """Observe one completed run (the engine's progress hook).

        An unbound reporter (used directly as an engine hook without a
        spec list) grows its totals as observations arrive instead of
        claiming a grid shape it doesn't know.  ``telemetry`` is the
        worker-side measurement of an executed run (``pid``, ``wall_s``,
        ``cpu_s``); cached cells have none.
        """
        if self._started_at is None:
            self._started_at = self._clock()
        self._done += 1
        if cached:
            self._cached += 1
        self._reps = max(self._reps, spec.rep + 1)
        self._total = max(self._total, self._done)
        config_pos = (
            self._config_index.setdefault(spec.config, len(self._config_index))
            + 1
        )
        if telemetry is not None:
            worker = self._workers.setdefault(
                telemetry["pid"], {"runs": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            worker["runs"] += 1
            worker["wall_s"] += telemetry["wall_s"]
            worker["cpu_s"] += telemetry["cpu_s"]
        if self._human:
            eta = self.eta_seconds()
            line = (
                f"  {self.label}: {spec.config} "
                f"(config {config_pos}/{max(1, len(self._config_index))}, "
                f"rep {spec.rep + 1}/{max(1, self._reps)}) — "
                f"{self._done}/{self._total} runs"
                + (f", ETA {eta:.0f}s" if eta is not None else "")
            )
            if cached:
                line += " [cached]"
            stream = self._stream if self._stream is not None else sys.stderr
            print(line, file=stream, flush=True)
        event = {
            "event": "run_completed",
            "label": self.label,
            "spec": spec.label(),
            "config": spec.config,
            "rep": spec.rep,
            "cached": cached,
            "done": self._done,
            "total": self._total,
        }
        if telemetry is not None:
            event["worker_pid"] = telemetry["pid"]
            event["wall_s"] = telemetry["wall_s"]
            event["cpu_s"] = telemetry["cpu_s"]
            if "mode" in telemetry:
                event["mode"] = telemetry["mode"]
            if "compiled" in telemetry:
                event["compiled"] = telemetry["compiled"]
            if "fallback_reason" in telemetry:
                event["fallback_reason"] = telemetry["fallback_reason"]
        self._emit_jsonl(event)
        self._maybe_heartbeat()

    def fleet_summary(self, stats, cache=None) -> None:
        """Emit the end-of-run telemetry summary (JSONL only).

        ``stats`` is the engine's :class:`~repro.fleet.engine.FleetStats`;
        ``cache``, when given, contributes its session hit/miss counters.
        """
        if self._jsonl is None:
            return
        event = {
            "event": "fleet_summary",
            "label": self.label,
            "total": stats.total,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
            "stored": stats.stored,
            "failures": stats.failures,
            "backend": getattr(stats, "backend", "local"),
            "redispatched": getattr(stats, "redispatched", 0),
            "workers": [
                {"pid": pid, **data}
                for pid, data in sorted(self._workers.items())
            ],
            "stragglers": stats.straggler_summary(),
            "demand": {
                "demand_cells": getattr(stats, "demand_cells", 0),
                "compiled_cells": getattr(stats, "compiled_cells", 0),
                "full_cells": getattr(stats, "full_cells", 0),
                "fallback_cells": getattr(stats, "fallback_cells", 0),
                "fallback_reasons": getattr(stats, "fallback_reasons", {}),
                "trace_source": getattr(stats, "demand_trace_source", None),
                "capture_s": getattr(stats, "demand_capture_s", None),
                "capture_error": getattr(stats, "demand_capture_error", None),
            },
        }
        if self._started_at is not None:
            event["elapsed_s"] = self._clock() - self._started_at
        if cache is not None:
            event["cache"] = {"hits": cache.hits, "misses": cache.misses}
        self._emit_jsonl(event)

    def note_capture_seconds(self, seconds: float | None) -> None:
        """Record one-time setup wall time (the demand-trace capture).

        The capture happens after :meth:`bind` starts the clock but is
        paid once per grid, not per cell; folding it into the per-cell
        extrapolation would overestimate the ETA (badly so on small
        grids).  The engine reports it here so :meth:`eta_seconds` can
        exclude it.
        """
        if seconds:
            self._capture_s += seconds

    def eta_seconds(self) -> float | None:
        """Remaining-time estimate from executed runs, or None.

        One-time costs reported via :meth:`note_capture_seconds` are
        excluded: only per-cell time extrapolates to the remaining cells.
        """
        executed = self._done - self._cached
        remaining = self._total - self._done
        if executed <= 0 or remaining <= 0 or self._started_at is None:
            return None
        elapsed = self._clock() - self._started_at - self._capture_s
        if elapsed < 0:
            elapsed = 0.0
        return elapsed / executed * remaining

    # --- internals ------------------------------------------------------------

    def _maybe_heartbeat(self) -> None:
        if self._jsonl is None:
            return
        now = self._clock()
        last = self._last_heartbeat
        if last is not None and now - last < self._heartbeat_s:
            return
        self._last_heartbeat = now
        event = {
            "event": "heartbeat",
            "label": self.label,
            "done": self._done,
            "total": self._total,
            "cached": self._cached,
            "workers": {
                str(pid): dict(data)
                for pid, data in sorted(self._workers.items())
            },
        }
        if self._started_at is not None:
            event["elapsed_s"] = now - self._started_at
        self._emit_jsonl(event)

    def _emit_jsonl(self, event: dict) -> None:
        if self._jsonl is None:
            return
        event = {"seq": self._seq, **event}
        self._seq += 1
        self._jsonl.write(json.dumps(event, sort_keys=True) + "\n")
        self._jsonl.flush()

"""Aggregated progress and ETA reporting for fleet runs.

The old CLI callback printed one unbuffered line per run with no sense of
scale; on an 85-run sweep the user could not tell 5% from 95% done.  A
:class:`ProgressReporter` is bound to a spec list before the fleet starts
and then observes completions (from any worker, in any order), printing
``config c/C, rep r/R`` positions, an aggregate ``done/total`` count, an
ETA extrapolated from completed runs, and a ``[cached]`` marker for cells
served from the result cache.  Every line is flushed so progress is
visible through pipes and log files.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.fleet.spec import RunSpec


class ProgressReporter:
    """Streamed ``done/total`` + ETA lines over an enumerated spec list."""

    def __init__(self, label: str, stream: TextIO | None = None) -> None:
        self.label = label
        self._stream = stream
        self._config_index: dict[str, int] = {}
        self._reps = 0
        self._total = 0
        self._done = 0
        self._cached = 0
        self._started_at: float | None = None

    def bind(self, specs: list[RunSpec]) -> "ProgressReporter":
        """Learn the grid shape; called by the sweep before dispatch."""
        self._config_index = {}
        self._reps = 0
        for spec in specs:
            self._config_index.setdefault(spec.config, len(self._config_index))
            self._reps = max(self._reps, spec.rep + 1)
        self._total = len(specs)
        self._done = 0
        self._cached = 0
        self._started_at = time.monotonic()
        return self

    @property
    def done(self) -> int:
        return self._done

    @property
    def cached(self) -> int:
        return self._cached

    def __call__(self, spec: RunSpec, cached: bool = False) -> None:
        """Observe one completed run (the engine's progress hook).

        An unbound reporter (used directly as an engine hook without a
        spec list) grows its totals as observations arrive instead of
        claiming a grid shape it doesn't know.
        """
        if self._started_at is None:
            self._started_at = time.monotonic()
        self._done += 1
        if cached:
            self._cached += 1
        self._reps = max(self._reps, spec.rep + 1)
        self._total = max(self._total, self._done)
        config_pos = (
            self._config_index.setdefault(spec.config, len(self._config_index))
            + 1
        )
        line = (
            f"  {self.label}: {spec.config} "
            f"(config {config_pos}/{max(1, len(self._config_index))}, "
            f"rep {spec.rep + 1}/{max(1, self._reps)}) — "
            f"{self._done}/{self._total} runs{self._eta_suffix()}"
        )
        if cached:
            line += " [cached]"
        stream = self._stream if self._stream is not None else sys.stderr
        print(line, file=stream, flush=True)

    def _eta_suffix(self) -> str:
        executed = self._done - self._cached
        remaining = self._total - self._done
        if executed <= 0 or remaining <= 0 or self._started_at is None:
            return ""
        elapsed = time.monotonic() - self._started_at
        eta = elapsed / executed * remaining
        return f", ETA {eta:.0f}s"

"""Run specifications: the unit of work the fleet dispatches.

A :class:`RunSpec` names one cell of the study grid — *which* workload,
under *which* frequency configuration, *which* repetition, seeded *how* —
without holding any simulation state.  Specs are pure values: hashable,
picklable, and cheap to enumerate, so the same list can drive the serial
path, a multiprocessing fleet, or a cache lookup and always mean the same
execution.  Determinism comes from the replay harness deriving every RNG
stream from ``(master_seed, dataset, config, rep)``; two executions of the
same spec are therefore bit-identical wherever they run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

Tunables = tuple[tuple[str, object], ...]


def _canonical_tunable_value(value: object) -> object:
    """Collapse numerically equal tunable spellings onto one identity.

    ``boost=1`` and ``boost=1.0`` drive the identical replay (the
    governor arithmetic does not distinguish them), so they must share
    one cache key and one RNG-irrelevant spec identity: integral floats
    become ints.  Bools are left alone — ``True == 1`` numerically, but
    a flag-valued tunable is not a frequency and must not alias one.
    """
    if isinstance(value, float) and not isinstance(value, bool):
        if value.is_integer():
            return int(value)
    return value


def freeze_tunables(tunables: dict[str, object] | Tunables | None) -> Tunables:
    """Normalise governor tunables to a sorted, hashable tuple of pairs.

    Values are canonicalised (``1.0`` → ``1``) so numerically equal
    spellings of the same replay share one cache identity.
    """
    if not tunables:
        return ()
    if isinstance(tunables, dict):
        items = tunables.items()
    else:
        items = tunables
    return tuple(
        sorted((str(k), _canonical_tunable_value(v)) for k, v in items)
    )


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One replay of one workload under one configuration.

    ``config`` is a governor name (``ondemand``, …) or ``fixed:<khz>``;
    ``tunables`` are governor keyword overrides, stored as sorted pairs so
    that specs stay hashable and their cache tokens canonical.
    """

    dataset: str
    config: str
    rep: int
    master_seed: int
    tunables: Tunables = field(default=())

    def tunables_dict(self) -> dict[str, object]:
        return dict(self.tunables)

    def label(self) -> str:
        return f"{self.dataset}:{self.config}:rep{self.rep}"

    def cache_token(self) -> str:
        """Canonical JSON identity used in content-addressed cache keys."""
        return json.dumps(self.to_wire(), sort_keys=True, separators=(",", ":"))

    def to_wire(self) -> dict:
        """JSON-safe dict form — the shape queue backends ship around."""
        return {
            "dataset": self.dataset,
            "config": self.config,
            "rep": self.rep,
            "master_seed": self.master_seed,
            "tunables": [list(pair) for pair in self.tunables],
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_wire` output (lossless)."""
        return cls(
            dataset=wire["dataset"],
            config=wire["config"],
            rep=wire["rep"],
            master_seed=wire["master_seed"],
            tunables=freeze_tunables(
                [(key, value) for key, value in wire["tunables"]]
            ),
        )


def group_results_by_config(
    specs: list[RunSpec], results: list, configs: list[str] | None = None
) -> dict[str, list]:
    """Fold spec-ordered engine results back into per-config run lists.

    ``configs`` pre-seeds (and orders) the keys; by default the keys
    appear in first-spec order.  The shared inverse of the flat spec
    enumeration, used by the sweep and the design-space evaluator.
    """
    grouped: dict[str, list] = {config: [] for config in (configs or [])}
    for spec, result in zip(specs, results):
        grouped.setdefault(spec.config, []).append(result)
    return grouped


def enumerate_sweep_specs(
    dataset: str,
    configs: list[str],
    reps: int,
    master_seed: int,
    tunables: dict[str, object] | Tunables | None = None,
) -> list[RunSpec]:
    """The study grid in serial order: config-major, then repetition.

    This is the exact nesting the serial sweep used, so an ordered merge
    of fleet results reproduces the serial output bit for bit.
    """
    frozen = freeze_tunables(tunables)
    return [
        RunSpec(
            dataset=dataset,
            config=config,
            rep=rep,
            master_seed=master_seed,
            tunables=frozen,
        )
        for config in configs
        for rep in range(reps)
    ]

"""DVFS governors.

Faithful state machines for the three governors the paper characterises
(ondemand, conservative, interactive) plus the trivial policies
(performance, powersave, userspace/fixed) and a QoE-aware governor
implementing the paper's proposed future-work direction.
"""

from repro.governors.base import Governor, GovernorContext, create_governor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.performance import PerformanceGovernor, PowersaveGovernor
from repro.governors.qoe_aware import QoeAwareGovernor
from repro.governors.userspace import UserspaceGovernor

__all__ = [
    "Governor",
    "GovernorContext",
    "create_governor",
    "OndemandGovernor",
    "ConservativeGovernor",
    "InteractiveGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "QoeAwareGovernor",
]

"""Governor framework.

A governor receives a :class:`GovernorContext` — the engine (for sampling
timers), the cpufreq policy it drives, a load tracker over the core, and
the input subsystem (the interactive governor registers an input notifier
there, as its Linux counterpart does via ``input_handler``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Type

from repro.core.engine import Engine
from repro.core.errors import GovernorError
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.input_device import InputSubsystem
from repro.device.loadtracker import LoadTracker
from repro.governors.config import parse_config


@dataclass(slots=True)
class GovernorContext:
    """Everything a governor may touch.

    ``scheduler`` is optional and only used by the experimental QoE-aware
    governor, which consults run-queue idleness the way the paper's
    proposed in-display-stack governor would consult interaction state.
    """

    engine: Engine
    policy: CpuFreqPolicy
    load_tracker: LoadTracker
    input_subsystem: InputSubsystem | None = None
    scheduler: object | None = None


class Governor(ABC):
    """Base class for all DVFS governors."""

    #: sysfs-style governor name, set by subclasses.
    name: str = "abstract"

    #: Config-string parameter aliases: short key -> constructor kwarg.
    #: Subclasses with tunables override this; it is what makes a governor
    #: addressable as ``name:key=value,...`` and enumerable by the
    #: design-space explorer (:mod:`repro.explore.space`).
    config_params: dict[str, str] = {}

    #: The subset of :attr:`config_params` keys whose values are OPP
    #: frequencies in kHz.  Off-table values would silently clamp at
    #: runtime, so pre-flight validation checks these against the table.
    freq_params: tuple[str, ...] = ()

    def __init__(self, context: GovernorContext) -> None:
        self.context = context
        self._active = False

    @classmethod
    def from_params(
        cls, context: GovernorContext, params: dict[str, int], **tunables
    ) -> "Governor":
        """Construct from parsed config-string parameters.

        ``params`` uses the short keys of :attr:`config_params`;
        ``tunables`` are direct constructor kwargs (the programmatic API).
        Constructor validation failures surface as one-line
        :class:`GovernorError`\\ s so a bad ``--config`` dies cleanly.
        """
        check_config_params(cls.name, cls, params)
        kwargs: dict[str, object] = {
            cls.config_params[key]: value for key, value in params.items()
        }
        overlap = sorted(set(kwargs) & set(tunables))
        if overlap:
            raise GovernorError(
                f"governor {cls.name!r}: {', '.join(overlap)} given both "
                "as config-string parameter and keyword"
            )
        try:
            return cls(context, **kwargs, **tunables)
        except (TypeError, ValueError) as exc:
            raise GovernorError(f"governor {cls.name!r}: {exc}") from exc

    @property
    def active(self) -> bool:
        return self._active

    @property
    def policy(self) -> CpuFreqPolicy:
        return self.context.policy

    def start(self) -> None:
        """Activate the governor (cpufreq ``GOV_START``)."""
        if self._active:
            raise GovernorError(f"governor {self.name} already started")
        self._active = True
        self._on_start()

    def stop(self) -> None:
        """Deactivate the governor (cpufreq ``GOV_STOP``)."""
        if not self._active:
            return
        self._active = False
        self._on_stop()

    @abstractmethod
    def _on_start(self) -> None:
        """Subclass hook: arm timers, set the initial frequency."""

    @abstractmethod
    def _on_stop(self) -> None:
        """Subclass hook: cancel timers, detach notifiers."""


def check_config_params(
    name: str, factory: Callable[..., "Governor"], params: Iterable[str]
) -> None:
    """Reject parameter keys a governor does not declare in config_params.

    ``params`` is any iterable of short keys (a parsed parameter dict
    works).  The single validator behind ``from_params``,
    ``parse_sweep_configs`` and ``GovernorSpace`` — one place to keep the
    error message and the alias contract consistent.
    """
    declared = getattr(factory, "config_params", {})
    for key in params:
        if key not in declared:
            known = ", ".join(sorted(declared)) or "none"
            raise GovernorError(
                f"governor {name!r} has no tunable {key!r} (known: {known})"
            )


_REGISTRY: dict[str, Callable[..., Governor]] = {}


def register_governor(name: str, factory: Callable[..., Governor]) -> None:
    """Register a governor under its sysfs-style name."""
    if name in _REGISTRY:
        raise GovernorError(f"governor {name!r} already registered")
    _REGISTRY[name] = factory


def registered_governors() -> list[str]:
    return sorted(_REGISTRY)


def governor_factory(name: str) -> Callable[..., Governor]:
    """The registered factory for ``name``, or a one-line GovernorError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_governors())
        raise GovernorError(
            f"unknown governor {name!r} (known: {known})"
        ) from None


def create_governor(name: str, context: GovernorContext, **tunables) -> Governor:
    """Instantiate a governor from a config string, passing tunables through.

    ``name`` is any config string :func:`repro.governors.config.parse_config`
    accepts: a bare governor name, ``fixed:<khz>`` (the userspace governor
    pinned at a frequency), or a parameterized form such as
    ``qoe_aware:boost=1_036_800,settle=40000`` whose parameters are routed
    through the governor's :meth:`Governor.from_params` hook.
    """
    base, params = parse_config(name)
    if base == "fixed":
        factory = _REGISTRY["userspace"]
        return factory(context, fixed_khz=params["khz"], **tunables)
    factory = governor_factory(base)
    from_params = getattr(factory, "from_params", None)
    if from_params is not None:
        return from_params(context, params, **tunables)
    if params:
        raise GovernorError(
            f"governor {base!r} takes no config-string parameters"
        )
    return factory(context, **tunables)

"""Governor framework.

A governor receives a :class:`GovernorContext` — the engine (for sampling
timers), the cpufreq policy it drives, a load tracker over the core, and
the input subsystem (the interactive governor registers an input notifier
there, as its Linux counterpart does via ``input_handler``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Type

from repro.core.engine import Engine
from repro.core.env import env_flag
from repro.core.errors import GovernorError
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.input_device import InputSubsystem
from repro.device.loadtracker import LoadTracker
from repro.governors.config import parse_config
from repro.obs.session import active as _obs_active


@dataclass(slots=True)
class GovernorContext:
    """Everything a governor may touch.

    ``scheduler`` is optional and only used by the experimental QoE-aware
    governor, which consults run-queue idleness the way the paper's
    proposed in-display-stack governor would consult interaction state.
    """

    engine: Engine
    policy: CpuFreqPolicy
    load_tracker: LoadTracker
    input_subsystem: InputSubsystem | None = None
    scheduler: object | None = None


def idle_fastpath_enabled() -> bool:
    """Whether the governors' idle tick-elision fast path is active.

    The fast path parks a governor's sampling timer while every sample is
    provably a no-op (core idle at the governor's resting frequency) and
    reconciles counters on wake-up, eliding the per-tick work entirely.
    It is semantics-preserving — study output (energy, irritation, frame
    digests) is bit-identical either way; ``REPRO_FASTPATH=0`` disables it
    for A/B verification and benchmarking.
    """
    return env_flag("REPRO_FASTPATH", default=True)


class TickElisionMixin:
    """Shared parking machinery for sampling governors.

    A governor that keeps a :class:`~repro.kernel.timers.PeriodicTimer`
    in ``self._timer``, its core in ``self._core``, the fast-path flag in
    ``self._fastpath`` and (optionally) a load tracker in
    ``self._load_tracker`` gets the full tick-elision lifecycle from this
    mixin: park bookkeeping (``self._park_mode``), core busy/idle wake
    listeners, and exact reconciliation of ``samples_taken`` and the
    load-tracking window for the elided ticks.

    Park modes: ``"idle"`` (idle at the resting frequency; wake on busy),
    ``"busy"`` (pinned under full load; wake on idle), ``"hold"`` (a
    bounded no-op wait with a :meth:`PeriodicTimer.park_until` deadline;
    wake on busy).  Input notifiers additionally call :meth:`_wake`
    directly.
    """

    _park_mode: str | None

    def _elision_init(self) -> None:
        """Call at construction, after ``self._timer`` exists."""
        self._park_mode = None
        self._park_started_at = 0
        self._timer.on_elided = self._credit_elided

    def _elision_attach(self) -> None:
        """Call from ``_on_start``: register the wake listeners."""
        if self._fastpath:
            self._core.add_busy_listener(self._on_core_busy)
            self._core.add_idle_listener(self._on_core_idle)

    def _elision_detach(self) -> None:
        """Call from ``_on_stop``: drop park state and listeners."""
        self._park_mode = None
        if self._fastpath:
            try:
                self._core.remove_busy_listener(self._on_core_busy)
                self._core.remove_idle_listener(self._on_core_idle)
            except ValueError:
                pass

    def _park(self, mode: str, wake_time: int | None = None) -> None:
        self._park_mode = mode
        if wake_time is None:
            self._timer.park()
        else:
            self._timer.park_until(wake_time)
        obs = self._obs
        if obs is not None:
            self._park_started_at = self.context.engine.clock._now
            obs.timer_parked(self._park_started_at, self.name, mode)

    def _on_core_busy(self) -> None:
        if self._park_mode == "idle" or self._park_mode == "hold":
            self._wake()

    def _on_core_idle(self) -> None:
        if self._park_mode == "busy":
            self._wake()

    def _credit_elided(self, elided: int, last_tick: int) -> None:
        """A park_until deadline fired: account the elided idle ticks."""
        mode = self._park_mode
        self._park_mode = None
        obs = self._obs
        if obs is not None:
            obs.timer_unparked(
                self.context.engine.clock._now,
                self.name,
                mode,
                self._park_started_at,
                elided,
            )
        self._account_elided(elided, last_tick, busy_total=None)

    def _wake(self) -> None:
        """Resume sampling after tick elision, reconciling the counters."""
        mode = self._park_mode
        self._park_mode = None
        elided, last_tick = self._timer.unpark()
        obs = self._obs
        if obs is not None:
            obs.timer_unparked(
                self.context.engine.clock._now,
                self.name,
                mode,
                self._park_started_at,
                elided,
            )
        if not elided:
            return
        if mode == "busy":
            # Core was continuously busy from the last elided tick to
            # now, so rewind its counter by the elapsed span.
            busy_total = self._core.busy_time_total() - (
                self.context.engine.clock._now - last_tick
            )
        else:
            busy_total = None
        self._account_elided(elided, last_tick, busy_total)

    def _account_elided(
        self, elided: int, last_tick: int, busy_total: int | None
    ) -> None:
        """Default reconciliation: sample counter + load window.

        Governors without per-tick counters (qoe_aware) override this
        with a no-op.
        """
        self.samples_taken += elided
        self._load_tracker.fast_forward(last_tick, busy_total)


class Governor(ABC):
    """Base class for all DVFS governors."""

    #: sysfs-style governor name, set by subclasses.
    name: str = "abstract"

    #: Config-string parameter aliases: short key -> constructor kwarg.
    #: Subclasses with tunables override this; it is what makes a governor
    #: addressable as ``name:key=value,...`` and enumerable by the
    #: design-space explorer (:mod:`repro.explore.space`).
    config_params: dict[str, str] = {}

    #: The subset of :attr:`config_params` keys whose values are OPP
    #: frequencies in kHz.  Off-table values would silently clamp at
    #: runtime, so pre-flight validation checks these against the table.
    freq_params: tuple[str, ...] = ()

    def __init__(self, context: GovernorContext) -> None:
        self.context = context
        self._active = False
        # One attribute load + None test per instrumentation site: the
        # whole observability cost when no session is installed.
        self._obs = _obs_active()

    @classmethod
    def from_params(
        cls, context: GovernorContext, params: dict[str, int], **tunables
    ) -> "Governor":
        """Construct from parsed config-string parameters.

        ``params`` uses the short keys of :attr:`config_params`;
        ``tunables`` are direct constructor kwargs (the programmatic API).
        Constructor validation failures surface as one-line
        :class:`GovernorError`\\ s so a bad ``--config`` dies cleanly.
        """
        check_config_params(cls.name, cls, params)
        kwargs: dict[str, object] = {
            cls.config_params[key]: value for key, value in params.items()
        }
        overlap = sorted(set(kwargs) & set(tunables))
        if overlap:
            raise GovernorError(
                f"governor {cls.name!r}: {', '.join(overlap)} given both "
                "as config-string parameter and keyword"
            )
        try:
            return cls(context, **kwargs, **tunables)
        except (TypeError, ValueError) as exc:
            raise GovernorError(f"governor {cls.name!r}: {exc}") from exc

    @property
    def active(self) -> bool:
        return self._active

    @property
    def policy(self) -> CpuFreqPolicy:
        return self.context.policy

    def start(self) -> None:
        """Activate the governor (cpufreq ``GOV_START``)."""
        if self._active:
            raise GovernorError(f"governor {self.name} already started")
        self._active = True
        obs = self._obs
        if obs is not None:
            obs.governor_started(self.context.engine.clock._now, self.name)
        self._on_start()

    def stop(self) -> None:
        """Deactivate the governor (cpufreq ``GOV_STOP``)."""
        if not self._active:
            return
        self._active = False
        self._on_stop()

    @abstractmethod
    def _on_start(self) -> None:
        """Subclass hook: arm timers, set the initial frequency."""

    @abstractmethod
    def _on_stop(self) -> None:
        """Subclass hook: cancel timers, detach notifiers."""


def check_config_params(
    name: str, factory: Callable[..., "Governor"], params: Iterable[str]
) -> None:
    """Reject parameter keys a governor does not declare in config_params.

    ``params`` is any iterable of short keys (a parsed parameter dict
    works).  The single validator behind ``from_params``,
    ``parse_sweep_configs`` and ``GovernorSpace`` — one place to keep the
    error message and the alias contract consistent.
    """
    declared = getattr(factory, "config_params", {})
    for key in params:
        if key not in declared:
            known = ", ".join(sorted(declared)) or "none"
            raise GovernorError(
                f"governor {name!r} has no tunable {key!r} (known: {known})"
            )


_REGISTRY: dict[str, Callable[..., Governor]] = {}


def register_governor(name: str, factory: Callable[..., Governor]) -> None:
    """Register a governor under its sysfs-style name."""
    if name in _REGISTRY:
        raise GovernorError(f"governor {name!r} already registered")
    _REGISTRY[name] = factory


def registered_governors() -> list[str]:
    return sorted(_REGISTRY)


def governor_factory(name: str) -> Callable[..., Governor]:
    """The registered factory for ``name``, or a one-line GovernorError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_governors())
        raise GovernorError(
            f"unknown governor {name!r} (known: {known})"
        ) from None


def create_governor(name: str, context: GovernorContext, **tunables) -> Governor:
    """Instantiate a governor from a config string, passing tunables through.

    ``name`` is any config string :func:`repro.governors.config.parse_config`
    accepts: a bare governor name, ``fixed:<khz>`` (the userspace governor
    pinned at a frequency), or a parameterized form such as
    ``qoe_aware:boost=1_036_800,settle=40000`` whose parameters are routed
    through the governor's :meth:`Governor.from_params` hook.
    """
    base, params = parse_config(name)
    if base == "fixed":
        factory = _REGISTRY["userspace"]
        return factory(context, fixed_khz=params["khz"], **tunables)
    factory = governor_factory(base)
    from_params = getattr(factory, "from_params", None)
    if from_params is not None:
        return from_params(context, params, **tunables)
    if params:
        raise GovernorError(
            f"governor {base!r} takes no config-string parameters"
        )
    return factory(context, **tunables)

"""Governor framework.

A governor receives a :class:`GovernorContext` — the engine (for sampling
timers), the cpufreq policy it drives, a load tracker over the core, and
the input subsystem (the interactive governor registers an input notifier
there, as its Linux counterpart does via ``input_handler``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Type

from repro.core.engine import Engine
from repro.core.errors import GovernorError
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.input_device import InputSubsystem
from repro.device.loadtracker import LoadTracker


@dataclass(slots=True)
class GovernorContext:
    """Everything a governor may touch.

    ``scheduler`` is optional and only used by the experimental QoE-aware
    governor, which consults run-queue idleness the way the paper's
    proposed in-display-stack governor would consult interaction state.
    """

    engine: Engine
    policy: CpuFreqPolicy
    load_tracker: LoadTracker
    input_subsystem: InputSubsystem | None = None
    scheduler: object | None = None


class Governor(ABC):
    """Base class for all DVFS governors."""

    #: sysfs-style governor name, set by subclasses.
    name: str = "abstract"

    def __init__(self, context: GovernorContext) -> None:
        self.context = context
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def policy(self) -> CpuFreqPolicy:
        return self.context.policy

    def start(self) -> None:
        """Activate the governor (cpufreq ``GOV_START``)."""
        if self._active:
            raise GovernorError(f"governor {self.name} already started")
        self._active = True
        self._on_start()

    def stop(self) -> None:
        """Deactivate the governor (cpufreq ``GOV_STOP``)."""
        if not self._active:
            return
        self._active = False
        self._on_stop()

    @abstractmethod
    def _on_start(self) -> None:
        """Subclass hook: arm timers, set the initial frequency."""

    @abstractmethod
    def _on_stop(self) -> None:
        """Subclass hook: cancel timers, detach notifiers."""


_REGISTRY: dict[str, Callable[..., Governor]] = {}


def register_governor(name: str, factory: Callable[..., Governor]) -> None:
    """Register a governor under its sysfs-style name."""
    if name in _REGISTRY:
        raise GovernorError(f"governor {name!r} already registered")
    _REGISTRY[name] = factory


def registered_governors() -> list[str]:
    return sorted(_REGISTRY)


def create_governor(name: str, context: GovernorContext, **tunables) -> Governor:
    """Instantiate a governor by name, passing tunables through.

    ``userspace`` style names like ``fixed:960000`` select the userspace
    governor pinned at the given frequency.
    """
    if name.startswith("fixed:"):
        khz = int(name.split(":", 1)[1])
        factory = _REGISTRY["userspace"]
        return factory(context, fixed_khz=khz, **tunables)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_governors())
        raise GovernorError(f"unknown governor {name!r} (known: {known})") from None
    return factory(context, **tunables)

"""Parsing and canonicalisation of governor configuration strings.

A *config string* names one frequency configuration of the study:

* ``ondemand`` — a registered governor with its stock tunables,
* ``fixed:960000`` — the userspace governor pinned at an OPP,
* ``qoe_aware:boost=1_036_800,settle=40000`` — a governor with
  parameter overrides, written as comma-separated ``key=value`` pairs.

Parameter keys are the short aliases each governor declares in its
``config_params`` mapping (see :mod:`repro.governors.base`); values are
integers and may use ``_`` digit separators.  :func:`canonical_config`
normalises a string — parameters sorted by key, separators stripped — so
that every spelling of the same configuration maps to one cache cell and
one RNG stream.

This module is deliberately free of simulator imports: the fleet layer
and the design-space explorer both canonicalise config strings without
pulling in devices or governors.
"""

from __future__ import annotations

from repro.core.errors import GovernorError


def parse_config(config: str) -> tuple[str, dict[str, int]]:
    """Split a config string into ``(base_name, parameters)``.

    ``fixed:<khz>`` yields ``("fixed", {"khz": <khz>})``; any other
    parameterized string yields its governor name and the parsed
    ``key=value`` pairs.  Raises :class:`GovernorError` with a one-line
    message for every malformed spelling.
    """
    if not isinstance(config, str) or not config.strip():
        raise GovernorError(f"empty governor config {config!r}")
    config = config.strip()
    base, sep, param_text = config.partition(":")
    base = base.strip()
    if not base:
        raise GovernorError(f"config {config!r} has no governor name")
    if not sep:
        if base == "fixed":
            raise GovernorError(
                "config 'fixed' needs a frequency, e.g. fixed:960000"
            )
        return base, {}
    if base == "fixed":
        try:
            khz = int(param_text)
        except ValueError:
            raise GovernorError(
                f"config {config!r}: fixed takes one integer frequency "
                f"in kHz, got {param_text!r}"
            ) from None
        return base, {"khz": khz}
    if not param_text:
        raise GovernorError(f"config {config!r} has a ':' but no parameters")
    params: dict[str, int] = {}
    for pair in param_text.split(","):
        key, eq, value_text = pair.partition("=")
        key = key.strip()
        if not eq or not key or not value_text.strip():
            raise GovernorError(
                f"config {config!r}: malformed parameter {pair!r} "
                "(expected key=value)"
            )
        try:
            value = int(value_text)
        except ValueError:
            raise GovernorError(
                f"config {config!r}: parameter {key!r} needs an integer "
                f"value, got {value_text.strip()!r}"
            ) from None
        if key in params:
            raise GovernorError(
                f"config {config!r}: duplicate parameter {key!r}"
            )
        params[key] = value
    return base, params


def format_config(base: str, params: dict[str, int] | None = None) -> str:
    """The canonical spelling of ``(base, params)``."""
    if not params:
        return base
    if base == "fixed":
        return f"fixed:{params['khz']}"
    pairs = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{base}:{pairs}"


def canonical_config(config: str) -> str:
    """Normalise a config string: sorted parameters, no ``_`` separators."""
    return format_config(*parse_config(config))


def config_base(config: str) -> str:
    """The governor name a config string resolves to (``fixed`` for OPPs)."""
    return parse_config(config)[0]

"""The conservative governor.

``cpufreq_conservative.c`` semantics: instead of jumping to the maximum,
step the frequency up by ``freq_step`` percent of the policy maximum when
the load exceeds ``up_threshold``, and step down when it falls below
``down_threshold``.  The gradual ramp is what makes it "change the load
more smoothly … and stay longer in intermediate steps" (paper §III-B) —
and also what makes it by far the most irritating governor in the study.
"""

from __future__ import annotations

from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW
from repro.governors.base import (
    Governor,
    GovernorContext,
    TickElisionMixin,
    idle_fastpath_enabled,
    register_governor,
)
from repro.kernel.timers import PeriodicTimer

# Conservative samples at twice ondemand's period on the study's kernel
# and steps 5% of fmax per sample — the source of its slow ramp.
DEFAULT_SAMPLING_RATE_US = 200_000
DEFAULT_UP_THRESHOLD = 80
DEFAULT_DOWN_THRESHOLD = 20
DEFAULT_FREQ_STEP_PERCENT = 5


class ConservativeGovernor(TickElisionMixin, Governor):
    """Gradual stepping load-threshold governor."""

    name = "conservative"

    config_params = {
        "up_threshold": "up_threshold",
        "down_threshold": "down_threshold",
        "step": "freq_step_percent",
        "sampling": "sampling_rate_us",
    }

    def __init__(
        self,
        context: GovernorContext,
        sampling_rate_us: int = DEFAULT_SAMPLING_RATE_US,
        up_threshold: int = DEFAULT_UP_THRESHOLD,
        down_threshold: int = DEFAULT_DOWN_THRESHOLD,
        freq_step_percent: int = DEFAULT_FREQ_STEP_PERCENT,
    ) -> None:
        super().__init__(context)
        if not 0 < down_threshold < up_threshold <= 100:
            raise ValueError("need 0 < down_threshold < up_threshold <= 100")
        if not 1 <= freq_step_percent <= 100:
            raise ValueError("freq_step_percent must be in 1..100")
        self.sampling_rate_us = sampling_rate_us
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.freq_step_percent = freq_step_percent
        self._timer = PeriodicTimer(context.engine, sampling_rate_us, self._sample)
        self.samples_taken = 0
        self._policy = context.policy
        self._load_tracker = context.load_tracker
        self._core = context.policy.core
        self._fastpath = idle_fastpath_enabled()
        self._elision_init()

    @property
    def freq_step_khz(self) -> int:
        step = self.policy.max_khz * self.freq_step_percent // 100
        return max(step, 1)

    def _on_start(self) -> None:
        self.context.load_tracker.sample()
        self._timer.start()
        self._elision_attach()

    def _on_stop(self) -> None:
        self._timer.stop()
        self._elision_detach()

    def _sample(self) -> None:
        load = self._load_tracker.sample()
        self.samples_taken += 1
        policy = self._policy
        current = policy.current_khz
        obs = self._obs
        if obs is not None:
            obs.governor_load(self.context.engine.clock._now, load)
        if load > self.up_threshold:
            if current < policy.max_khz:
                policy.set_target(current + self.freq_step_khz, RELATION_HIGH)
                if obs is not None and policy.current_khz != current:
                    obs.governor_decision(
                        self.context.engine.clock._now, self.name, "step_up",
                        policy.current_khz,
                    )
        elif load < self.down_threshold:
            if current > policy.min_khz:
                policy.set_target(
                    max(current - self.freq_step_khz, policy.min_khz),
                    RELATION_LOW,
                )
                if obs is not None and policy.current_khz != current:
                    obs.governor_decision(
                        self.context.engine.clock._now, self.name, "step_down",
                        policy.current_khz,
                    )
        # Tick-elision fast path: settled at the minimum with an idle core
        # (load 0, no step down possible) or pinned at the maximum with a
        # busy core (load 100, no step up possible) — either way every
        # further sample is a no-op until the core flips state.
        if self._fastpath:
            current = policy.current_khz
            if not self._core.busy:
                if current == policy.min_khz:
                    self._park("idle")
            elif current == policy.max_khz:
                self._park("busy")


register_governor("conservative", ConservativeGovernor)

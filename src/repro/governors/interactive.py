"""The interactive governor (Android's default at the time of the paper).

Semantics of ``cpufreq_interactive.c``: a fast 20 ms sampling timer; when
the load exceeds ``go_hispeed_load`` the frequency jumps to
``hispeed_freq``; going *above* hispeed requires the load to persist for
``above_hispeed_delay``; once raised, the speed is held for at least
``min_sample_time`` before it may fall.  The distinguishing feature the
paper calls out — "reacts directly to incoming user input events and
immediately ramps up the frequency while ignoring the load" — is the input
notifier: any touch event boosts the core to hispeed immediately.
"""

from __future__ import annotations

from repro.core.events import InputEvent
from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW
from repro.governors.base import (
    Governor,
    GovernorContext,
    TickElisionMixin,
    idle_fastpath_enabled,
    register_governor,
)
from repro.kernel.timers import PeriodicTimer

DEFAULT_TIMER_RATE_US = 20_000
DEFAULT_GO_HISPEED_LOAD = 99
DEFAULT_TARGET_LOAD = 85
DEFAULT_ABOVE_HISPEED_DELAY_US = 20_000
DEFAULT_MIN_SAMPLE_TIME_US = 80_000


class InteractiveGovernor(TickElisionMixin, Governor):
    """Android's input-boosting governor."""

    name = "interactive"

    config_params = {
        "hispeed": "hispeed_freq_khz",
        "timer": "timer_rate_us",
        "go_hispeed": "go_hispeed_load",
        "target": "target_load",
        "above_delay": "above_hispeed_delay_us",
        "min_sample": "min_sample_time_us",
    }
    freq_params = ("hispeed",)

    def __init__(
        self,
        context: GovernorContext,
        timer_rate_us: int = DEFAULT_TIMER_RATE_US,
        go_hispeed_load: int = DEFAULT_GO_HISPEED_LOAD,
        target_load: int = DEFAULT_TARGET_LOAD,
        above_hispeed_delay_us: int = DEFAULT_ABOVE_HISPEED_DELAY_US,
        min_sample_time_us: int = DEFAULT_MIN_SAMPLE_TIME_US,
        hispeed_freq_khz: int | None = None,
        input_boost: bool = True,
    ) -> None:
        super().__init__(context)
        if not 1 <= go_hispeed_load <= 100:
            raise ValueError("go_hispeed_load must be in 1..100")
        if not 1 <= target_load <= 100:
            raise ValueError("target_load must be in 1..100")
        self.timer_rate_us = timer_rate_us
        self.go_hispeed_load = go_hispeed_load
        self.target_load = target_load
        self.above_hispeed_delay_us = above_hispeed_delay_us
        self.min_sample_time_us = min_sample_time_us
        if hispeed_freq_khz is None:
            # cpufreq_interactive's stock default: hispeed is the policy
            # maximum (vendors often retune it to a mid OPP).
            hispeed_freq_khz = context.policy.max_khz
        self.hispeed_freq_khz = hispeed_freq_khz
        self.input_boost = input_boost
        self._timer = PeriodicTimer(context.engine, timer_rate_us, self._sample)
        self._hispeed_validate_since: int | None = None
        self._floor_freq = context.policy.min_khz
        self._floor_set_at = 0
        self.samples_taken = 0
        self.input_boosts = 0
        # Hot-path bindings and the idle fast path (tick elision while the
        # core sits idle at the policy minimum; see Governor base docs).
        self._policy = context.policy
        self._load_tracker = context.load_tracker
        self._core = context.policy.core
        self._fastpath = idle_fastpath_enabled()
        self._elision_init()

    def _on_start(self) -> None:
        self.context.load_tracker.sample()
        self._floor_freq = self.policy.current_khz
        self._floor_set_at = self.context.engine.now
        self._timer.start()
        self._elision_attach()
        if self.input_boost and self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                node.add_observer(self._on_input_event)

    def _on_stop(self) -> None:
        self._timer.stop()
        self._elision_detach()
        if self.input_boost and self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                try:
                    node.remove_observer(self._on_input_event)
                except ValueError:
                    pass

    # --- input notifier ---------------------------------------------------------

    def _on_input_event(self, event: InputEvent) -> None:
        """Boost to hispeed on any user input, ignoring the load."""
        if not self._active:
            return
        if self._park_mode is not None:
            self._wake()
        policy = self._policy
        if policy.current_khz < self.hispeed_freq_khz:
            self.input_boosts += 1
            obs = self._obs
            if obs is not None:
                obs.input_boost(
                    self.context.engine.clock._now,
                    self.name,
                    self.hispeed_freq_khz,
                )
            policy.set_target(self.hispeed_freq_khz, RELATION_HIGH)
            self._raise_floor(self.hispeed_freq_khz)

    # --- sampling loop -----------------------------------------------------------

    def _sample(self) -> None:
        load = self._load_tracker.sample()
        self.samples_taken += 1
        policy = self._policy
        now = self.context.engine.clock._now
        current = policy.current_khz
        obs = self._obs
        if obs is not None:
            obs.governor_load(now, load)

        if load >= self.go_hispeed_load:
            if current < self.hispeed_freq_khz:
                new_freq = self.hispeed_freq_khz
            else:
                new_freq = self._choose_freq(load, current)
        else:
            new_freq = self._choose_freq(load, current)

        # Going above hispeed requires sustained high load.
        if (
            new_freq > self.hispeed_freq_khz
            and current <= self.hispeed_freq_khz
        ):
            if self._hispeed_validate_since is None:
                self._hispeed_validate_since = now
            if now - self._hispeed_validate_since < self.above_hispeed_delay_us:
                new_freq = self.hispeed_freq_khz
            else:
                self._hispeed_validate_since = None
        else:
            self._hispeed_validate_since = None

        if new_freq > current:
            policy.set_target(new_freq, RELATION_HIGH)
            self._raise_floor(policy.current_khz)
            if obs is not None and policy.current_khz != current:
                obs.governor_decision(
                    now, self.name, "ramp_up", policy.current_khz
                )
        elif new_freq < current:
            # Hold the floor for min_sample_time before ramping down.
            held = now - self._floor_set_at
            if held >= self.min_sample_time_us:
                policy.set_target(new_freq, RELATION_LOW)
                self._raise_floor(policy.current_khz)
                if obs is not None and policy.current_khz != current:
                    obs.governor_decision(
                        now, self.name, "ramp_down", policy.current_khz,
                        waited_us=held,
                    )

        # Tick-elision fast path.  Two provably-stable states:
        #  * idle at the policy minimum: every sample reads load 0, chooses
        #    the minimum, and changes nothing until the core turns busy or
        #    an input boost raises the frequency (both un-park);
        #  * busy at the policy maximum: every fully-busy window reads load
        #    100, re-targets the maximum it is already at, and leaves the
        #    floor/validation state untouched until the core idles.
        if self._fastpath and self._hispeed_validate_since is None:
            current = policy.current_khz
            if not self._core.busy:
                if current == policy.min_khz:
                    self._park("idle")
                else:
                    # Idle above the minimum: ramp-down is blocked by the
                    # floor hold, so every tick strictly inside the hold
                    # window reads load 0 and does nothing.  Park through
                    # the hold with a scheduled wake at the first tick
                    # that may ramp down.
                    period = self._timer.period_us
                    wait = (
                        self._floor_set_at + self.min_sample_time_us - now
                    )
                    if wait > 0:
                        steps = -(-wait // period)
                        if steps >= 3:  # machinery pays for >= 2 elisions
                            self._park("hold", now + steps * period)
            elif current == policy.max_khz:
                self._park("busy")

    def _choose_freq(self, load: int, current_khz: int) -> int:
        """Lowest frequency keeping the load at or under ``target_load``."""
        policy = self._policy
        if load <= 0:
            return policy.min_khz
        target = load * current_khz // self.target_load
        return policy.clamp(policy.core.table.ceil(target))

    def _raise_floor(self, freq_khz: int) -> None:
        self._floor_freq = freq_khz
        self._floor_set_at = self.context.engine.now


register_governor("interactive", InteractiveGovernor)

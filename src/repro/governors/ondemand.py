"""The ondemand governor.

State machine of ``drivers/cpufreq/cpufreq_ondemand.c`` (kernel 3.4, the
paper's kernel): sample the load every ``sampling_rate``; if it exceeds
``up_threshold`` jump straight to the policy maximum; otherwise pick the
lowest frequency that would keep the load just under the threshold
(``load * cur / up_threshold``).  ``sampling_down_factor`` stretches the
sampling period while pinned at max.  This produces the max/min
"alternating" behaviour the paper's Fig. 3 shows.
"""

from __future__ import annotations

from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW
from repro.governors.base import (
    Governor,
    GovernorContext,
    TickElisionMixin,
    idle_fastpath_enabled,
    register_governor,
)
from repro.kernel.timers import PeriodicTimer

# Kernel 3.4 ondemand with high-resolution timers: micro sampling and the
# micro up_threshold (cpufreq_ondemand.c MICRO_FREQUENCY_* defaults).
DEFAULT_SAMPLING_RATE_US = 20_000
DEFAULT_UP_THRESHOLD = 95
DEFAULT_SAMPLING_DOWN_FACTOR = 2


class OndemandGovernor(TickElisionMixin, Governor):
    """Linux's default load-threshold governor."""

    name = "ondemand"

    config_params = {
        "up_threshold": "up_threshold",
        "sampling": "sampling_rate_us",
        "down_factor": "sampling_down_factor",
    }

    def __init__(
        self,
        context: GovernorContext,
        sampling_rate_us: int = DEFAULT_SAMPLING_RATE_US,
        up_threshold: int = DEFAULT_UP_THRESHOLD,
        sampling_down_factor: int = DEFAULT_SAMPLING_DOWN_FACTOR,
    ) -> None:
        super().__init__(context)
        if not 1 <= up_threshold <= 100:
            raise ValueError("up_threshold must be in 1..100")
        if sampling_down_factor < 1:
            raise ValueError("sampling_down_factor must be >= 1")
        self.sampling_rate_us = sampling_rate_us
        self.up_threshold = up_threshold
        self.sampling_down_factor = sampling_down_factor
        self._timer = PeriodicTimer(context.engine, sampling_rate_us, self._sample)
        self._down_skip = 0
        self.samples_taken = 0
        self._policy = context.policy
        self._load_tracker = context.load_tracker
        self._core = context.policy.core
        self._fastpath = idle_fastpath_enabled()
        self._elision_init()

    def _on_start(self) -> None:
        # ondemand begins from wherever the previous policy left the core.
        self.context.load_tracker.sample()  # reset the window
        self._down_skip = 0
        self._timer.start()
        self._elision_attach()

    def _on_stop(self) -> None:
        self._timer.stop()
        self._elision_detach()

    def _sample(self) -> None:
        load = self._load_tracker.sample()
        self.samples_taken += 1
        policy = self._policy
        obs = self._obs
        if obs is not None:
            obs.governor_load(self.context.engine.clock._now, load)
        if load > self.up_threshold:
            previous = policy.current_khz
            policy.set_target(policy.max_khz, RELATION_HIGH)
            if obs is not None and policy.current_khz != previous:
                obs.governor_decision(
                    self.context.engine.clock._now, self.name, "jump_max",
                    policy.current_khz,
                )
            # While pinned at max, re-evaluate down-scaling less often.
            self._down_skip = self.sampling_down_factor - 1
            # Busy fast path: pinned at max with a busy core, every
            # fully-busy window repeats exactly this branch (load 100,
            # same target, same down_skip) until the core idles.
            if (
                self._fastpath
                and self._core.busy
                and policy.current_khz == policy.max_khz
            ):
                self._park("busy")
            return
        if self._down_skip > 0:
            self._down_skip -= 1
            return
        # Below the threshold: the lowest frequency that would have kept
        # this load under up_threshold, relative to the *current* speed.
        previous = policy.current_khz
        target = load * previous // self.up_threshold
        policy.set_target(max(target, policy.min_khz), RELATION_LOW)
        if obs is not None and policy.current_khz != previous:
            obs.governor_decision(
                self.context.engine.clock._now, self.name, "ramp_down",
                policy.current_khz,
            )
        # Idle fast path: idle at the minimum, every further sample is a
        # no-op (load 0, target min, nothing to decrement) until the core
        # turns busy again.
        if (
            self._fastpath
            and policy.current_khz == policy.min_khz
            and not self._core.busy
        ):
            self._park("idle")


register_governor("ondemand", OndemandGovernor)

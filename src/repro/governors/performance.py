"""The trivial bound governors: performance and powersave."""

from __future__ import annotations

from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW
from repro.governors.base import Governor, GovernorContext, register_governor


class PerformanceGovernor(Governor):
    """Pin the core at the policy maximum."""

    name = "performance"

    def _on_start(self) -> None:
        self.policy.set_target(self.policy.max_khz, RELATION_HIGH)

    def _on_stop(self) -> None:
        pass


class PowersaveGovernor(Governor):
    """Pin the core at the policy minimum."""

    name = "powersave"

    def _on_start(self) -> None:
        self.policy.set_target(self.policy.min_khz, RELATION_LOW)

    def _on_stop(self) -> None:
        pass


register_governor("performance", PerformanceGovernor)
register_governor("powersave", PowersaveGovernor)

"""QoE-aware governor — the paper's future-work direction, implemented.

The paper's §VI proposes integrating the user-irritation metric into the
display stack "in order to make energy efficient frequency governor
decisions at runtime".  The oracle (Fig. 3, bold line) raises the frequency
immediately after an input and holds it just long enough for the
interaction to complete, then returns to the most energy-efficient
frequency.

This governor approximates that behaviour online, without the oracle's
post-hoc knowledge: on any input event it boosts to a configurable service
frequency; it holds that frequency while the run queue has work (the
interaction is still being serviced); once the system has been idle for a
settle period it drops to the most energy-efficient operating point rather
than to the minimum — exploiting race-to-idle exactly as the oracle does
for non-lag intervals.
"""

from __future__ import annotations

from repro.core.events import InputEvent
from repro.device.cpufreq import RELATION_HIGH, RELATION_LOW
from repro.governors.base import (
    Governor,
    GovernorContext,
    TickElisionMixin,
    idle_fastpath_enabled,
    register_governor,
)
from repro.kernel.timers import PeriodicTimer

DEFAULT_TIMER_RATE_US = 20_000
DEFAULT_SETTLE_TIME_US = 60_000


class QoeAwareGovernor(TickElisionMixin, Governor):
    """Boost on input, hold while servicing, settle at the efficient OPP."""

    name = "qoe_aware"

    config_params = {
        "boost": "boost_freq_khz",
        "timer": "timer_rate_us",
        "settle": "settle_time_us",
    }
    freq_params = ("boost",)

    def __init__(
        self,
        context: GovernorContext,
        boost_freq_khz: int | None = None,
        timer_rate_us: int = DEFAULT_TIMER_RATE_US,
        settle_time_us: int = DEFAULT_SETTLE_TIME_US,
    ) -> None:
        super().__init__(context)
        table = context.policy.core.table
        model = context.policy.core.power_model
        self.efficient_khz = model.most_efficient_frequency(table)
        if boost_freq_khz is None:
            # Default boost: two OPPs above the efficient point — enough to
            # service common interactions within their HCI deadline without
            # paying the full high-voltage premium.
            boost_freq_khz = table.step_up(self.efficient_khz, 2)
        self.boost_freq_khz = boost_freq_khz
        self.settle_time_us = settle_time_us
        self._timer = PeriodicTimer(context.engine, timer_rate_us, self._sample)
        self._idle_since: int | None = None
        self.input_boosts = 0
        self._policy = context.policy
        self._core = context.policy.core
        self._fastpath = idle_fastpath_enabled()
        self._elision_init()

    def _on_start(self) -> None:
        self.policy.set_target(self.efficient_khz, RELATION_HIGH)
        self._idle_since = self.context.engine.now
        self._timer.start()
        self._elision_attach()
        if self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                node.add_observer(self._on_input_event)

    def _on_stop(self) -> None:
        self._timer.stop()
        self._elision_detach()
        if self.context.input_subsystem is not None:
            for node in self.context.input_subsystem.nodes():
                try:
                    node.remove_observer(self._on_input_event)
                except ValueError:
                    pass

    def _account_elided(
        self, elided: int, last_tick: int, busy_total: int | None
    ) -> None:
        """No per-tick counters or load tracker: waking is just re-arming."""

    def _on_input_event(self, event: InputEvent) -> None:
        if not self._active:
            return
        if self._park_mode is not None:
            self._wake()
        self.input_boosts += 1
        self._idle_since = None
        if self.policy.current_khz < self.boost_freq_khz:
            obs = self._obs
            if obs is not None:
                obs.input_boost(
                    self.context.engine.clock._now,
                    self.name,
                    self.boost_freq_khz,
                )
            self.policy.set_target(self.boost_freq_khz, RELATION_HIGH)

    def _sample(self) -> None:
        scheduler = self.context.scheduler
        now = self.context.engine.clock._now
        busy = bool(getattr(scheduler, "queued_tasks", 0)) or (
            getattr(scheduler, "current_task", None) is not None
        )
        if busy:
            self._idle_since = None
            # Busy fast path: while work is queued or running, every
            # sample just re-clears idle_since; the core-idle listener
            # un-parks before the first idle window.
            if self._fastpath:
                self._park("busy")
            return
        if self._idle_since is None:
            self._idle_since = now
            self._park_through_settle(now)
            return
        if now - self._idle_since >= self.settle_time_us:
            policy = self._policy
            if policy.current_khz != self.efficient_khz:
                idle_us = now - self._idle_since
                policy.set_target(self.efficient_khz, RELATION_LOW)
                obs = self._obs
                if obs is not None:
                    obs.governor_decision(
                        now, self.name, "settle_drop", policy.current_khz,
                        waited_us=idle_us,
                    )
            # Idle fast path: settled at the efficient OPP with nothing
            # queued — every further sample is a no-op until new work is
            # dispatched or an input boost arrives; both un-park.
            if self._fastpath and policy.current_khz == self.efficient_khz:
                self._park("idle")
        else:
            self._park_through_settle(now)

    def _park_through_settle(self, now: int) -> None:
        """Elide the wait-for-settle ticks (idle, settle not yet reached)."""
        if not self._fastpath:
            return
        period = self._timer.period_us
        wait = self._idle_since + self.settle_time_us - now
        if wait > 0:
            steps = -(-wait // period)
            if steps >= 3:  # machinery pays for >= 2 elisions
                self._park("hold", now + steps * period)


register_governor("qoe_aware", QoeAwareGovernor)

"""The userspace governor: a fixed, externally chosen frequency.

The paper replays every workload at each of the 14 operating points with
the frequency "fixed for the whole runtime"; this governor is how those
fixed-frequency configurations are realised.
"""

from __future__ import annotations

from repro.core.errors import GovernorError
from repro.device.cpufreq import RELATION_HIGH
from repro.governors.base import Governor, GovernorContext, register_governor


class UserspaceGovernor(Governor):
    """Hold one fixed frequency until told otherwise."""

    name = "userspace"

    def __init__(self, context: GovernorContext, fixed_khz: int | None = None) -> None:
        super().__init__(context)
        self._fixed_khz = fixed_khz if fixed_khz is not None else context.policy.min_khz
        if not context.policy.core.table.contains(self._fixed_khz):
            raise GovernorError(f"{self._fixed_khz} kHz is not an operating point")

    @property
    def fixed_khz(self) -> int:
        return self._fixed_khz

    def set_speed(self, freq_khz: int) -> None:
        """Change the pinned frequency (sysfs ``scaling_setspeed``)."""
        if not self.policy.core.table.contains(freq_khz):
            raise GovernorError(f"{freq_khz} kHz is not an operating point")
        self._fixed_khz = freq_khz
        if self.active:
            self.policy.set_target(freq_khz, RELATION_HIGH)

    def _on_start(self) -> None:
        self.policy.set_target(self._fixed_khz, RELATION_HIGH)

    def _on_stop(self) -> None:
        pass


register_governor("userspace", UserspaceGovernor)

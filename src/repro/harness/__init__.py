"""Experiment orchestration: recording, replay sweeps, figure regeneration."""

from repro.harness.experiment import (
    RECORDING_FREQ_KHZ,
    RunResult,
    WorkloadArtifacts,
    record_workload,
    replay_run,
)
from repro.harness.sweep import SweepResult, governor_configs, run_sweep, sweep_configs
from repro.results import RunRecord

__all__ = [
    "RECORDING_FREQ_KHZ",
    "RunRecord",
    "RunResult",
    "WorkloadArtifacts",
    "record_workload",
    "replay_run",
    "SweepResult",
    "run_sweep",
    "sweep_configs",
    "governor_configs",
]

"""Command-line interface: run the study end to end.

Examples::

    repro-qoe table1
    repro-qoe classify --datasets 01 02 03 04 05
    repro-qoe sweep --dataset 02 --reps 5
    repro-qoe study --reps 2            # all datasets, Figs. 12-14 + headline
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import figures
from repro.harness.experiment import record_workload
from repro.harness.sweep import run_sweep
from repro.workloads.datasets import dataset, dataset_names


def _progress(prefix: str):
    def report(config: str, rep: int) -> None:
        print(f"  {prefix}: {config} rep {rep}", file=sys.stderr)

    return report


def cmd_table1(_args) -> int:
    print(figures.render_table1())
    return 0


def cmd_classify(args) -> int:
    artifacts = [record_workload(dataset(name)) for name in args.datasets]
    print(figures.render_fig10(artifacts))
    return 0


def cmd_sweep(args) -> int:
    t0 = time.time()
    artifacts = record_workload(dataset(args.dataset))
    sweep = run_sweep(
        artifacts,
        reps=args.reps,
        progress=_progress(args.dataset) if args.verbose else None,
    )
    print(f"# dataset {args.dataset}: {artifacts.input_count} inputs, "
          f"{artifacts.database.lag_count} lags "
          f"({time.time() - t0:.1f}s wall)")
    print()
    print("Fig. 11 — lag duration distributions")
    print(figures.render_fig11(sweep))
    print()
    print("Fig. 12 — irritation and energy")
    print(figures.render_fig12(sweep))
    print()
    print("Fig. 13 — energy vs irritation")
    print(figures.render_fig13(sweep))
    return 0


def cmd_study(args) -> int:
    sweeps = {}
    artifacts_list = []
    for name in args.datasets:
        artifacts = record_workload(dataset(name))
        artifacts_list.append(artifacts)
        sweeps[name] = run_sweep(
            artifacts,
            reps=args.reps,
            progress=_progress(name) if args.verbose else None,
        )
    print("Fig. 10 — input classification")
    print(figures.render_fig10(artifacts_list))
    print()
    print("Fig. 14 — summary")
    print(figures.render_fig14(sweeps))
    print()
    savings = figures.headline_savings(sweeps)
    print("Headline savings")
    for key, value in savings.items():
        print(f"  {key}: {100 * value:.0f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qoe",
        description=(
            "Reproduction of Seeker et al., 'Measuring QoE of Interactive "
            "Workloads and Characterising Frequency Governors on Mobile "
            "Devices' (IISWC 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="print Table I")
    p_table1.set_defaults(func=cmd_table1)

    p_classify = sub.add_parser("classify", help="Fig. 10 input classification")
    p_classify.add_argument(
        "--datasets", nargs="+", default=dataset_names(), metavar="DS"
    )
    p_classify.set_defaults(func=cmd_classify)

    p_sweep = sub.add_parser("sweep", help="one dataset's 85-run sweep")
    p_sweep.add_argument("--dataset", default="02")
    p_sweep.add_argument("--reps", type=int, default=5)
    p_sweep.add_argument("--verbose", action="store_true")
    p_sweep.set_defaults(func=cmd_sweep)

    p_study = sub.add_parser("study", help="full study: Figs. 10, 14 + headline")
    p_study.add_argument(
        "--datasets", nargs="+", default=dataset_names(), metavar="DS"
    )
    p_study.add_argument("--reps", type=int, default=5)
    p_study.add_argument("--verbose", action="store_true")
    p_study.set_defaults(func=cmd_study)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: run the study end to end.

Examples::

    repro-qoe table1
    repro-qoe classify --datasets 01 02 03 04 05
    repro-qoe sweep --dataset 02 --reps 5 --jobs 4
    repro-qoe sweep --dataset 02 --reps 5          # warm re-run: all cached
    repro-qoe sweep --dataset 02 --config qoe_aware:boost=1_036_800,settle=40000
    repro-qoe sweep --scenario persona=gamer,seed=7,duration=2m
    repro-qoe study --reps 2 --jobs 8              # all datasets, Figs. 12-14
    repro-qoe study --reps 5 --no-cache --master-seed 7
    repro-qoe study --scenario persona=reader,seed=1,duration=2m --reps 1
    repro-qoe explore --dataset 02 --governor qoe_aware \\
        --strategy random --budget 16 --jobs 4
    repro-qoe explore --scenario persona=mixed,seed=3,duration=2m --budget 8
    repro-qoe perf --suite micro --check
    repro-qoe perf --suite all --profile perf.prof
    repro-qoe perf --suite study --scenario persona=creator,seed=2,duration=2m
    repro-qoe trace persona=gamer,seed=7,duration=45s -o trace.json
    repro-qoe demand persona=creator,seed=2,duration=2m -o demand.json
    repro-qoe attribute persona=gamer,seed=7,duration=45s -o annotated.json
    repro-qoe trace-diff baseline.json candidate.json
    repro-qoe sweep --dataset 02 --jobs 4 --progress-jsonl progress.jsonl
    repro-qoe sweep --dataset 02 --backend distributed:dir=/shared,workers=4

Synthesized scenarios (persona/seed/duration/device-profile config
strings, see the README's Scenarios section) are interchangeable with
named datasets: ``--scenario`` canonicalises the spec, and the
canonical string is the dataset name everywhere downstream — figures,
fleet cache keys, saved artifacts.

Sweeps, studies and explorations dispatch their runs through the fleet
engine (:mod:`repro.fleet`): ``--jobs N`` replays on N worker processes,
and a content-addressed result cache (``--cache-dir``, default
``~/.cache/repro-qoe``; disable with ``--no-cache``) means a re-run only
executes cells whose inputs changed.  ``--backend NAME[:key=value,...]``
swaps the execution backend: ``local`` (the default pool) or
``distributed``, whose workers pull cells from a shared sqlite work
queue and publish rows to a shared store, so a killed sweep resumes
where it left off (``batch=N`` leases and acks N cells per queue
transaction).  Results are bit-identical to a serial, uncached run
for every backend; ``explore`` keeps its stdout bit-identical across
``--jobs`` values by sending timing and cache telemetry to stderr.

Kill switches (``REPRO_*`` environment flags, see
:mod:`repro.core.env`): ``REPRO_DEMAND=0`` disables the kernel-only
demand pass, ``REPRO_DEMAND_COMPILE=0`` swaps the compiled flat-array
demand walk for the node-object interpreter — both A/B switches whose
results are bit-identical either way.
"""

from __future__ import annotations

import argparse
import hashlib
import random
import sys
import time
from pathlib import Path

from repro.core.errors import ReproError
from repro.explore.evaluator import (
    DEFAULT_IRRITATION_WEIGHT,
    ExploreEvaluator,
)
from repro.explore.pareto import render_frontier_report
from repro.explore.space import builtin_space, builtin_space_names
from repro.explore.strategies import make_strategy, strategy_names
from repro.fleet.cache import ResultCache
from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import RunSpec
from repro.harness import figures
from repro.harness.experiment import DEFAULT_MASTER_SEED, record_workload
from repro.harness.sweep import (
    GOVERNORS,
    fixed_configs,
    parse_sweep_configs,
    run_sweep,
)
from repro.workloads.datasets import dataset, dataset_names

DEFAULT_CACHE_DIR = "~/.cache/repro-qoe"


def _progress(
    prefix: str, verbose: bool, jsonl_stream=None
) -> ProgressReporter | None:
    """Aggregated, flushed progress lines (``config c/C, rep r/R``).

    With ``jsonl_stream`` the reporter also emits the machine-readable
    fleet telemetry stream (``--progress-jsonl``); human lines still
    appear only under ``--verbose``.
    """
    if not verbose and jsonl_stream is None:
        return None
    return ProgressReporter(prefix, jsonl_stream=jsonl_stream, human=verbose)


def _progress_jsonl(args):
    """The opened ``--progress-jsonl`` handle, or None.

    ``-`` streams to stderr (stdout stays reserved for deterministic
    study output).  Caller owns the handle — close it with
    :func:`_close_progress_jsonl` in a ``finally``; study shares one
    handle across its per-workload sweeps so the stream stays a single
    ordered sequence.
    """
    path = getattr(args, "progress_jsonl", None)
    if not path:
        return None
    if path == "-":
        return sys.stderr
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"unusable --progress-jsonl {path}: {exc}") from exc


def _close_progress_jsonl(jsonl) -> None:
    """Close a ``--progress-jsonl`` handle unless it is the ``-`` stderr."""
    if jsonl is not None and jsonl is not sys.stderr:
        jsonl.close()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the replay fleet (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-execute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME[:key=value,...]",
        help=(
            "execution backend for the replay fleet (default: local). "
            "'local:jobs=N' is the in-process / multiprocessing pool; "
            "'distributed:dir=/shared,workers=4' pulls cells from a "
            "shared sqlite work queue and publishes rows to a shared "
            "result store, so several machines (or a restarted sweep) "
            "can share one grid"
        ),
    )
    parser.add_argument(
        "--progress-jsonl", default=None, metavar="PATH",
        help=(
            "stream machine-readable fleet telemetry (one JSON object per "
            "line: grid_bound, run_completed, heartbeat, fleet_summary) "
            "to PATH, or '-' for stderr"
        ),
    )


def _add_seed_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--master-seed", type=int, default=None, metavar="SEED",
        help=(
            "master seed for recording and replay RNG streams "
            f"(default: {DEFAULT_MASTER_SEED})"
        ),
    )


def _cache(args) -> ResultCache | None:
    if args.no_cache:
        return None
    root = Path(args.cache_dir).expanduser()
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ReproError(f"unusable cache directory {root}: {exc}") from exc
    return ResultCache(root)


def _fleet_backend(args):
    """Resolve ``--backend``/``--cache-dir``/``--no-cache`` into
    ``(backend, cache)`` for the fleet engine.

    A backend that requires a shared store (distributed) supplies its
    own: workers publish rows there and a restarted sweep resumes from
    it, so the engine's cache *must* be that store — ``--no-cache``
    contradicts it and a custom ``--cache-dir`` is superseded (noted on
    stderr so the override is never silent).
    """
    from repro.fleet.backends import create_backend

    backend = None
    if getattr(args, "backend", None):
        backend = create_backend(args.backend, jobs=args.jobs)
    if backend is not None and backend.requires_store:
        if args.no_cache:
            raise ReproError(
                f"--no-cache cannot be combined with --backend "
                f"{backend.name}: workers publish results through the "
                "shared store"
            )
        cache = backend.result_store()
        if args.cache_dir != DEFAULT_CACHE_DIR:
            print(
                f"# --cache-dir superseded: backend {backend.name} uses "
                f"its shared store at {cache.root}",
                file=sys.stderr,
            )
        return backend, cache
    return backend, _cache(args)


def _master_seed(args) -> int:
    if args.master_seed is None:
        return DEFAULT_MASTER_SEED
    return args.master_seed


def _add_scenario_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help=(
            "synthesize the workload from a scenario spec, e.g. "
            "'persona=gamer,seed=7,duration=2m,profile=quad_ls' "
            "(overrides --dataset)"
        ),
    )


def _workload_name(args) -> str:
    """The workload to run: a canonicalised --scenario, else --dataset."""
    from repro.scenarios.config import canonical_scenario

    if getattr(args, "scenario", None):
        return canonical_scenario(args.scenario)
    return args.dataset


def _print_cache_summary(cache: ResultCache | None, stream=None) -> None:
    """Cache telemetry; defaults to stderr — stdout belongs to study
    results and is pinned byte-identical by the integration tests."""
    if cache is not None:
        print(f"# cache: {cache.hits} hits, {cache.misses} misses "
              f"({cache.root})", file=stream or sys.stderr)


def cmd_table1(_args) -> int:
    print(figures.render_table1())
    return 0


def cmd_classify(args) -> int:
    seed = _master_seed(args)
    artifacts = [
        record_workload(dataset(name), master_seed=seed)
        for name in args.datasets
    ]
    print(figures.render_fig10(artifacts))
    return 0


def _sweep_configs_from_args(args, table) -> list[str] | None:
    """The sweep grid for ``--config``: the fixed OPPs + the given strings.

    The fixed configurations stay (the oracle is composed from them);
    the given config strings replace the three stock governors.
    """
    if not args.configs:
        return None
    fixed = fixed_configs(table)
    extra = parse_sweep_configs(args.configs, table)
    return fixed + [config for config in extra if config not in fixed]


def cmd_sweep(args) -> int:
    from repro.scenarios.profiles import frequency_table_for

    t0 = time.time()
    seed = _master_seed(args)
    backend, cache = _fleet_backend(args)
    spec = dataset(_workload_name(args))  # validated before recording
    table = frequency_table_for(spec)
    configs = _sweep_configs_from_args(args, table)
    artifacts = record_workload(spec, master_seed=seed)
    jsonl = _progress_jsonl(args)
    try:
        sweep = run_sweep(
            artifacts,
            reps=args.reps,
            configs=configs,
            master_seed=seed,
            table=table,
            jobs=args.jobs,
            cache=cache,
            progress=_progress(artifacts.name, args.verbose, jsonl),
            backend=backend,
        )
    finally:
        _close_progress_jsonl(jsonl)
    # stdout carries only the deterministic report (bit-identical for any
    # --jobs value and for warm re-runs); timing and cache telemetry go
    # to stderr.
    print(f"# dataset {artifacts.name}: {artifacts.input_count} inputs, "
          f"{artifacts.database.lag_count} lags")
    print(f"# {time.time() - t0:.1f}s wall", file=sys.stderr)
    _print_cache_summary(cache, stream=sys.stderr)
    print()
    print("Fig. 11 — lag duration distributions")
    print(figures.render_fig11(sweep))
    print()
    print("Fig. 12 — irritation and energy")
    print(figures.render_fig12(sweep))
    print()
    print("Fig. 13 — energy vs irritation")
    print(figures.render_fig13(sweep))
    return 0


def cmd_study(args) -> int:
    from repro.scenarios.config import canonical_scenario

    seed = _master_seed(args)
    backend, cache = _fleet_backend(args)
    names = list(args.datasets)
    if args.scenarios:
        names.extend(canonical_scenario(s) for s in args.scenarios)
    sweeps = {}
    artifacts_list = []
    # One reporter across every per-workload sweep: the JSONL stream is a
    # single ordered sequence (monotonic seq), re-bound per grid.
    jsonl = _progress_jsonl(args)
    reporter = _progress("study", args.verbose, jsonl)
    try:
        for name in names:
            artifacts = record_workload(dataset(name), master_seed=seed)
            artifacts_list.append(artifacts)
            if reporter is not None:
                reporter.label = name
            sweeps[name] = run_sweep(
                artifacts,
                reps=args.reps,
                master_seed=seed,
                jobs=args.jobs,
                cache=cache,
                progress=reporter,
                backend=backend,
            )
    finally:
        _close_progress_jsonl(jsonl)
    print("Fig. 10 — input classification")
    print(figures.render_fig10(artifacts_list))
    print()
    print("Fig. 14 — summary")
    print(figures.render_fig14(sweeps))
    print()
    savings = figures.headline_savings(sweeps)
    print("Headline savings")
    for key, value in savings.items():
        print(f"  {key}: {100 * value:.0f}%")
    # Telemetry on stderr: study stdout stays bit-identical across
    # --jobs values and warm re-runs, like sweep and explore.
    _print_cache_summary(cache, stream=sys.stderr)
    return 0


def _explore_rng(seed: int, args) -> random.Random:
    """A seeded RNG whose stream is unique to this exploration's identity."""
    identity = f"explore:{seed}:{args.dataset}:{args.governor}:{args.strategy}"
    digest = hashlib.sha256(identity.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _explore_progress(verbose: bool, jsonl_stream=None):
    """Explore's progress: terse per-spec stderr lines, optional JSONL.

    The explorer dispatches many small batches through one engine, so a
    grid-bound reporter makes no sense here; with ``--progress-jsonl``
    an unbound reporter streams ``run_completed`` telemetry instead,
    keeping the human lines in the explorer's own terse format.
    """
    hook = None
    if verbose:

        def hook(spec: RunSpec, cached: bool) -> None:
            suffix = " (cached)" if cached else ""
            print(f"# {spec.label()}{suffix}", file=sys.stderr)

    if jsonl_stream is None:
        return hook
    reporter = ProgressReporter(
        "explore", jsonl_stream=jsonl_stream, human=False
    )

    class _ExploreProgress:
        def observe(self, spec, cached=False, telemetry=None):
            reporter.observe(spec, cached=cached, telemetry=telemetry)
            if hook is not None:
                hook(spec, cached)

        def fleet_summary(self, stats, cache=None):
            reporter.fleet_summary(stats, cache)

        def note_capture_seconds(self, seconds):
            reporter.note_capture_seconds(seconds)

    return _ExploreProgress()


def cmd_explore(args) -> int:
    t0 = time.time()
    seed = _master_seed(args)
    backend, cache = _fleet_backend(args)
    args.dataset = _workload_name(args)  # canonicalised before recording
    space = builtin_space(args.governor)  # validated before recording
    strategy = make_strategy(
        args.strategy,
        reps=args.reps,
        irritation_weight=args.irritation_weight,
    )
    artifacts = record_workload(dataset(args.dataset), master_seed=seed)
    jsonl = _progress_jsonl(args)
    try:
        evaluator = ExploreEvaluator(
            artifacts,
            jobs=args.jobs,
            cache=cache,
            master_seed=seed,
            oracle_reps=args.reps,
            progress=_explore_progress(args.verbose, jsonl),
            backend=backend,
        )
        scores = strategy.search(
            space, evaluator.evaluate, args.budget, _explore_rng(seed, args)
        )
        baselines = []
        if not args.no_baselines:
            stock = [g for g in GOVERNORS if g != args.governor]
            baselines = evaluator.evaluate([args.governor] + stock, args.reps)
    finally:
        _close_progress_jsonl(jsonl)

    # stdout carries only the deterministic report (bit-identical for any
    # --jobs and for warm re-runs); telemetry goes to stderr.
    print(f"# explore dataset {args.dataset}: governor={args.governor} "
          f"strategy={strategy.name} budget={args.budget} "
          f"space={space.size} reps={args.reps}")
    print()
    print("Pareto frontier vs oracle")
    from repro.obs.session import trace_enabled

    # The dominant-cause column only exists under REPRO_TRACE=1: the
    # untraced report must stay byte-identical to pre-attribution output.
    oracle_irritation = evaluator.oracle.irritation().total_seconds
    print(render_frontier_report(
        scores, oracle_irritation, baselines, show_causes=trace_enabled()
    ))
    print(f"# {evaluator.replays_executed} replay(s) executed, "
          f"{evaluator.cache_hits} served from cache "
          f"({time.time() - t0:.1f}s wall)", file=sys.stderr)
    _print_cache_summary(cache, stream=sys.stderr)
    return 0


def cmd_perf(args) -> int:
    from repro.perf import (
        append_entry,
        check_regression,
        load_baseline,
        run_suite,
        write_baseline,
    )
    from repro.perf.gate import DEFAULT_TOLERANCE
    from repro.perf.harness import render_results

    scenario = None
    if args.scenario:
        from repro.perf.harness import SUITES
        from repro.scenarios.config import canonical_scenario

        scenario = canonical_scenario(args.scenario)
        if "macro_study" not in SUITES.get(args.suite, ()):
            raise ReproError(
                f"--scenario only applies to suites that run the "
                f"study-cell macro benchmark (study, macro, all), not "
                f"{args.suite!r}"
            )
        if args.update_baseline:
            raise ReproError(
                "--update-baseline measures the stock macro workloads; "
                "it cannot be written from a --scenario run"
            )
    results = run_suite(
        suite=args.suite,
        repeats=args.repeats,
        profile_path=args.profile,
        scenario=scenario,
    )
    print(render_results(results))
    if args.profile:
        print(f"# profile written to {args.profile}", file=sys.stderr)
    if scenario is not None and not args.no_trajectory:
        # Scenario throughput is not comparable with the stock macro
        # entries the trajectory tracks; never mix them.
        args.no_trajectory = True
        print(
            "# trajectory append skipped: scenario runs are diagnostics, "
            "not stock trajectory points",
            file=sys.stderr,
        )
    if not args.no_trajectory:
        entry = append_entry(args.trajectory, results, label=args.label)
        print(
            f"# trajectory entry {entry['recorded_at']} appended to "
            f"{args.trajectory}",
            file=sys.stderr,
        )
    if args.update_baseline:
        write_baseline(args.baseline, results)
        print(f"# baseline updated: {args.baseline}", file=sys.stderr)
        if args.check:
            print(
                "# --check skipped: gating against a baseline just written "
                "from this run is vacuous",
                file=sys.stderr,
            )
        return 0
    if args.check:
        from repro.perf.harness import MACRO_BENCHES, MICRO_BENCHES

        if scenario is not None:
            # The committed macro_study floor measures the stock dataset;
            # gate everything else this run produced.
            results = [r for r in results if r.name != "macro_study"]
            print(
                "# macro_study excluded from the gate: measured on "
                f"{scenario}, not the stock workload",
                file=sys.stderr,
            )
        if not results:
            print("# --check skipped: no gateable benchmarks in this run",
                  file=sys.stderr)
            return 0

        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        failures = check_regression(
            results,
            load_baseline(args.baseline),
            tolerance,
            known_benchmarks=set(MICRO_BENCHES) | set(MACRO_BENCHES),
        )
        if failures:
            print()
            print("PERF REGRESSION GATE FAILED")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print()
        print(f"# perf gate passed (tolerance {tolerance:.2f})")
    return 0


def cmd_trace(args) -> int:
    """Replay one workload with full observability and export the trace."""
    from repro import obs
    from repro.harness.experiment import replay_run
    from repro.scenarios.config import canonical_scenario

    seed = _master_seed(args)
    name = (
        canonical_scenario(args.workload)
        if "=" in args.workload
        else args.workload
    )
    artifacts = record_workload(dataset(name), master_seed=seed)
    session = obs.ObsSession.for_tracing()
    with obs.observed(session):
        record = replay_run(
            artifacts, args.config, rep=args.rep, master_seed=seed
        )
    run_label = f"{name} [{args.config}]"
    session.tracer.write(args.output, run_label)
    # Summary on stderr only: like every other command, stdout stays
    # reserved for deterministic study output.
    counters = record.obs["counters"] if record.obs else {}
    print(
        f"# trace: {session.tracer.event_count} events -> {args.output}",
        file=sys.stderr,
    )
    print(
        f"# run: {counters.get('engine.events_dispatched', 0)} events "
        f"dispatched, {counters.get('cpufreq.transitions', 0)} OPP "
        f"transitions, {counters.get('frames.composed', 0)} frames, "
        f"{counters.get('match.lags_matched', 0)} lags matched, "
        f"{counters.get('timer.ticks_elided', 0)} ticks elided",
        file=sys.stderr,
    )
    if args.obs_json:
        import json as json_module

        Path(args.obs_json).write_text(
            json_module.dumps(record.obs, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"# obs section -> {args.obs_json}", file=sys.stderr)
    return 0


def cmd_attribute(args) -> int:
    """Explain every irritation window: per-cause breakdown + annotated trace.

    stdout carries only the deterministic attribution report (the CI
    perf-smoke job pins it byte-identical across ``--jobs``); trace and
    telemetry lines go to stderr.
    """
    import json as json_module

    from repro import obs
    from repro.harness.experiment import replay_run
    from repro.obs.attribution import (
        annotate_document,
        attribute_record,
        render_report,
    )
    from repro.scenarios.config import canonical_scenario

    seed = _master_seed(args)
    name = (
        canonical_scenario(args.workload)
        if "=" in args.workload
        else args.workload
    )
    artifacts = record_workload(dataset(name), master_seed=seed)
    session = obs.ObsSession.for_tracing()
    with obs.observed(session):
        record = replay_run(
            artifacts, args.config, rep=args.rep, master_seed=seed
        )
    attribution = attribute_record(record, boosts=session.decisions.boosts)
    if args.output:
        run_label = f"{name} [{args.config}]"
        document = annotate_document(
            session.tracer.to_chrome_trace(run_label), attribution
        )
        Path(args.output).write_text(
            json_module.dumps(document, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        print(
            f"# annotated trace: {len(document['traceEvents'])} events "
            f"-> {args.output}",
            file=sys.stderr,
        )
    print(render_report(attribution))
    return 0


def cmd_demand(args) -> int:
    """Inspect a workload's demand trace: stats, schema validation, export.

    Captures the trace fresh (or loads ``--input``, e.g. a fleet-cached
    ``demand/<key>.json``), prints its summary counters and content hash
    as deterministic JSON on stdout, and validates the schema contract —
    exit 1 on any violation.  ``-o`` exports the full trace JSON (the CI
    demand-smoke job uploads it as an artifact).
    """
    import json as json_module

    from repro.demand import DemandTrace, DemandTraceError, capture_demand
    from repro.scenarios.config import canonical_scenario

    seed = _master_seed(args)
    name = (
        canonical_scenario(args.workload)
        if "=" in args.workload
        else args.workload
    )
    if args.input:
        trace = DemandTrace.loads(
            Path(args.input).read_text(encoding="utf-8")
        )
        print(f"# demand trace <- {args.input}", file=sys.stderr)
    else:
        artifacts = record_workload(dataset(name), master_seed=seed)
        capture_start = time.perf_counter()
        trace = capture_demand(artifacts)
        print(
            f"# captured in {time.perf_counter() - capture_start:.2f}s "
            f"at {trace.capture_config}",
            file=sys.stderr,
        )
    report = dict(trace.stats())
    report["content_hash"] = trace.content_hash()
    report["schema_version"] = trace.schema_version
    print(json_module.dumps(report, indent=2, sort_keys=True))
    if args.output:
        Path(args.output).write_text(trace.dumps(), encoding="utf-8")
        print(f"# demand trace -> {args.output}", file=sys.stderr)
    try:
        trace.validate()
    except DemandTraceError as exc:
        print(f"repro-qoe: demand trace invalid: {exc}", file=sys.stderr)
        return 1
    print("# schema contract: OK", file=sys.stderr)
    return 0


def cmd_trace_diff(args) -> int:
    """Align two exported traces; report span deltas and first divergence."""
    from repro.obs.attribution import diff_trace_files, render_diff

    diff = diff_trace_files(args.trace_a, args.trace_b)
    print(render_diff(diff))
    return 1 if diff.diverging else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qoe",
        description=(
            "Reproduction of Seeker et al., 'Measuring QoE of Interactive "
            "Workloads and Characterising Frequency Governors on Mobile "
            "Devices' (IISWC 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="print Table I")
    p_table1.set_defaults(func=cmd_table1)

    p_classify = sub.add_parser("classify", help="Fig. 10 input classification")
    p_classify.add_argument(
        "--datasets", nargs="+", default=dataset_names(), metavar="DS"
    )
    _add_seed_flag(p_classify)
    p_classify.set_defaults(func=cmd_classify)

    p_sweep = sub.add_parser("sweep", help="one dataset's 85-run sweep")
    p_sweep.add_argument("--dataset", default="02")
    p_sweep.add_argument("--reps", type=int, default=5)
    p_sweep.add_argument(
        "--config", action="append", dest="configs", metavar="CFG",
        help=(
            "replace the stock governors with this config string, e.g. "
            "'qoe_aware:boost=1_036_800,settle=40000' (repeatable; the 14 "
            "fixed OPPs always run — the oracle is composed from them)"
        ),
    )
    p_sweep.add_argument("--verbose", action="store_true")
    _add_scenario_flag(p_sweep)
    _add_fleet_flags(p_sweep)
    _add_seed_flag(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_study = sub.add_parser("study", help="full study: Figs. 10, 14 + headline")
    p_study.add_argument(
        "--datasets", nargs="+", default=dataset_names(), metavar="DS"
    )
    p_study.add_argument("--reps", type=int, default=5)
    p_study.add_argument(
        "--scenario", action="append", dest="scenarios", metavar="SPEC",
        help=(
            "also study this synthesized scenario, e.g. "
            "'persona=reader,seed=1,duration=2m' (repeatable)"
        ),
    )
    p_study.add_argument("--verbose", action="store_true")
    _add_fleet_flags(p_study)
    _add_seed_flag(p_study)
    p_study.set_defaults(func=cmd_study)

    p_explore = sub.add_parser(
        "explore",
        help="search a governor's parameter space, report the Pareto frontier",
    )
    p_explore.add_argument("--dataset", default="02")
    p_explore.add_argument(
        "--governor", default="qoe_aware", metavar="GOV",
        help=f"parameter space to search (known: "
             f"{', '.join(builtin_space_names())})",
    )
    p_explore.add_argument(
        "--strategy", default="random", metavar="STRAT",
        help=f"search strategy (known: {', '.join(strategy_names())})",
    )
    p_explore.add_argument(
        "--budget", type=_positive_int, default=16, metavar="N",
        help="maximum candidate evaluations to spend (default: 16)",
    )
    p_explore.add_argument(
        "--reps", type=_positive_int, default=1, metavar="R",
        help="repetitions per candidate evaluation (default: 1)",
    )
    p_explore.add_argument(
        "--irritation-weight", type=float,
        default=DEFAULT_IRRITATION_WEIGHT, metavar="W",
        help=(
            "energy-per-irritation-second exchange rate used when a "
            f"strategy ranks candidates (default: {DEFAULT_IRRITATION_WEIGHT})"
        ),
    )
    p_explore.add_argument(
        "--no-baselines", action="store_true",
        help="skip scoring the stock governors for reference",
    )
    p_explore.add_argument("--verbose", action="store_true")
    _add_scenario_flag(p_explore)
    _add_fleet_flags(p_explore)
    _add_seed_flag(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_perf = sub.add_parser(
        "perf",
        help="replay-throughput benchmarks, trajectory and regression gate",
    )
    p_perf.add_argument(
        "--suite", default="micro", metavar="SUITE",
        help="micro (engine/kernel-only, seconds), study (one study-cell "
             "macro), macro (study + day-long), all (default: micro)",
    )
    p_perf.add_argument(
        "--repeats", type=_positive_int, default=3, metavar="N",
        help="best-of-N timing for micro benchmarks (default: 3)",
    )
    p_perf.add_argument(
        "--profile", metavar="PATH",
        help="also run the suite once under cProfile, dump stats to PATH",
    )
    p_perf.add_argument(
        "--trajectory", default="BENCH_replay.json", metavar="PATH",
        help="perf trajectory file to append to (default: BENCH_replay.json)",
    )
    p_perf.add_argument(
        "--no-trajectory", action="store_true",
        help="do not append this run to the trajectory file",
    )
    p_perf.add_argument(
        "--label", default=None, metavar="TEXT",
        help="label recorded with the trajectory entry",
    )
    p_perf.add_argument(
        "--check", action="store_true",
        help="enforce the regression gate against the committed baseline",
    )
    p_perf.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json", metavar="PATH",
        help="baseline file for --check/--update-baseline "
             "(default: benchmarks/perf_baseline.json)",
    )
    p_perf.add_argument(
        "--tolerance", type=float, default=None, metavar="F",
        help="gate floor as a fraction of the baseline (default: 0.35)",
    )
    p_perf.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's throughput as the new committed baseline",
    )
    p_perf.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help=(
            "run the study-cell macro benchmark on a synthesized scenario "
            "instead of the stock dataset (disables --check)"
        ),
    )
    p_perf.set_defaults(func=cmd_perf)

    p_trace = sub.add_parser(
        "trace",
        help=(
            "replay one workload with full observability; export a "
            "Perfetto-loadable Chrome trace-event JSON"
        ),
    )
    p_trace.add_argument(
        "workload", metavar="WORKLOAD",
        help=(
            "dataset name ('02') or scenario spec "
            "('persona=gamer,seed=7,duration=45s')"
        ),
    )
    p_trace.add_argument(
        "--config", default="interactive", metavar="CFG",
        help="governor or fixed:<khz> to replay under (default: interactive)",
    )
    p_trace.add_argument(
        "-o", "--output", default="trace.json", metavar="PATH",
        help="trace output file (default: trace.json)",
    )
    p_trace.add_argument(
        "--rep", type=int, default=0, metavar="R",
        help="repetition index to replay (default: 0)",
    )
    p_trace.add_argument(
        "--obs-json", default=None, metavar="PATH",
        help="also dump the run's obs metrics section as JSON to PATH",
    )
    _add_seed_flag(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_attr = sub.add_parser(
        "attribute",
        help=(
            "decompose every irritation window into named causes; "
            "print the per-cause breakdown and annotate the trace"
        ),
    )
    p_attr.add_argument(
        "workload", metavar="WORKLOAD",
        help=(
            "dataset name ('02') or scenario spec "
            "('persona=gamer,seed=7,duration=45s')"
        ),
    )
    p_attr.add_argument(
        "--config", default="interactive", metavar="CFG",
        help="governor or fixed:<khz> to replay under (default: interactive)",
    )
    p_attr.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also write the cause-annotated Chrome trace JSON to PATH",
    )
    p_attr.add_argument(
        "--rep", type=int, default=0, metavar="R",
        help="repetition index to replay (default: 0)",
    )
    p_attr.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help=(
            "accepted for fleet-CLI parity; attribution replays one run "
            "in-process, so the report is identical for any N"
        ),
    )
    _add_seed_flag(p_attr)
    p_attr.set_defaults(func=cmd_attribute)

    p_demand = sub.add_parser(
        "demand",
        help=(
            "capture a workload's demand trace; print stats and validate "
            "the schema contract (exit 1 on violations)"
        ),
    )
    p_demand.add_argument(
        "workload", metavar="WORKLOAD",
        help=(
            "dataset name ('02') or scenario spec "
            "('persona=gamer,seed=7,duration=45s')"
        ),
    )
    p_demand.add_argument(
        "-i", "--input", default=None, metavar="PATH",
        help="validate an existing trace JSON instead of capturing",
    )
    p_demand.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="export the full trace JSON (for CI artifacts)",
    )
    _add_seed_flag(p_demand)
    p_demand.set_defaults(func=cmd_demand)

    p_diff = sub.add_parser(
        "trace-diff",
        help=(
            "align two exported traces; report span-level deltas and the "
            "first causally-diverging irritation window (exit 1 if any)"
        ),
    )
    p_diff.add_argument("trace_a", metavar="TRACE_A", help="baseline trace JSON")
    p_diff.add_argument("trace_b", metavar="TRACE_B", help="candidate trace JSON")
    p_diff.set_defaults(func=cmd_trace_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-qoe: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: normal exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Recording and replaying one workload execution.

``record_workload`` performs the paper's part A once per dataset: a
scripted user exercises the device (pinned at the lowest frequency, so
recorded timings stay valid at every configuration), the recorder captures
the getevent trace, the capture card films the screen, and the
AutoAnnotator builds the annotation database from the suggester's
candidates.

``replay_run`` is part B, repeatable at will: replay the trace under any
governor or fixed frequency, film the screen, and let the matcher produce
the lag profile — plus the energy/frequency/busy traces the study needs.
By default the run *streams*: frames flow through the online matcher and
are released as annotation windows close, and the device accumulates its
traces compactly, so a replay costs O(active-window) memory instead of
O(session).  ``REPRO_STREAM=0`` restores the batch
materialise-then-analyze path; output is bit-identical either way.  The
result is a schema-versioned :class:`~repro.results.RunRecord` — the one
shape results take across fleet IPC and the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import AnnotationDatabase, AutoAnnotator, Matcher, OnlineMatcher
from repro.analysis.classify import InputClassification, classify_workload
from repro.apps import install_standard_apps
from repro.apps.services import BackgroundServices
from repro.capture import CaptureCard, stream_enabled
from repro.core.errors import ReproError, WorkloadError
from repro.core.rng import RngStreams
from repro.core.simtime import seconds
from repro.device.device import Device, DeviceConfig
from repro.metrics.hci import SHNEIDERMAN_MODEL, HciModel
from repro.obs import session as obs_session
from repro.replay import GeteventRecorder, ReplayAgent
from repro.replay.trace import EventTrace
from repro.results import RunRecord
from repro.scenarios.profiles import device_config_for
from repro.uifw.view import WindowManager
from repro.workloads.datasets import DatasetSpec, check_recording
from repro.workloads.sessions import ScriptedUser

# Recording runs at the device's lowest OPP (§II-E); on the stock
# profile that is the 0.30 GHz point this constant documents.
RECORDING_FREQ_KHZ = 300_000
QUIESCENCE_LIMIT_US = seconds(120)
RUN_TAIL_US = seconds(5)
DEFAULT_MASTER_SEED = 2014


def _build_device(
    governor: str,
    noise_streams: RngStreams,
    device_config: DeviceConfig | None = None,
    **governor_tunables,
) -> tuple[Device, WindowManager, BackgroundServices]:
    device = Device(device_config)
    wm = WindowManager(device)
    install_standard_apps(wm)
    services = BackgroundServices(
        device.engine, device.scheduler, noise_streams.stream("services")
    )
    services.start()
    device.set_governor(governor, **governor_tunables)
    return device, wm, services


@dataclass(slots=True)
class WorkloadArtifacts:
    """Everything needed to replay and evaluate a recorded workload."""

    spec: DatasetSpec
    trace: EventTrace
    database: AnnotationDatabase
    duration_us: int
    classification: InputClassification
    recording_master_seed: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def input_count(self) -> int:
        return len(self.database.gestures)

    def fingerprint(self) -> str:
        """Content hash of the replay-relevant state (fleet cache key part)."""
        from repro.fleet.cache import workload_fingerprint

        return workload_fingerprint(self)

    def save(self, directory) -> None:
        """Persist trace + annotation database + metadata to a directory.

        A saved workload is the paper's reusable artefact: "the workload
        will be reusable time and again".
        """
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.trace.save(directory / "trace.getevent")
        self.database.save(directory / "annotations")
        meta = {
            "dataset": self.spec.name,
            "duration_us": self.duration_us,
            "recording_master_seed": self.recording_master_seed,
            "classification": self.classification.as_row(),
        }
        (directory / "meta.json").write_text(
            json.dumps(meta, indent=2), encoding="utf-8"
        )

    @classmethod
    def load(
        cls, directory, verify_classification: bool = False
    ) -> "WorkloadArtifacts":
        """Load artifacts previously written by :meth:`save`.

        The classification row is read straight from ``meta.json`` —
        re-running the full gesture decode over the trace on every load
        is wasted work the recording already paid for.  Pass
        ``verify_classification=True`` to recompute it anyway and fail
        loudly if the saved row no longer matches (e.g. the classifier
        changed since the artifacts were written).
        """
        import json
        from pathlib import Path

        from repro.workloads.datasets import dataset as dataset_lookup

        directory = Path(directory)
        meta = json.loads((directory / "meta.json").read_text(encoding="utf-8"))
        trace = EventTrace.load(directory / "trace.getevent")
        database = AnnotationDatabase.load(directory / "annotations")
        spec = dataset_lookup(meta["dataset"])
        saved_row = meta.get("classification")
        if saved_row is None or verify_classification:
            recomputed = classify_workload(meta["dataset"], trace, database)
        if saved_row is None:
            classification = recomputed
        else:
            classification = InputClassification(
                dataset=saved_row["dataset"],
                taps=saved_row["taps"],
                swipes=saved_row["swipes"],
                actual_lags=saved_row["actual_lags"],
                spurious_lags=saved_row["spurious_lags"],
            )
            if verify_classification and classification != recomputed:
                raise WorkloadError(
                    f"saved classification of {meta['dataset']!r} "
                    f"({classification.as_row()}) does not match "
                    f"recomputation ({recomputed.as_row()}); re-record or "
                    "re-save the artifacts"
                )
        return cls(
            spec=spec,
            trace=trace,
            database=database,
            duration_us=meta["duration_us"],
            classification=classification,
            recording_master_seed=meta["recording_master_seed"],
        )


# The typed run artifact now lives in repro.results; the old name stays
# importable for callers written against the pre-streaming API.
RunResult = RunRecord


def record_workload(
    spec: DatasetSpec,
    master_seed: int = DEFAULT_MASTER_SEED,
    hci_model: HciModel = SHNEIDERMAN_MODEL,
    device_config: DeviceConfig | None = None,
) -> WorkloadArtifacts:
    """Record, capture and annotate one dataset (paper Fig. 4, part A)."""
    streams = RngStreams(master_seed).fork(f"dataset:{spec.name}")
    if device_config is None:
        device_config = device_config_for(spec)
    device, wm, _services = _build_device(
        f"fixed:{device_config.frequency_table.min_khz}",
        streams.fork("record-noise"),
        device_config,
    )
    recorder = GeteventRecorder(device.input_subsystem)
    recorder.start()
    card = CaptureCard(device.display)
    card.start(device.engine.now)

    user = ScriptedUser(wm, spec.plan(streams.stream("plan")), spec.duration_us)
    user.start()
    device.run_for(spec.duration_us)

    # Let the last interaction finish rendering before cutting the video.
    # A gesture can still be in flight at the deadline (finger down, up
    # not yet delivered) — its interaction only opens once the finger
    # lifts, so the wait must cover in-flight contacts too or the video
    # gets cut before the final interaction has even begun.
    def _recording_pending() -> bool:
        return device.touchscreen.contact_active or any(
            not r.complete for r in wm.journal.interactions
        )

    waited = 0
    while _recording_pending() and waited < QUIESCENCE_LIMIT_US:
        device.run_for(seconds(1))
        waited += seconds(1)
    if _recording_pending():
        raise WorkloadError(
            f"dataset {spec.name}: interactions still pending "
            f"{QUIESCENCE_LIMIT_US} us after the session deadline"
        )
    device.run_for(seconds(2))

    trace = recorder.stop()
    video = card.stop(device.engine.now)
    duration_us = device.engine.now

    annotator = AutoAnnotator(spec.name, hci_model=hci_model)
    database = annotator.annotate(video, wm.journal)
    classification = classify_workload(spec.name, trace, database)
    check_recording(spec, classification.total_inputs, duration_us)
    return WorkloadArtifacts(
        spec=spec,
        trace=trace,
        database=database,
        duration_us=duration_us,
        classification=classification,
        recording_master_seed=master_seed,
    )


def replay_run(
    artifacts: WorkloadArtifacts,
    config: str,
    rep: int = 0,
    master_seed: int = DEFAULT_MASTER_SEED,
    device_config: DeviceConfig | None = None,
    frame_tap=None,
    on_video=None,
    **governor_tunables,
) -> RunRecord:
    """Replay a recorded workload under a configuration (part B).

    ``config`` is a governor name (``ondemand``, ``conservative``,
    ``interactive``, …) or ``fixed:<khz>`` for one of the 14 operating
    points.

    By default the run streams: captured frames flow through the online
    matcher as the replay executes and are released once their annotation
    windows close, so memory stays O(active-window) instead of
    O(session).  ``REPRO_STREAM=0`` restores the batch path (materialise
    a full video, match post-hoc); output is bit-identical either way.

    ``frame_tap``, if given, is a :class:`~repro.capture.stream.FrameTap`
    subscribed to the capture — the golden-equivalence tests digest the
    frame journal through one without forcing video materialisation.
    """
    if on_video is not None:
        raise ReproError(
            "replay_run(on_video=...) was removed by the streaming run "
            "pipeline: no Video is materialised on the default path. "
            "Pass frame_tap=<FrameTap> to observe the capture's segment "
            "stream instead (identical in streaming and batch modes)."
        )
    # Observability: an externally installed session (the ``trace``
    # command, tests) is used as-is; otherwise REPRO_TRACE=1 installs a
    # per-run metrics + flight-recorder session for this replay only.
    # With neither, obs stays None and every instrumentation site below
    # reduces to one ``is not None`` test.
    obs = obs_session.active()
    owns_session = False
    if obs is None and obs_session.trace_enabled():
        obs = obs_session.ObsSession.for_run()
        obs_session.install(obs)
        owns_session = True
    try:
        streams = RngStreams(master_seed).fork(
            f"replay:{artifacts.name}:{config}:{rep}"
        )
        if device_config is None:
            device_config = device_config_for(artifacts.spec)
        device, wm, _services = _build_device(
            config, streams, device_config, **governor_tunables
        )
        device.cpu.enable_busy_trace()
        agent = ReplayAgent(device.engine, device.input_subsystem)
        agent.schedule(artifacts.trace)
        card = CaptureCard(device.display)
        streaming = stream_enabled()
        online: OnlineMatcher | None = None
        if streaming:
            online = OnlineMatcher(artifacts.database)
            card.add_tap(online)
        if frame_tap is not None:
            card.add_tap(frame_tap)
        card.start(device.engine.now, streaming=streaming)

        run_window = artifacts.duration_us + RUN_TAIL_US
        device.run_for(run_window)

        video = card.stop(device.engine.now)
        if streaming:
            profile = online.profile()
        else:
            profile = Matcher(artifacts.database).match(video)
        record = RunRecord(
            workload=artifacts.name,
            config=config,
            rep=rep,
            duration_us=run_window,
            energy_j=device.cpu.energy_joules(),
            dynamic_energy_j=device.cpu.dynamic_energy_joules(),
            busy_us=device.cpu.busy_time_total(),
            transitions=device.policy.transition_points(),
            busy_intervals=device.cpu.busy_pairs(),
            lags=profile.lags,
        )
        if obs is not None:
            snapshot = obs.harvest_run(device.engine, governor=device.governor)
            if obs.decisions is not None:
                # The attribution engine consumes only mode-invariant
                # record state + boost timestamps, so the harvested cause
                # profile is identical across fastpath/streaming modes.
                from repro.obs.attribution import attribute_record

                snapshot["attribution"] = attribute_record(
                    record, boosts=obs.decisions.boosts
                ).summary()
            record.obs = snapshot
        return record
    finally:
        if owns_session:
            obs_session.uninstall()

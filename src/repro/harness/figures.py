"""Regeneration of every table and figure in the paper's evaluation.

Each ``figNN_*`` function returns plain data (rows/series) and has a
``render_*`` companion producing the printable table the benchmarks emit.
Figure/table numbering follows the paper:

* Table I — workload descriptions (:func:`table1_rows`)
* Fig. 3  — ondemand vs oracle frequency trace snapshot (:func:`fig3_series`)
* Fig. 5  — getevent excerpt (:func:`fig5_lines`)
* Fig. 7  — suggester demo (:func:`fig7_suggester_demo`)
* Fig. 10 — input classification (:func:`fig10_rows`)
* Fig. 11 — lag-duration distributions (:func:`fig11_rows`)
* Fig. 12 — irritation + energy per configuration (:func:`fig12_rows`)
* Fig. 13 — energy/irritation scatter (:func:`fig13_rows`)
* Fig. 14 — cross-dataset summary (:func:`fig14_rows`)
* §I/§VI  — headline savings (:func:`headline_savings`)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.simtime import seconds
from repro.harness.experiment import WorkloadArtifacts
from repro.harness.sweep import GOVERNORS, SweepResult, config_label
from repro.metrics.distribution import DistributionSummary, summarize_lags
from repro.oracle.profile import FrequencyProfile
from repro.replay.getevent import format_event
from repro.workloads.datasets import DATASETS


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


# --- Table I -----------------------------------------------------------------------


def table1_rows() -> list[list[str]]:
    """Dataset descriptions (paper Table I) — registry-driven."""
    from repro.workloads.datasets import dataset_names

    return [[name, DATASETS[name].description] for name in dataset_names()]


def render_table1() -> str:
    return format_table(["Dataset", "Description"], table1_rows())


# --- Fig. 3: trace snapshot ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TraceSnapshot:
    """Fig. 3 data: two frequency series around one input."""

    input_time_s: float
    serviced_time_s: float
    window_start_s: float
    window_end_s: float
    governor_series: list[tuple[float, float]]  # (seconds, GHz)
    oracle_series: list[tuple[float, float]]


def fig3_series(
    sweep: SweepResult,
    governor: str = "ondemand",
    lag_index: int | None = None,
    margin_us: int = seconds(2),
) -> TraceSnapshot:
    """The snapshot of governor vs oracle frequency around one lag."""
    run = sweep.runs[governor][0]
    oracle = sweep.oracle
    lags = oracle.lags
    if not lags:
        raise ReproError("workload has no lags to snapshot")
    if lag_index is None:
        # The paper snapshots a substantial interaction; pick the lag with
        # the longest oracle duration in the middle half of the run.
        mid = [
            (i, lag)
            for i, lag in enumerate(lags)
            if 0.25 <= lag.begin_us / oracle.profile.end_us <= 0.75
        ] or list(enumerate(lags))
        lag_index = max(mid, key=lambda pair: pair[1].duration_us)[0]
    lag = lags[lag_index]
    start = max(0, lag.begin_us - margin_us)
    end = lag.begin_us + lag.duration_us + margin_us

    governor_profile = FrequencyProfile.from_transitions(
        run.transitions, run.duration_us
    )
    def series(profile: FrequencyProfile) -> list[tuple[float, float]]:
        points = []
        for segment in profile.window(start, end):
            points.append((segment.start_us / 1e6, segment.freq_khz / 1e6))
            points.append((segment.end_us / 1e6, segment.freq_khz / 1e6))
        return points

    return TraceSnapshot(
        input_time_s=lag.begin_us / 1e6,
        serviced_time_s=(lag.begin_us + lag.duration_us) / 1e6,
        window_start_s=start / 1e6,
        window_end_s=end / 1e6,
        governor_series=series(governor_profile),
        oracle_series=series(oracle.profile),
    )


def render_fig3(snapshot: TraceSnapshot, governor: str = "ondemand") -> str:
    rows = []
    rows.append(["A: input received", f"{snapshot.input_time_s:.2f} s", ""])
    rows.append(["B: input serviced", f"{snapshot.serviced_time_s:.2f} s", ""])
    for label, series in (
        (governor, snapshot.governor_series),
        ("oracle", snapshot.oracle_series),
    ):
        for t, ghz in series:
            rows.append([label, f"{t:.3f} s", f"{ghz:.2f} GHz"])
    return format_table(["series", "time", "frequency"], rows)


# --- Fig. 5: getevent excerpt -----------------------------------------------------------


def fig5_lines(artifacts: WorkloadArtifacts, count: int = 8) -> list[str]:
    """The first tap's raw getevent lines (paper Fig. 5)."""
    return [
        format_event(event, with_timestamp=False)
        for event in list(artifacts.trace)[:count]
    ]


# --- Fig. 7: suggester demo ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SuggesterDemo:
    """Fig. 7 data: the Gallery-launch lag through the suggester."""

    input_frame: int
    next_input_frame: int
    change_string: str
    suggested_frames: list[int]
    ground_truth_end_frame: int
    reduction_factor: float


def fig7_suggester_demo(freq_khz: int = 300_000) -> SuggesterDemo:
    """Run the paper's Fig. 7 scenario: a Gallery launch at the lowest
    frequency, suggester applied to the window between the two inputs."""
    from repro.analysis.suggester import (
        SuggesterConfig,
        change_string,
        reduction_factor,
        suggest,
    )
    from repro.apps import install_standard_apps
    from repro.capture import CaptureCard
    from repro.device.device import Device
    from repro.device.display import VSYNC_PERIOD_US
    from repro.uifw.view import WindowManager

    device = Device()
    wm = WindowManager(device)
    install_standard_apps(wm)
    device.set_governor(f"fixed:{freq_khz}")
    card = CaptureCard(device.display)
    card.start(device.engine.now)
    launcher = wm.app("launcher")
    gallery = wm.app("gallery")
    first_input = seconds(1)
    second_input = seconds(9)
    device.touchscreen.schedule_tap(
        first_input, launcher.tap_target("icon:gallery")
    )
    device.engine.schedule_at(
        second_input - 1,
        lambda: device.touchscreen.schedule_tap(
            second_input, gallery.tap_target("album:0")
        ),
    )
    device.run_for(seconds(12))
    video = card.stop(device.engine.now)

    record = wm.journal.interactions[0]
    config = SuggesterConfig(mask_rects=tuple(record.mask_rects))
    begin_frame = first_input // VSYNC_PERIOD_US
    end_frame = second_input // VSYNC_PERIOD_US
    suggestions = suggest(video, begin_frame, end_frame, config)
    assert record.end_time is not None
    return SuggesterDemo(
        input_frame=begin_frame,
        next_input_frame=end_frame,
        change_string=change_string(video, begin_frame, end_frame, config),
        suggested_frames=[s.frame_index for s in suggestions],
        ground_truth_end_frame=record.end_time // VSYNC_PERIOD_US + 1,
        reduction_factor=reduction_factor(video, begin_frame, end_frame, config),
    )


def collapse_change_string(bits: str) -> str:
    """Summarise a 0/1 string the way Fig. 7's curly brackets do."""
    if not bits:
        return ""
    out = []
    run_char = bits[0]
    run_len = 1
    for char in bits[1:]:
        if char == run_char:
            run_len += 1
            continue
        out.append(
            run_char * run_len if run_len < 4 else f"{run_char}{{x{run_len}}}"
        )
        run_char = char
        run_len = 1
    out.append(
        run_char * run_len if run_len < 4 else f"{run_char}{{x{run_len}}}"
    )
    return " ".join(out)


def render_fig7(demo: SuggesterDemo) -> str:
    lines = [
        f"input at frame {demo.input_frame}, next input at frame "
        f"{demo.next_input_frame}",
        f"change string: {collapse_change_string(demo.change_string)}",
        f"suggested lag-ending frames: {demo.suggested_frames}",
        f"ground-truth ending frame:   {demo.ground_truth_end_frame}",
        f"frames the user no longer inspects: reduction factor "
        f"{demo.reduction_factor:.1f}x",
    ]
    return "\n".join(lines)


# --- Fig. 10: input classification -------------------------------------------------------


def fig10_rows(artifacts_list: list[WorkloadArtifacts]) -> list[list[str]]:
    rows = []
    totals = []
    for artifacts in artifacts_list:
        c = artifacts.classification
        rows.append(
            [
                c.dataset,
                str(c.taps),
                str(c.swipes),
                str(c.actual_lags),
                str(c.spurious_lags),
                str(c.total_inputs),
            ]
        )
        totals.append(c)
    short = [c for c in totals if _is_short_workload(c.dataset)]
    if len(short) > 1:
        average = sum(c.total_inputs for c in short) / len(short)
        rows.append(["average", "", "", "", "", f"{average:.0f}"])
    return rows


def _is_short_workload(name: str) -> bool:
    """Registry-driven Fig. 10 average membership (not a hard-coded list)."""
    from repro.core.errors import WorkloadError
    from repro.workloads.datasets import SHORT_WORKLOAD_LIMIT_US, dataset

    try:
        spec = dataset(name)
    except WorkloadError:
        return True
    return spec.duration_us <= SHORT_WORKLOAD_LIMIT_US


def render_fig10(artifacts_list: list[WorkloadArtifacts]) -> str:
    return format_table(
        ["Dataset", "Taps", "Swipes", "Actual lags", "Spurious lags", "Events"],
        fig10_rows(artifacts_list),
    )


# --- Fig. 11: lag-duration distributions ---------------------------------------------------


def fig11_rows(sweep: SweepResult) -> dict[str, DistributionSummary]:
    """Violin-plot ingredients per configuration."""
    out: dict[str, DistributionSummary] = {}
    for config in sweep.configs():
        durations = sweep.pooled_lag_durations_ms(config)
        out[config_label(config, sweep.table)] = summarize_lags(durations)
    return out


def render_fig11(sweep: SweepResult) -> str:
    rows = []
    for label, summary in fig11_rows(sweep).items():
        rows.append(
            [
                label,
                str(summary.count),
                f"{summary.mean_ms:.0f}",
                f"{summary.q1_ms:.0f}",
                f"{summary.median_ms:.0f}",
                f"{summary.q3_ms:.0f}",
                f"{summary.whisker_high_ms:.0f}",
                f"{summary.max_ms:.0f}",
            ]
        )
    return format_table(
        ["config", "lags", "mean", "q1", "median", "q3", "whisk-hi", "max"],
        rows,
    )


# --- Fig. 12: irritation + energy ------------------------------------------------------------


def fig12_rows(sweep: SweepResult) -> list[list[str]]:
    rows = []
    for config in sweep.configs():
        rows.append(
            [
                config_label(config, sweep.table),
                f"{sweep.mean_irritation_s(config):.2f}",
                f"{sweep.mean_energy_j(config):.2f}",
                f"{sweep.energy_normalised_to_oracle(config):.2f}",
            ]
        )
    oracle = sweep.oracle
    rows.append(
        [
            "oracle",
            f"{oracle.irritation().total_seconds:.2f}",
            f"{oracle.energy_j:.2f}",
            "1.00",
        ]
    )
    return rows


def render_fig12(sweep: SweepResult) -> str:
    return format_table(
        ["config", "irritation s", "energy J", "energy/oracle"],
        fig12_rows(sweep),
    )


# --- Fig. 13: scatter ---------------------------------------------------------------------------


def fig13_rows(sweep: SweepResult) -> list[tuple[str, str, float, float]]:
    """(label, kind, energy_j, irritation_s) points; oracle included."""
    points = []
    for config in sweep.configs():
        kind = "governor" if not config.startswith("fixed:") else "fixed"
        points.append(
            (
                config_label(config, sweep.table),
                kind,
                sweep.mean_energy_j(config),
                sweep.mean_irritation_s(config),
            )
        )
    oracle = sweep.oracle
    points.append(
        ("oracle", "oracle", oracle.energy_j, oracle.irritation().total_seconds)
    )
    return points


def render_fig13(sweep: SweepResult) -> str:
    rows = [
        [label, kind, f"{energy:.2f}", f"{irritation:.2f}"]
        for label, kind, energy, irritation in fig13_rows(sweep)
    ]
    return format_table(["config", "kind", "energy J", "irritation s"], rows)


# --- Fig. 14: summary across datasets --------------------------------------------------------------


def fig14_rows(
    sweeps: dict[str, SweepResult]
) -> tuple[list[list[str]], list[list[str]]]:
    """(energy table rows, irritation table rows), datasets + averages."""
    datasets = sorted(sweeps)
    energy_rows = []
    irritation_rows = []
    for governor in GOVERNORS:
        energies = [
            sweeps[ds].energy_normalised_to_oracle(governor) for ds in datasets
        ]
        irritations = [sweeps[ds].mean_irritation_s(governor) for ds in datasets]
        energy_rows.append(
            [governor]
            + [f"{value:.2f}" for value in energies]
            + [f"{sum(energies) / len(energies):.2f}"]
        )
        irritation_rows.append(
            [governor]
            + [f"{value:.1f}" for value in irritations]
            + [f"{sum(irritations) / len(irritations):.1f}"]
        )
    return energy_rows, irritation_rows


def render_fig14(sweeps: dict[str, SweepResult]) -> str:
    datasets = sorted(sweeps)
    headers = ["governor"] + datasets + ["avg"]
    energy_rows, irritation_rows = fig14_rows(sweeps)
    return (
        "Energy normalised to oracle\n"
        + format_table(headers, energy_rows)
        + "\n\nUser irritation in seconds\n"
        + format_table(headers, irritation_rows)
    )


# --- headline savings -------------------------------------------------------------------------------


def headline_savings(sweeps: dict[str, SweepResult]) -> dict[str, float]:
    """The abstract's headline numbers.

    ``vs_best_governor``: energy saved by the oracle relative to the best
    standard governor that is no more irritating than the oracle + 1 s
    (the paper: "27% … whilst delivering a user experience that is better
    than that provided by the standard ANDROID frequency governor").
    ``vs_max_frequency``: energy saved relative to always running at the
    highest frequency ("47% … with performance indistinguishable from
    permanently running the CPU at the highest frequency").
    """
    vs_gov = []
    vs_max = []
    for sweep in sweeps.values():
        oracle_energy = sweep.oracle.energy_j
        android_default = sweep.mean_energy_j("interactive")
        vs_gov.append(1.0 - oracle_energy / android_default)
        max_khz = sweep.table.max_khz
        max_energy = sweep.mean_energy_j(f"fixed:{max_khz}")
        vs_max.append(1.0 - oracle_energy / max_energy)
    return {
        "vs_best_governor_max": max(vs_gov),
        "vs_best_governor_avg": sum(vs_gov) / len(vs_gov),
        "vs_max_frequency_max": max(vs_max),
        "vs_max_frequency_avg": sum(vs_max) / len(vs_max),
    }

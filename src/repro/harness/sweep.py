"""The full study sweep (paper §III-A).

"We replay each of them for each available core frequency … We also
replayed each workload for each of the three governors.  To reduce the
statistical error, we repeat this process 5 times per workload.
Altogether we execute each workload 5 * (14 + 3) = 85 times."

The 85 runs are enumerated as :class:`~repro.fleet.spec.RunSpec` values
and dispatched through a :class:`~repro.fleet.engine.FleetEngine`, so a
sweep can run on N workers (``jobs``) and reuse cached cells
(``cache``) while producing output bit-identical to the serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import ReproError
from repro.device.frequencies import FrequencyTable, snapdragon_8074_table
from repro.device.power import PowerModel
from repro.governors.config import format_config, parse_config
from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine
from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import (
    RunSpec,
    enumerate_sweep_specs,
    group_results_by_config,
)
from repro.harness.experiment import WorkloadArtifacts
from repro.results import RunRecord
from repro.metrics.hci import HciModel
from repro.oracle.builder import OracleResult, build_oracle

GOVERNORS = ("conservative", "interactive", "ondemand")


def governor_configs() -> list[str]:
    return list(GOVERNORS)


def fixed_configs(table: FrequencyTable | None = None) -> list[str]:
    table = table or snapdragon_8074_table()
    return [f"fixed:{khz}" for khz in table.frequencies_khz]


def sweep_configs(table: FrequencyTable | None = None) -> list[str]:
    """The 17 configurations of the study: 14 fixed + 3 governors."""
    return fixed_configs(table) + governor_configs()


def config_label(config: str, table: FrequencyTable | None = None) -> str:
    """Axis label: '0.96 GHz' for fixed configs, the canonical name otherwise.

    Malformed strings and out-of-table frequencies raise one-line
    :class:`ReproError` subclasses instead of bare ``ValueError``.
    """
    base, params = parse_config(config)
    if base == "fixed":
        table = table or snapdragon_8074_table()
        return table.point(params["khz"]).label
    return format_config(base, params)


def _trial_governor_context(table: FrequencyTable):
    """A throwaway GovernorContext for pre-flight construction checks."""
    from repro.core.engine import Engine
    from repro.device.cpu import CpuCore
    from repro.device.cpufreq import CpuFreqPolicy
    from repro.device.loadtracker import LoadTracker
    from repro.governors.base import GovernorContext

    engine = Engine()
    core = CpuCore(engine.clock, table)
    return GovernorContext(
        engine=engine,
        policy=CpuFreqPolicy(engine.clock, core),
        load_tracker=LoadTracker(engine.clock, core),
    )


def parse_sweep_configs(
    configs: list[str], table: FrequencyTable | None = None
) -> list[str]:
    """Validate and canonicalise user-supplied config strings.

    Every string must parse, name a registered governor (or ``fixed`` at
    an in-table OPP), use only parameter keys the governor declares, and
    carry values the governor accepts: frequency-valued parameters
    (:attr:`Governor.freq_params`) must be table OPPs — they would
    silently clamp at runtime otherwise — and each governor config is
    trial-constructed once so range violations (thresholds, timer
    periods) fail here.  All failures raise one-line
    :class:`ReproError`\\ s before any recording or replay starts.
    Duplicates (after canonicalisation) collapse.
    """
    import repro.governors  # noqa: F401  — populate the governor registry
    from repro.governors.base import create_governor, governor_factory

    table = table or snapdragon_8074_table()
    trial_context = None
    out: list[str] = []
    for config in configs:
        base, params = parse_config(config)
        if base == "fixed":
            khz = params["khz"]
            if not table.contains(khz):
                raise ReproError(
                    f"config {config!r}: {khz} kHz is not an operating "
                    "point of the table"
                )
        else:
            factory = governor_factory(base)
            for key in getattr(factory, "freq_params", ()):
                if key in params and not table.contains(params[key]):
                    raise ReproError(
                        f"config {config!r}: {key}={params[key]} is not "
                        "an operating point of the table"
                    )
            if trial_context is None:
                trial_context = _trial_governor_context(table)
            create_governor(config, trial_context)
        canonical = format_config(base, params)
        if canonical not in out:
            out.append(canonical)
    return out


@dataclass(slots=True)
class SweepResult:
    """All runs of one workload plus the composed oracle."""

    workload: str
    runs: dict[str, list[RunRecord]]
    oracle: OracleResult
    table: FrequencyTable

    def configs(self) -> list[str]:
        return list(self.runs)

    def mean_energy_j(self, config: str) -> float:
        """Mean dynamic energy — the paper's energy metric."""
        results = self._results(config)
        return sum(r.dynamic_energy_j for r in results) / len(results)

    def mean_total_energy_j(self, config: str) -> float:
        """Mean total energy including the idle floor (extra diagnostic)."""
        results = self._results(config)
        return sum(r.energy_j for r in results) / len(results)

    def mean_irritation_s(self, config: str, model: HciModel | None = None) -> float:
        results = self._results(config)
        return sum(r.irritation_seconds(model) for r in results) / len(results)

    def energy_normalised_to_oracle(self, config: str) -> float:
        return self.mean_energy_j(config) / self.oracle.energy_j

    def pooled_lag_durations_ms(self, config: str) -> list[float]:
        """All reps' lag durations pooled (Fig. 11 violin input)."""
        durations: list[float] = []
        for result in self._results(config):
            durations.extend(result.lag_profile.durations_ms())
        return durations

    def _results(self, config: str) -> list[RunRecord]:
        try:
            results = self.runs[config]
        except KeyError:
            raise ReproError(f"sweep has no config {config!r}") from None
        if not results:
            raise ReproError(f"sweep config {config!r} has no runs")
        return results


def _progress_hook(
    progress: Callable[[str, int], None] | ProgressReporter | None,
    specs: list[RunSpec],
) -> Callable[[RunSpec, bool], None] | None:
    """Adapt either progress style to the engine's ``(spec, cached)`` hook.

    A :class:`ProgressReporter` is bound to the spec list (so it can show
    ``config c/C, rep r/R`` and an ETA); a legacy ``(config, rep)``
    callable is wrapped unchanged.
    """
    if progress is None:
        return None
    if isinstance(progress, ProgressReporter):
        return progress.bind(specs)

    def hook(spec: RunSpec, cached: bool) -> None:
        progress(spec.config, spec.rep)

    return hook


def run_sweep(
    artifacts: WorkloadArtifacts,
    reps: int = 5,
    configs: list[str] | None = None,
    master_seed: int | None = None,
    power_model: PowerModel | None = None,
    table: FrequencyTable | None = None,
    progress: Callable[[str, int], None] | ProgressReporter | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    backend=None,
) -> SweepResult:
    """Execute the 85-run study for one workload and compose its oracle.

    ``jobs`` fans the runs out over a fleet of worker processes and
    ``cache`` serves already-computed cells from disk; ``backend``
    swaps the execution backend (a
    :class:`~repro.fleet.backends.registry.FleetBackend`, e.g. the
    distributed work queue).  All of them leave the result bit-identical
    to the serial, uncached path.

    By default the OPP table and power model come from the workload's
    device profile, so a scenario on ``quad_ls`` sweeps (and composes
    its oracle over) that device's table, not the stock one.
    """
    from repro.scenarios.profiles import frequency_table_for, power_model_for

    table = table or frequency_table_for(artifacts.spec)
    power_model = power_model or power_model_for(artifacts.spec)
    # Canonicalise up front so every spelling of a configuration shares
    # one cache cell, one RNG stream and one results key.
    configs = parse_sweep_configs(
        configs if configs is not None else sweep_configs(table), table
    )
    if master_seed is None:
        master_seed = artifacts.recording_master_seed
    specs = enumerate_sweep_specs(artifacts.name, configs, reps, master_seed)
    engine = FleetEngine(
        jobs=jobs,
        cache=cache,
        progress=_progress_hook(progress, specs),
        backend=backend,
    )
    results = engine.run(artifacts, specs)
    runs = group_results_by_config(specs, results, configs)
    oracle = compose_oracle_from_runs(artifacts, runs, table, power_model)
    return SweepResult(
        workload=artifacts.name, runs=runs, oracle=oracle, table=table
    )


def compose_oracle_from_runs(
    artifacts: WorkloadArtifacts,
    runs: dict[str, list[RunRecord]],
    table: FrequencyTable | None = None,
    power_model: PowerModel | None = None,
) -> OracleResult:
    """Build the oracle from the sweep's fixed-frequency runs."""
    table = table or snapdragon_8074_table()
    power_model = power_model or PowerModel()
    fixed_profiles = {}
    fixed_busy = {}
    fixed_energy = {}
    for khz in table.frequencies_khz:
        config = f"fixed:{khz}"
        results = runs.get(config)
        if not results:
            raise ReproError(
                f"oracle needs a run at every OPP; missing {config}"
            )
        reference = results[0]
        fixed_profiles[khz] = reference.lag_profile
        fixed_busy[khz] = reference.busy_timeline
        fixed_energy[khz] = sum(r.dynamic_energy_j for r in results) / len(
            results
        )
    return build_oracle(
        fixed_profiles,
        fixed_busy,
        fixed_energy,
        duration_us=artifacts.duration_us,
        table=table,
        power_model=power_model,
    )

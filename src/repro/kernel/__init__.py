"""OS layer: tasks, the run queue and kernel timers."""

from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND, PRIORITY_FOREGROUND, Task
from repro.kernel.timers import PeriodicTimer

__all__ = [
    "Scheduler",
    "Task",
    "PRIORITY_FOREGROUND",
    "PRIORITY_BACKGROUND",
    "PeriodicTimer",
]

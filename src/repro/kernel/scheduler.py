"""Single-core preemptive scheduler.

Two priority bands (foreground / background) with FIFO order inside each
band; a foreground arrival preempts running background work.  The scheduler
drives the core's busy state and recomputes the running task's completion
time whenever the governor retunes the frequency — the mechanism through
which DVFS decisions become interaction lag.
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import Callable

from repro.core.engine import PRIORITY_TASK, Engine, ScheduledEvent
from repro.core.errors import SimulationError
from repro.device.cpu import CpuCore
from repro.kernel.task import PRIORITY_BACKGROUND, PRIORITY_FOREGROUND, Task


class Scheduler:
    """Executes tasks on one :class:`~repro.device.cpu.CpuCore`."""

    def __init__(self, engine: Engine, core: CpuCore) -> None:
        self._engine = engine
        self._clock = engine.clock
        self._core = core
        self._queues: dict[int, deque[Task]] = {
            PRIORITY_FOREGROUND: deque(),
            PRIORITY_BACKGROUND: deque(),
        }
        self._current: Task | None = None
        self._current_started = 0
        # Rate (cycles/us) the current task has been running at since
        # ``_current_started``; kept separate from the core's live rate so
        # progress is charged at the frequency that was actually in force.
        self._current_rate = core.cycles_per_micro()
        self._completion: ScheduledEvent | None = None
        self._completed_tasks = 0
        self._completed_cycles = 0.0
        self._idle_listeners: list[Callable[[], None]] = []

    # --- introspection -----------------------------------------------------------

    @property
    def current_task(self) -> Task | None:
        return self._current

    @property
    def completed_tasks(self) -> int:
        return self._completed_tasks

    @property
    def completed_cycles(self) -> float:
        return self._completed_cycles

    @property
    def queued_tasks(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def is_idle(self) -> bool:
        return self._current is None and self.queued_tasks == 0

    def add_idle_listener(self, listener: Callable[[], None]) -> None:
        """``listener`` fires whenever the run queue drains completely."""
        self._idle_listeners.append(listener)

    # --- task submission ----------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Enqueue a task; may preempt running lower-priority work."""
        if task.done:
            raise SimulationError(f"cannot resubmit completed task {task!r}")
        task.submitted_at = self._clock._now
        self._queues[task.priority].append(task)
        if self._current is None:
            self._dispatch()
        elif task.priority < self._current.priority:
            self._preempt_current()
            self._dispatch()

    def on_transition(self, _timestamp: int, _freq_khz: int) -> None:
        """Transition-observer adapter for :meth:`notify_frequency_change`."""
        if self._current is None:
            return
        self._charge_current_progress()
        self._schedule_completion()

    def notify_frequency_change(self) -> None:
        """Recompute the running task's completion under the new frequency.

        The core has already closed its cycle accounting for the old
        frequency; we only need to re-derive the wall-time finish from the
        cycles still owed.
        """
        if self._current is None:
            return
        self._charge_current_progress()
        self._schedule_completion()

    # --- internals ------------------------------------------------------------------

    def _dispatch(self) -> None:
        task = self._pop_next()
        if task is None:
            self._core.set_busy(False)
            for listener in self._idle_listeners:
                listener()
            return
        now = self._clock._now
        self._current = task
        self._current_started = now
        self._current_rate = self._core.cycles_per_micro()
        if task.started_at is None:
            task.started_at = now
        self._core.set_busy(True)
        self._schedule_completion()

    def _pop_next(self) -> Task | None:
        for priority in (PRIORITY_FOREGROUND, PRIORITY_BACKGROUND):
            queue = self._queues[priority]
            if queue:
                return queue.popleft()
        return None

    def _schedule_completion(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
        task = self._current
        if task is None:
            return
        rate = self._core.cycles_per_micro()
        delay = ceil(task.remaining_cycles / rate)
        if delay < 1:
            delay = 1
        self._completion = self._engine.schedule_at(
            self._clock._now + delay, self._complete_current, priority=PRIORITY_TASK
        )

    def _charge_current_progress(self) -> None:
        """Deduct cycles the running task retired since it (re)started."""
        task = self._current
        if task is None:
            return
        now = self._clock._now
        elapsed = now - self._current_started
        retired = elapsed * self._current_rate
        task.remaining_cycles = max(0.0, task.remaining_cycles - retired)
        self._current_started = now
        self._current_rate = self._core.cycles_per_micro()

    def _preempt_current(self) -> None:
        task = self._current
        if task is None:
            return
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._charge_current_progress()
        self._current = None
        # Preempted task resumes ahead of everything else in its band.
        self._queues[task.priority].appendleft(task)

    def _complete_current(self) -> None:
        task = self._current
        if task is None:
            raise SimulationError("completion fired with no running task")
        self._completion = None
        task.remaining_cycles = 0.0
        task.completed_at = self._engine.now
        self._current = None
        self._completed_tasks += 1
        self._completed_cycles += task.cycles
        # Dispatch the next task before running the completion callback so
        # the core never shows a spurious idle gap between back-to-back
        # tasks; the callback may itself submit follow-up work.
        self._dispatch()
        if task.on_complete is not None:
            task.on_complete(task)

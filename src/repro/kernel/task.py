"""Tasks: units of CPU work posted by applications and services.

A task demands a number of CPU cycles; how long it takes in wall time
depends on the frequency the governor chooses while it runs — which is the
entire mechanism the paper studies.  Foreground (UI) work preempts
background work, as on Android where the foreground cgroup outweighs
background services.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.errors import SimulationError

PRIORITY_FOREGROUND = 0
PRIORITY_BACKGROUND = 1

_task_ids = itertools.count(1)


class Task:
    """A schedulable unit of work measured in CPU cycles."""

    __slots__ = (
        "task_id",
        "name",
        "cycles",
        "priority",
        "on_complete",
        "remaining_cycles",
        "submitted_at",
        "started_at",
        "completed_at",
    )

    def __init__(
        self,
        name: str,
        cycles: float,
        priority: int = PRIORITY_FOREGROUND,
        on_complete: Callable[["Task"], None] | None = None,
    ) -> None:
        if cycles <= 0:
            raise SimulationError(f"task {name!r} must demand positive cycles")
        if priority not in (PRIORITY_FOREGROUND, PRIORITY_BACKGROUND):
            raise SimulationError(f"unknown task priority {priority}")
        self.task_id = next(_task_ids)
        self.name = name
        self.cycles = float(cycles)
        self.priority = priority
        self.on_complete = on_complete
        self.remaining_cycles = float(cycles)
        self.submitted_at: int | None = None
        self.started_at: int | None = None
        self.completed_at: int | None = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def __repr__(self) -> str:
        state = "done" if self.done else f"{self.remaining_cycles:.0f} left"
        return f"Task({self.name!r}, {self.cycles:.0f} cyc, {state})"

"""Kernel timers used by governor sampling loops."""

from __future__ import annotations

from typing import Callable

from repro.core.engine import PRIORITY_TIMER, Engine, ScheduledEvent
from repro.core.errors import SimulationError


class PeriodicTimer:
    """Fires a callback every ``period_us`` microseconds until stopped.

    Expirations stay aligned to the start time (no drift accumulation),
    like a kernel timer re-armed from its expiry rather than from ``now``.
    """

    def __init__(
        self, engine: Engine, period_us: int, callback: Callable[[], None]
    ) -> None:
        if period_us <= 0:
            raise SimulationError("timer period must be positive")
        self._engine = engine
        self._period = period_us
        self._callback = callback
        self._next_expiry = 0
        self._pending: ScheduledEvent | None = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def period_us(self) -> int:
        return self._period

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._next_expiry = self._engine.now + self._period
        self._arm()

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def set_period(self, period_us: int) -> None:
        """Change the period; takes effect from the next expiry."""
        if period_us <= 0:
            raise SimulationError("timer period must be positive")
        self._period = period_us

    def _arm(self) -> None:
        self._pending = self._engine.schedule_at(
            self._next_expiry, self._fire, priority=PRIORITY_TIMER
        )

    def _fire(self) -> None:
        self._pending = None
        if not self._running:
            return
        self._callback()
        if self._running:
            self._next_expiry += self._period
            if self._next_expiry <= self._engine.now:
                self._next_expiry = self._engine.now + self._period
            self._arm()

"""Kernel timers used by governor sampling loops."""

from __future__ import annotations

from typing import Callable

from repro.core.engine import PRIORITY_TIMER, Engine, ScheduledEvent
from repro.core.errors import SimulationError


class PeriodicTimer:
    """Fires a callback every ``period_us`` microseconds until stopped.

    Expirations stay aligned to the start time (no drift accumulation),
    like a kernel timer re-armed from its expiry rather than from ``now``.

    The timer is backed by the engine's native periodic events
    (:meth:`~repro.core.engine.Engine.schedule_periodic`): the run loop
    re-arms the expiry in place after each fire, so a sampling timer costs
    one event allocation for its whole lifetime instead of one per period.

    :meth:`park`/:meth:`unpark` support the governors' idle fast path.
    While an owner can prove every expiry would be a no-op (core idle at
    the governor's resting frequency), it parks the timer and the engine
    skips the per-tick work entirely; ``unpark`` re-arms on the original
    alignment and reports how many expiries were elided so the owner can
    reconcile sample counters and load-tracking windows.
    """

    __slots__ = ("_engine", "_period", "_callback", "_event", "_running",
                 "_parked_next", "on_elided")

    def __init__(
        self, engine: Engine, period_us: int, callback: Callable[[], None]
    ) -> None:
        if period_us <= 0:
            raise SimulationError("timer period must be positive")
        self._engine = engine
        self._period = period_us
        self._callback = callback
        self._event: ScheduledEvent | None = None
        self._running = False
        self._parked_next: int | None = None
        #: Optional ``(elided, last_elided_time)`` hook invoked when a
        #: :meth:`park_until` deadline fires, before the regular callback.
        self.on_elided: Callable[[int, int], None] | None = None

    @property
    def running(self) -> bool:
        return self._running

    @property
    def parked(self) -> bool:
        """Whether the timer is running but idling in the parked state."""
        return self._running and self._parked_next is not None

    @property
    def period_us(self) -> int:
        return self._period

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._parked_next = None
        self._event = self._engine.schedule_periodic(
            self._engine.now + self._period,
            self._period,
            self._callback,
            priority=PRIORITY_TIMER,
        )

    def stop(self) -> None:
        self._running = False
        self._parked_next = None
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period_us: int) -> None:
        """Change the period; takes effect from the next expiry."""
        if period_us <= 0:
            raise SimulationError("timer period must be positive")
        self._period = period_us
        if self._event is not None:
            self._event.period = period_us

    def _next_expiry_of(self, event: ScheduledEvent) -> int:
        """The expiry that would follow ``event``.

        If the event is mid-fire (its time is not in the future the engine
        has not re-armed it yet), the next expiry is one period later,
        mirroring the engine's own re-arm rule; a still-pending event *is*
        the next expiry.
        """
        now = self._engine.now
        if event.time > now:
            return event.time
        next_expiry = event.time + self._period
        if next_expiry <= now:
            next_expiry = now + self._period
        return next_expiry

    def park(self) -> None:
        """Suspend expiries, remembering the upcoming expiry's alignment.

        Only the owner may park, and only when it can prove the elided
        expiries would not change observable state; see the governors'
        idle fast path.  No-op if already parked or not running.
        """
        if not self._running or self._parked_next is not None:
            return
        event = self._event
        if event is None:
            return
        self._parked_next = self._next_expiry_of(event)
        event.cancel()
        self._event = None

    def park_until(self, wake_time: int) -> None:
        """Park with a pre-scheduled wake at expiry ``wake_time``.

        Expiries strictly before ``wake_time`` are elided; the expiry at
        ``wake_time`` fires normally, after crediting the elided ones
        through :attr:`on_elided`.  ``wake_time`` must lie on the timer's
        expiry alignment.  The owner's other wake triggers may still
        :meth:`unpark` earlier.
        """
        if not self._running or self._parked_next is not None:
            return
        event = self._event
        if event is None:
            return
        next_expiry = self._next_expiry_of(event)
        if (wake_time - next_expiry) % self._period:
            raise SimulationError(
                f"park_until wake {wake_time} is off the expiry alignment"
            )
        if wake_time < next_expiry:
            raise SimulationError("park_until wake must not precede the "
                                  "next expiry")
        self._parked_next = next_expiry
        event.cancel()
        self._event = self._engine.schedule_periodic(
            wake_time, self._period, self._deadline_fire,
            priority=PRIORITY_TIMER,
        )

    def _deadline_fire(self) -> None:
        """The :meth:`park_until` wake expiry: credit elided ticks, sample."""
        next_expiry = self._parked_next
        self._parked_next = None
        event = self._event
        if event is not None:
            # Subsequent re-arms of this event fire the regular callback.
            event.callback = self._callback
        now = self._engine.now
        if next_expiry is not None and next_expiry < now:
            elided = -((next_expiry - now) // self._period)
            if elided and self.on_elided is not None:
                self.on_elided(elided, next_expiry + (elided - 1) * self._period)
        self._callback()

    def unpark(self) -> tuple[int, int | None]:
        """Resume expiries on the original alignment after a :meth:`park`.

        Returns ``(elided, last_elided_time)``: how many expiries were
        skipped while parked and the timestamp of the last one (None when
        none were).  An expiry at exactly ``now`` counts as elided only if
        it would have fired *before* the event currently being dispatched
        (timer priority beats the running event's priority), which is
        exactly when the un-parked original would already have consumed it.
        """
        if not self._running or self._parked_next is None:
            return (0, None)
        if self._event is not None:
            # A park_until deadline is still armed; cancel it — the timer
            # resumes normal expiries from here.
            self._event.cancel()
            self._event = None
        engine = self._engine
        now = engine.now
        period = self._period
        next_expiry = self._parked_next
        self._parked_next = None
        elided = 0
        if next_expiry < now:
            elided = -((next_expiry - now) // period)  # ceil((now - next)/p)
            next_expiry += elided * period
        if next_expiry == now:
            firing = engine.firing_priority
            if firing is not None and firing > PRIORITY_TIMER:
                elided += 1
                next_expiry += period
        self._event = engine.schedule_periodic(
            next_expiry, period, self._callback, priority=PRIORITY_TIMER
        )
        if elided:
            return (elided, next_expiry - period)
        return (0, None)

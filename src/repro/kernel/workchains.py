"""Chunked and periodic background work.

Real background services interleave CPU bursts with IO (reading mail,
flash writes, socket waits), so the load a governor samples from them sits
well below 100%.  ``submit_chunked`` models this: a total cycle demand is
split into fixed-size chunks separated by IO gaps.  Foreground interaction
work stays unchunked — user-triggered bursts are what race governors to
high frequencies.

:class:`PeriodicWorkChain` is the second background shape: a gated timer
loop submitting one fixed work unit per period (music decode, widget
refresh).  Apps used to hand-roll this with ``schedule_after`` +
``post_work``; the shared class keeps the exact same event order and adds
the seam the demand recorder needs — a chain is *one* node in a demand
trace instead of an unbounded unrolling of timer firings, so the kernel
evaluation pass can re-run the loop live instead of replaying a recording
of it.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND, Task

# Sized so that at high frequencies a chunk is short relative to governor
# sampling windows: sustained background work then presents mid-range load
# instead of pegging at 100%.
DEFAULT_CHUNK_CYCLES = 15e6
DEFAULT_GAP_US = 60_000


def submit_chunked(
    engine: Engine,
    scheduler: Scheduler,
    name: str,
    total_cycles: float,
    chunk_cycles: float = DEFAULT_CHUNK_CYCLES,
    gap_us: int = DEFAULT_GAP_US,
    priority: int = PRIORITY_BACKGROUND,
) -> int:
    """Submit ``total_cycles`` of work as an IO-interleaved chunk chain.

    Returns the number of chunks the chain will run.
    """
    if total_cycles <= 0:
        raise SimulationError(f"chunked task {name!r} needs positive cycles")
    if chunk_cycles <= 0 or gap_us < 0:
        raise SimulationError("invalid chunking parameters")
    chunk_count = max(1, round(total_cycles / chunk_cycles))
    per_chunk = total_cycles / chunk_count

    def run(index: int) -> None:
        def completed(_task: Task) -> None:
            if index + 1 < chunk_count:
                engine.schedule_after(gap_us, lambda: run(index + 1))

        scheduler.submit(
            Task(
                f"{name}[{index}/{chunk_count}]",
                per_chunk,
                priority=priority,
                on_complete=completed,
            )
        )

    run(0)
    return chunk_count


# The demand recorder (repro.demand.capture) installs itself here for the
# duration of one instrumented replay; ``None`` costs one global read per
# chain transition, nothing on any per-event path.
_chain_observer = None


def set_chain_observer(observer):
    """Install (or clear, with ``None``) the chain observer; returns the
    previous one so callers can restore it."""
    global _chain_observer
    previous = _chain_observer
    _chain_observer = observer
    return previous


class PeriodicWorkChain:
    """A gated timer loop: one work unit per period while active.

    Semantics are an exact transliteration of the self-rescheduling
    pattern the apps used to hand-roll:

    * :meth:`start` arms a fresh timer one period out *unconditionally* —
      re-starting while an earlier firing is still pending historically
      doubled the loop (pause/play faster than the period), and replays
      must keep doing so bit-identically;
    * each firing checks the gate at expiry time, submits the work unit,
      then re-arms (submit before re-arm: engine sequence numbers are
      part of deterministic tie-breaking);
    * :meth:`stop` only drops the gate — pending firings die quietly at
      expiry without re-arming.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: Scheduler,
        name: str,
        period_us: int,
        cycles: float,
        priority: int = PRIORITY_BACKGROUND,
        on_fire: Callable[[], None] | None = None,
    ) -> None:
        if period_us <= 0:
            raise SimulationError(f"chain {name!r} needs a positive period")
        if cycles <= 0:
            raise SimulationError(f"chain {name!r} needs positive cycles")
        self._engine = engine
        self._scheduler = scheduler
        self.name = name
        self.period_us = period_us
        self.cycles = float(cycles)
        self.priority = priority
        self._on_fire = on_fire
        self.active = False
        self.fires = 0

    def start(self) -> None:
        self.active = True
        observer = _chain_observer
        if observer is not None:
            observer.chain_started(self)
            with observer.chain_firing(self):
                self._arm()
        else:
            self._arm()

    def stop(self) -> None:
        self.active = False
        observer = _chain_observer
        if observer is not None:
            observer.chain_stopped(self)

    def _arm(self) -> None:
        self._engine.schedule_after(self.period_us, self._fire)

    def _fire(self) -> None:
        if not self.active:
            return
        observer = _chain_observer
        if observer is not None:
            with observer.chain_firing(self):
                self._run_once()
        else:
            self._run_once()

    def _run_once(self) -> None:
        on_fire = self._on_fire
        self._scheduler.submit(
            Task(
                self.name,
                self.cycles,
                priority=self.priority,
                on_complete=(lambda _t: on_fire()) if on_fire else None,
            )
        )
        self.fires += 1
        self._arm()

"""Chunked background work.

Real background services interleave CPU bursts with IO (reading mail,
flash writes, socket waits), so the load a governor samples from them sits
well below 100%.  ``submit_chunked`` models this: a total cycle demand is
split into fixed-size chunks separated by IO gaps.  Foreground interaction
work stays unchunked — user-triggered bursts are what race governors to
high frequencies.
"""

from __future__ import annotations

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND, Task

# Sized so that at high frequencies a chunk is short relative to governor
# sampling windows: sustained background work then presents mid-range load
# instead of pegging at 100%.
DEFAULT_CHUNK_CYCLES = 15e6
DEFAULT_GAP_US = 60_000


def submit_chunked(
    engine: Engine,
    scheduler: Scheduler,
    name: str,
    total_cycles: float,
    chunk_cycles: float = DEFAULT_CHUNK_CYCLES,
    gap_us: int = DEFAULT_GAP_US,
    priority: int = PRIORITY_BACKGROUND,
) -> int:
    """Submit ``total_cycles`` of work as an IO-interleaved chunk chain.

    Returns the number of chunks the chain will run.
    """
    if total_cycles <= 0:
        raise SimulationError(f"chunked task {name!r} needs positive cycles")
    if chunk_cycles <= 0 or gap_us < 0:
        raise SimulationError("invalid chunking parameters")
    chunk_count = max(1, round(total_cycles / chunk_cycles))
    per_chunk = total_cycles / chunk_count

    def run(index: int) -> None:
        def completed(_task: Task) -> None:
            if index + 1 < chunk_count:
                engine.schedule_after(gap_us, lambda: run(index + 1))

        scheduler.submit(
            Task(
                f"{name}[{index}/{chunk_count}]",
                per_chunk,
                priority=priority,
                on_complete=completed,
            )
        )

    run(0)
    return chunk_count

"""QoE metrics: HCI response-time model, user irritation, distributions."""

from repro.metrics.distribution import DistributionSummary, summarize_lags
from repro.metrics.hci import (
    CATEGORY_COMMON,
    CATEGORY_COMPLEX,
    CATEGORY_SIMPLE,
    CATEGORY_TYPING,
    HciModel,
    SHNEIDERMAN_MODEL,
)
from repro.metrics.irritation import IrritationResult, irritation
from repro.metrics.jank import JankResult, LagJank, analyze_jank

__all__ = [
    "HciModel",
    "SHNEIDERMAN_MODEL",
    "CATEGORY_TYPING",
    "CATEGORY_SIMPLE",
    "CATEGORY_COMMON",
    "CATEGORY_COMPLEX",
    "IrritationResult",
    "irritation",
    "DistributionSummary",
    "summarize_lags",
    "JankResult",
    "LagJank",
    "analyze_jank",
]

"""Lag-duration distribution statistics (the paper's Fig. 11 violins).

The violin plots show "boxes extend[ing] from lower to upper quartile
values, with a line at the median. The whiskers show the range of the lag
length at 1.5 IRQ, while flier points are those past the end of the
whiskers" plus a kernel-density estimate.  We compute exactly those
ingredients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ReproError


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Box/whisker/KDE summary of one configuration's lag durations."""

    count: int
    mean_ms: float
    median_ms: float
    q1_ms: float
    q3_ms: float
    whisker_low_ms: float
    whisker_high_ms: float
    min_ms: float
    max_ms: float
    fliers_ms: tuple[float, ...]

    @property
    def iqr_ms(self) -> float:
        return self.q3_ms - self.q1_ms


def summarize_lags(durations_ms: list[float]) -> DistributionSummary:
    """Box-plot statistics over lag durations in milliseconds."""
    if not durations_ms:
        raise ReproError("cannot summarise an empty lag profile")
    data = np.asarray(sorted(durations_ms), dtype=float)
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    iqr = q3 - q1
    low_limit = q1 - 1.5 * iqr
    high_limit = q3 + 1.5 * iqr
    inside = data[(data >= low_limit) & (data <= high_limit)]
    whisker_low = float(inside.min()) if inside.size else float(data.min())
    whisker_high = float(inside.max()) if inside.size else float(data.max())
    fliers = tuple(float(x) for x in data[(data < low_limit) | (data > high_limit)])
    return DistributionSummary(
        count=int(data.size),
        mean_ms=float(data.mean()),
        median_ms=float(median),
        q1_ms=float(q1),
        q3_ms=float(q3),
        whisker_low_ms=whisker_low,
        whisker_high_ms=whisker_high,
        min_ms=float(data.min()),
        max_ms=float(data.max()),
        fliers_ms=fliers,
    )


def kernel_density(
    durations_ms: list[float], grid_points: int = 128
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian KDE over lag durations (the Fig. 11 inset curve).

    Returns ``(grid_ms, density)``.  Bandwidth follows Scott's rule.
    """
    if not durations_ms:
        raise ReproError("cannot estimate a density from no lags")
    data = np.asarray(durations_ms, dtype=float)
    if data.size == 1 or float(data.std()) == 0.0:
        grid = np.linspace(data.min() - 1.0, data.max() + 1.0, grid_points)
        density = np.zeros_like(grid)
        density[np.argmin(np.abs(grid - data[0]))] = 1.0
        return grid, density
    bandwidth = 1.06 * data.std() * data.size ** (-1 / 5)
    grid = np.linspace(data.min() - 3 * bandwidth, data.max() + 3 * bandwidth, grid_points)
    diffs = (grid[:, None] - data[None, :]) / bandwidth
    density = np.exp(-0.5 * diffs**2).sum(axis=1)
    density /= data.size * bandwidth * np.sqrt(2 * np.pi)
    return grid, density

"""Shneiderman's HCI response-time model.

The paper's irritation thresholds come from "a standard HCI model [8]"
(Shneiderman, *Designing the User Interface*) "which offers four
interaction categories: typing (150ms), simple frequent task (1s), common
task (4s) and complex task (12s)".  Custom models and per-lag overrides
are supported, as in the paper's GUI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.core.simtime import millis

CATEGORY_TYPING = "typing"
CATEGORY_SIMPLE = "simple_frequent"
CATEGORY_COMMON = "common"
CATEGORY_COMPLEX = "complex"


@dataclass(frozen=True, slots=True)
class HciModel:
    """Maps interaction categories to irritation thresholds (microseconds)."""

    name: str
    thresholds_us: dict[str, int] = field(default_factory=dict)

    def threshold_us(self, category: str) -> int:
        try:
            return self.thresholds_us[category]
        except KeyError:
            known = ", ".join(sorted(self.thresholds_us))
            raise ReproError(
                f"HCI model {self.name!r} has no category {category!r} "
                f"(known: {known})"
            ) from None

    def categories(self) -> list[str]:
        return sorted(self.thresholds_us)

    def scaled(self, factor: float, name: str | None = None) -> "HciModel":
        """A model with every threshold multiplied by ``factor``.

        Used by the threshold-sensitivity ablation.
        """
        if factor <= 0:
            raise ReproError("scale factor must be positive")
        return HciModel(
            name or f"{self.name}*{factor:g}",
            {cat: int(t * factor) for cat, t in self.thresholds_us.items()},
        )


SHNEIDERMAN_MODEL = HciModel(
    "shneiderman",
    {
        CATEGORY_TYPING: millis(150),
        CATEGORY_SIMPLE: millis(1_000),
        CATEGORY_COMMON: millis(4_000),
        CATEGORY_COMPLEX: millis(12_000),
    },
)

"""The user-irritation metric (paper §II-F, Fig. 9).

Each interaction lag has an irritation threshold.  A lag shorter than its
threshold "does not count as irritating to the user"; a longer one incurs
a penalty equal to "the amount of time the lag duration is above the
threshold".  The metric is "an accumulation of the penalty for each lag in
the workload and therefore the total amount of time a user is irritated".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.simtime import to_seconds


@dataclass(frozen=True, slots=True)
class LagPenalty:
    """Per-lag irritation contribution."""

    lag_index: int
    label: str
    duration_us: int
    threshold_us: int

    @property
    def penalty_us(self) -> int:
        return max(0, self.duration_us - self.threshold_us)

    @property
    def irritating(self) -> bool:
        return self.penalty_us > 0


@dataclass(frozen=True, slots=True)
class IrritationResult:
    """The metric plus its per-lag breakdown."""

    penalties: tuple[LagPenalty, ...]

    @property
    def total_us(self) -> int:
        return sum(p.penalty_us for p in self.penalties)

    @property
    def total_seconds(self) -> float:
        return to_seconds(self.total_us)

    @property
    def irritating_lag_count(self) -> int:
        return sum(1 for p in self.penalties if p.irritating)

    @property
    def lag_count(self) -> int:
        return len(self.penalties)

    def worst(self, n: int = 5) -> list[LagPenalty]:
        """The ``n`` most irritating lags (diagnostics)."""
        return sorted(self.penalties, key=lambda p: -p.penalty_us)[:n]


def irritation(
    lags: list[tuple[str, int, int]],
) -> IrritationResult:
    """Compute the metric from ``(label, duration_us, threshold_us)`` rows.

    The caller (usually a :class:`~repro.analysis.lagprofile.LagProfile`)
    supplies per-lag thresholds, which may come from the Shneiderman model,
    a custom model, or per-lag overrides — mirroring the paper's GUI.
    """
    penalties = []
    for index, (label, duration_us, threshold_us) in enumerate(lags):
        if duration_us < 0:
            raise ReproError(f"lag {label!r} has negative duration")
        if threshold_us < 0:
            raise ReproError(f"lag {label!r} has negative threshold")
        penalties.append(LagPenalty(index, label, duration_us, threshold_us))
    return IrritationResult(tuple(penalties))

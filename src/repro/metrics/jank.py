"""Jank analysis — the paper's stated future work, implemented.

§VI: "We also plan to include workloads that are dominated by Jank type
lags where frames are dropped when the processor is too busy to keep up
with the load."

On the simulated device a frame is considered *janky* when its entire
vsync interval was CPU-busy: the UI thread had no idle headroom to prepare
the next frame, which on real hardware is exactly when SurfaceFlinger
misses the deadline and drops it.  The analyzer combines a run's busy
timeline with its lag profile to report dropped frames inside interaction
lags (where the user is watching) and overall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagProfile
from repro.device.display import VSYNC_PERIOD_US
from repro.oracle.builder import BusyTimeline


@dataclass(frozen=True, slots=True)
class LagJank:
    """Dropped frames within one interaction lag."""

    label: str
    frames_total: int
    frames_janky: int

    @property
    def jank_ratio(self) -> float:
        if self.frames_total == 0:
            return 0.0
        return self.frames_janky / self.frames_total


@dataclass(frozen=True, slots=True)
class JankResult:
    """Jank over a whole run."""

    frames_total: int
    frames_janky: int
    per_lag: tuple[LagJank, ...]

    @property
    def jank_ratio(self) -> float:
        if self.frames_total == 0:
            return 0.0
        return self.frames_janky / self.frames_total

    @property
    def lag_frames_janky(self) -> int:
        return sum(lag.frames_janky for lag in self.per_lag)

    def worst_lags(self, n: int = 5) -> list[LagJank]:
        return sorted(self.per_lag, key=lambda l: -l.frames_janky)[:n]


def _janky_frames_in(
    timeline: BusyTimeline, start_us: int, end_us: int
) -> tuple[int, int]:
    """(total, janky) vsync intervals inside ``[start_us, end_us)``."""
    first = start_us // VSYNC_PERIOD_US
    last = end_us // VSYNC_PERIOD_US
    total = 0
    janky = 0
    for index in range(first, last):
        frame_start = index * VSYNC_PERIOD_US
        frame_end = frame_start + VSYNC_PERIOD_US
        total += 1
        if timeline.busy_in(frame_start, frame_end) >= VSYNC_PERIOD_US:
            janky += 1
    return total, janky


def analyze_jank(
    busy: BusyTimeline,
    duration_us: int,
    lag_profile: LagProfile | None = None,
) -> JankResult:
    """Count fully-busy (dropped) vsync intervals over a run.

    Args:
        busy: the run's busy timeline (``RunRecord.busy_timeline``).
        duration_us: run length.
        lag_profile: optional; when given, per-lag jank is reported for
            the windows the user was actually watching.
    """
    if duration_us <= 0:
        raise ReproError("duration must be positive")
    total, janky = _janky_frames_in(busy, 0, duration_us)
    per_lag = []
    if lag_profile is not None:
        for lag in lag_profile.lags:
            lag_total, lag_janky = _janky_frames_in(
                busy, lag.begin_time_us, lag.begin_time_us + lag.duration_us
            )
            per_lag.append(
                LagJank(
                    label=lag.label,
                    frames_total=lag_total,
                    frames_janky=lag_janky,
                )
            )
    return JankResult(
        frames_total=total, frames_janky=janky, per_lag=tuple(per_lag)
    )

"""Observability: tracing, metrics, fleet telemetry, flight recorder.

Provably free when off: no session installed means every instrumentation
site in the simulator reduces to one ``is not None`` test.  See
:mod:`repro.obs.session` for the contract and
``README.md#observability`` for the user-facing tour.
"""

from repro.obs.metrics import OBS_SCHEMA_VERSION, Histogram, MetricsRegistry
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    RecordedEvent,
    divergence_report,
    first_divergence,
)
from repro.obs.session import (
    TRACE_FLAG,
    DecisionLog,
    ObsError,
    ObsSession,
    active,
    install,
    observed,
    trace_enabled,
    uninstall,
)
from repro.obs.trace import TraceCollector

__all__ = [
    "DEFAULT_CAPACITY",
    "DecisionLog",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "OBS_SCHEMA_VERSION",
    "ObsError",
    "ObsSession",
    "RecordedEvent",
    "TRACE_FLAG",
    "TraceCollector",
    "active",
    "divergence_report",
    "first_divergence",
    "install",
    "observed",
    "trace_enabled",
    "uninstall",
]

"""Lag attribution: explain every irritation window, diff any two traces.

The bridge from raw telemetry (PR 6's traces, metrics, flight recorder)
to causal answers: :func:`attribute_record` decomposes every lag window
of a run into named causes (see :mod:`~repro.obs.attribution.causes`),
:func:`annotate_document` folds the cause spans back into an exported
Chrome trace, and :mod:`~repro.obs.attribution.diff` aligns two traces
and names the first causally-diverging window.

Imported as ``repro.obs.attribution`` (not re-exported from
``repro.obs``): the engine consumes :mod:`repro.analysis.lagprofile`,
which the base ``repro.obs`` package must stay import-light enough not
to pull in.
"""

from repro.obs.attribution.annotate import annotate_document
from repro.obs.attribution.causes import (
    CAUSE_DESCRIPTIONS,
    CAUSES,
    cause_order_key,
)
from repro.obs.attribution.diff import (
    TraceDiff,
    WindowView,
    diff_documents,
    diff_trace_files,
    extract_windows,
    render_diff,
)
from repro.obs.attribution.engine import (
    ATTRIBUTION_SCHEMA_VERSION,
    RunAttribution,
    WindowAttribution,
    apportion_penalty,
    attribute_record,
    attribute_window,
)
from repro.obs.attribution.report import render_report

__all__ = [
    "ATTRIBUTION_SCHEMA_VERSION",
    "CAUSES",
    "CAUSE_DESCRIPTIONS",
    "RunAttribution",
    "TraceDiff",
    "WindowAttribution",
    "WindowView",
    "annotate_document",
    "apportion_penalty",
    "attribute_record",
    "attribute_window",
    "cause_order_key",
    "diff_documents",
    "diff_trace_files",
    "extract_windows",
    "render_diff",
    "render_report",
]

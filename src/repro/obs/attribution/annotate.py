"""Annotate an exported Chrome trace with attribution cause spans.

The ``repro-qoe attribute`` command replays a workload under a full
tracing session, attributes every lag window, and then folds the cause
segments back into the trace document as complete spans on a dedicated
``attribution`` track — so Perfetto shows, directly under the lag spans,
*why* each window stretched.  Counter tracks (``cpufreq_khz``,
``governor_load``, ``boost_state``) are emitted live by the session
during the replay; this module only adds the cause spans, which need the
whole run to compute.
"""

from __future__ import annotations

from repro.obs.attribution.engine import RunAttribution
from repro.obs.trace import PID_DEVICE, TID_ATTRIBUTION


def cause_span(
    start_us: int, end_us: int, cause: str, label: str, penalty_us: int
) -> dict:
    """One attribution cause segment as a Chrome complete span."""
    return {
        "name": f"cause:{cause}",
        "ph": "X",
        "ts": start_us,
        "dur": end_us - start_us,
        "pid": PID_DEVICE,
        "tid": TID_ATTRIBUTION,
        "args": {"lag": label, "cause": cause, "window_penalty_us": penalty_us},
    }


def annotate_document(document: dict, attribution: RunAttribution) -> dict:
    """Fold cause spans into a trace document (mutates and returns it).

    Metadata events stay first; the body is re-sorted by ``(ts, tid)``
    after insertion so annotated documents stay diff-stable, matching
    :meth:`~repro.obs.trace.TraceCollector.to_chrome_trace` ordering.
    """
    events = document["traceEvents"]
    metadata = [event for event in events if event.get("ph") == "M"]
    body = [event for event in events if event.get("ph") != "M"]
    for window in attribution.windows:
        for start, end, cause in window.segments:
            body.append(
                cause_span(start, end, cause, window.label, window.penalty_us)
            )
    body.sort(key=lambda event: (event["ts"], event.get("tid", 0)))
    document["traceEvents"] = metadata + body
    return document

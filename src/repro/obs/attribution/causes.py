"""The cause taxonomy: named reasons an irritation window stretched.

Every microsecond of every lag window is assigned to exactly one cause,
so per-cause irritation sums reconstruct the run total exactly.  The
causes mirror the governor behaviours the paper characterises:

``late_boost``
    Time between the interaction start and the governor's first
    reaction, when that reaction was an input-path boost — the boost
    fired, but late (a missed/late input boost).
``park_wake``
    Same pre-reaction latency, but the first reaction came from a
    sampling-timer decision instead of an input boost: the window
    waited on the (possibly parked) periodic timer to fire and notice.
``slow_ramp``
    The core was busy below the window's peak OPP after the governor
    had reacted — the staircase was still climbing (the conservative
    governor's signature).
``settle_hold``
    The governor dropped the frequency *mid-window* and held low while
    the core idled — it settled during an interaction it had not
    finished servicing.
``stale_load``
    Idle below the peak OPP with no mid-window drop: the load window
    lags the bursty interaction, so the governor has not raised yet.
``compositor_backlog``
    The trailing stretch after the core's last busy span: compute was
    done, the window closed only on a later vsync/composition.
``at_speed``
    At the window's peak OPP (busy or idle): intrinsic service time no
    governor decision could have shortened.
``unattributed``
    Safety bucket for time the rules above failed to cover; the engine
    covers windows exhaustively, so this stays at (or very near) zero.
"""

from __future__ import annotations

CAUSE_LATE_BOOST = "late_boost"
CAUSE_PARK_WAKE = "park_wake"
CAUSE_SLOW_RAMP = "slow_ramp"
CAUSE_SETTLE_HOLD = "settle_hold"
CAUSE_STALE_LOAD = "stale_load"
CAUSE_COMPOSITOR = "compositor_backlog"
CAUSE_AT_SPEED = "at_speed"
CAUSE_UNATTRIBUTED = "unattributed"

#: Canonical cause order: reports list causes this way, and penalty
#: apportionment breaks remainder ties by this order — both must be
#: deterministic for byte-identical output.
CAUSES = (
    CAUSE_LATE_BOOST,
    CAUSE_PARK_WAKE,
    CAUSE_SLOW_RAMP,
    CAUSE_SETTLE_HOLD,
    CAUSE_STALE_LOAD,
    CAUSE_COMPOSITOR,
    CAUSE_AT_SPEED,
    CAUSE_UNATTRIBUTED,
)

CAUSE_DESCRIPTIONS = {
    CAUSE_LATE_BOOST: "input boost arrived after the interaction began",
    CAUSE_PARK_WAKE: "waiting on the sampling timer's first decision",
    CAUSE_SLOW_RAMP: "busy below the window's peak OPP (ramp in progress)",
    CAUSE_SETTLE_HOLD: "governor settled down mid-interaction and held low",
    CAUSE_STALE_LOAD: "idle below peak: load window lagging the burst",
    CAUSE_COMPOSITOR: "compute done, waiting on composition/vsync",
    CAUSE_AT_SPEED: "already at the window's peak OPP (intrinsic time)",
    CAUSE_UNATTRIBUTED: "not covered by any rule (should stay ~0)",
}

_ORDER = {cause: index for index, cause in enumerate(CAUSES)}


def cause_order_key(cause: str) -> tuple[int, str]:
    """Deterministic sort key: taxonomy order first, unknown names last."""
    return (_ORDER.get(cause, len(CAUSES)), cause)

"""Trace diffing: align two traces, find the first causal divergence.

Generalises the flight recorder's first-divergence idea from debugging
into analysis: load two exported Chrome trace documents (same workload
under different governors, configs, or fastpath-vs-reference modes),
align their lag windows by label, and report span-level deltas plus the
first *causally-diverging* window — the earliest aligned window whose
duration or cause decomposition differs.

Only mode-invariant content takes part in the comparison: lag spans
(``lag:*`` on the gestures track) and attribution cause spans
(``cause:*`` on the attribution track).  Park spans, counter samples and
decision instants are trace annotation — they may legitimately differ
between fastpath modes — so a fastpath trace diffed against its
``REPRO_FASTPATH=0`` twin reports zero diverging windows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ReproError
from repro.harness.figures import format_table
from repro.obs.attribution.causes import cause_order_key
from repro.obs.trace import TID_ATTRIBUTION, TID_GESTURES


@dataclass(frozen=True, slots=True)
class WindowView:
    """One lag window as seen in a trace: its span plus cause totals."""

    label: str
    begin_us: int
    duration_us: int
    causes: tuple[tuple[str, int], ...]

    def cause_map(self) -> dict[str, int]:
        return dict(self.causes)


@dataclass(frozen=True, slots=True)
class TraceDiff:
    """The alignment of two traces' lag windows."""

    label_a: str
    label_b: str
    aligned: tuple[tuple[WindowView, WindowView], ...]
    only_a: tuple[WindowView, ...]
    only_b: tuple[WindowView, ...]

    @property
    def diverging(self) -> tuple[tuple[WindowView, WindowView], ...]:
        """Aligned windows whose duration or cause decomposition differ."""
        return tuple(
            (a, b)
            for a, b in self.aligned
            if a.duration_us != b.duration_us or a.causes != b.causes
        )

    @property
    def first_divergence(self) -> tuple[WindowView, WindowView] | None:
        diverging = self.diverging
        return diverging[0] if diverging else None


def _process_name(document: dict) -> str | None:
    for event in document.get("traceEvents", ()):
        if (
            isinstance(event, dict)
            and event.get("ph") == "M"
            and event.get("name") == "process_name"
        ):
            args = event.get("args") or {}
            name = args.get("name")
            if isinstance(name, str):
                return name
    return None


def extract_windows(document: dict) -> list[WindowView]:
    """Every lag window in a trace document, with its cause totals.

    Lag labels repeat across a run (the same gesture fires many times),
    so a cause span attaches to the same-labeled window whose time range
    contains it — never to every window sharing the label.
    """
    lag_spans: list[tuple[int, str, int]] = []
    cause_spans: list[tuple[int, int, str, str]] = []
    for event in document.get("traceEvents", ()):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = event.get("name", "")
        if event.get("tid") == TID_GESTURES and name.startswith("lag:"):
            lag_spans.append(
                (event["ts"], name[len("lag:"):], event.get("dur", 0))
            )
        elif event.get("tid") == TID_ATTRIBUTION and name.startswith("cause:"):
            args = event.get("args") or {}
            label = args.get("lag")
            if isinstance(label, str):
                cause_spans.append(
                    (event["ts"], event.get("dur", 0),
                     name[len("cause:"):], label)
                )
    lag_spans.sort()
    by_label: dict[str, list[tuple[int, int, int]]] = {}
    for index, (begin, label, duration) in enumerate(lag_spans):
        by_label.setdefault(label, []).append((begin, begin + duration, index))
    per_window: list[dict[str, int]] = [{} for _ in lag_spans]
    for ts, duration, cause, label in cause_spans:
        for begin, end, index in by_label.get(label, ()):
            if begin <= ts < end:
                totals = per_window[index]
                totals[cause] = totals.get(cause, 0) + duration
                break
    windows = []
    for index, (begin, label, duration) in enumerate(lag_spans):
        totals = per_window[index]
        causes = tuple(
            (cause, totals[cause])
            for cause in sorted(totals, key=cause_order_key)
        )
        windows.append(
            WindowView(
                label=label, begin_us=begin, duration_us=duration, causes=causes
            )
        )
    return windows


def load_trace(path: str | Path) -> dict:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable trace file {path}: {exc}") from exc
    if not isinstance(document, dict) or not isinstance(
        document.get("traceEvents"), list
    ):
        raise ReproError(
            f"{path}: not a Chrome trace document (no traceEvents array)"
        )
    return document


def diff_documents(
    doc_a: dict,
    doc_b: dict,
    label_a: str = "A",
    label_b: str = "B",
) -> TraceDiff:
    """Align two trace documents' lag windows by label."""
    windows_a = extract_windows(doc_a)
    windows_b = extract_windows(doc_b)
    by_label_b: dict[str, list[WindowView]] = {}
    for window in windows_b:
        by_label_b.setdefault(window.label, []).append(window)
    aligned: list[tuple[WindowView, WindowView]] = []
    only_a: list[WindowView] = []
    for window in windows_a:
        twins = by_label_b.get(window.label)
        if twins:
            aligned.append((window, twins.pop(0)))
        else:
            only_a.append(window)
    only_b = [w for twins in by_label_b.values() for w in twins]
    only_b.sort(key=lambda w: (w.begin_us, w.label))
    return TraceDiff(
        label_a=_process_name(doc_a) or label_a,
        label_b=_process_name(doc_b) or label_b,
        aligned=tuple(aligned),
        only_a=tuple(only_a),
        only_b=tuple(only_b),
    )


def diff_trace_files(path_a: str | Path, path_b: str | Path) -> TraceDiff:
    return diff_documents(
        load_trace(path_a), load_trace(path_b), str(path_a), str(path_b)
    )


def render_diff(diff: TraceDiff) -> str:
    """The trace-diff report: totals, per-cause deltas, first divergence."""
    lines = [
        f"trace-diff: A = {diff.label_a}",
        f"            B = {diff.label_b}",
        f"{len(diff.aligned)} aligned window(s), "
        f"{len(diff.only_a)} only in A, {len(diff.only_b)} only in B",
    ]
    total_a = sum(a.duration_us for a, _ in diff.aligned)
    total_b = sum(b.duration_us for _, b in diff.aligned)
    lines.append(
        f"aligned lag time: A {total_a} us, B {total_b} us "
        f"(delta {total_b - total_a:+d} us)"
    )
    causes_a: dict[str, int] = {}
    causes_b: dict[str, int] = {}
    for a, b in diff.aligned:
        for cause, us in a.causes:
            causes_a[cause] = causes_a.get(cause, 0) + us
        for cause, us in b.causes:
            causes_b[cause] = causes_b.get(cause, 0) + us
    union = sorted(set(causes_a) | set(causes_b), key=cause_order_key)
    if union:
        rows = []
        for cause in union:
            us_a = causes_a.get(cause, 0)
            us_b = causes_b.get(cause, 0)
            rows.append([cause, str(us_a), str(us_b), f"{us_b - us_a:+d}"])
        lines.append("")
        lines.append("per-cause window time (us)")
        lines.append(format_table(["cause", "A", "B", "delta"], rows))
    for label, windows in (("A", diff.only_a), ("B", diff.only_b)):
        for window in windows:
            lines.append(
                f"only in {label}: {window.label!r} at {window.begin_us} us "
                f"({window.duration_us} us)"
            )
    diverging = diff.diverging
    lines.append("")
    if not diverging:
        lines.append("no causally-diverging windows")
        return "\n".join(lines)
    lines.append(f"{len(diverging)} causally-diverging window(s)")
    first_a, first_b = diverging[0]
    lines.append(
        f"first divergence: {first_a.label!r} (opens at {first_a.begin_us} us)"
    )
    lines.append(
        f"  duration: A {first_a.duration_us} us, B {first_b.duration_us} us "
        f"(delta {first_b.duration_us - first_a.duration_us:+d} us)"
    )
    map_a = first_a.cause_map()
    map_b = first_b.cause_map()
    for cause in sorted(set(map_a) | set(map_b), key=cause_order_key):
        us_a = map_a.get(cause, 0)
        us_b = map_b.get(cause, 0)
        if us_a != us_b:
            lines.append(
                f"  {cause}: A {us_a} us, B {us_b} us (delta {us_b - us_a:+d} us)"
            )
    return "\n".join(lines)

"""The attribution engine: decompose every lag window into named causes.

Given one run's :class:`~repro.results.RunRecord` (frequency transitions,
busy intervals, lag windows) plus the input-boost timestamps collected by
the run's :class:`~repro.obs.session.DecisionLog`, the engine partitions
each lag window ``[t0, t1)`` into contiguous cause segments and
apportions the window's irritation penalty over those causes *exactly*
(largest-remainder rounding), so per-cause irritation sums reconstruct
the run total to the microsecond.

Mode invariance
---------------

Everything the engine consumes is invariant across the fastpath
(``REPRO_FASTPATH``) and streaming (``REPRO_STREAM``) kill switches:
frequency transitions and busy intervals are stored whole on the record
and proven bit-identical by the golden A/B tests, input boosts fire from
the input path at identical simulation times, and lag windows are the
matcher's output.  Park spans and load samples are deliberately *not*
inputs — they exist only on one side of the A/B.  ``trace-diff`` of a
fastpath trace against its ``REPRO_FASTPATH=0`` twin therefore reports
zero causally-diverging windows.

Per-window rules (each microsecond gets exactly one cause):

1. ``compositor_backlog`` — the tail after the core's last busy span in
   the window (the whole window when the core never ran).
2. Before the governor's first reaction (the first input boost or the
   first frequency *rise*): ``late_boost`` if a boost reacted first,
   ``park_wake`` if a sampling-tick decision did.
3. After the reaction, below the window's peak OPP: ``slow_ramp`` while
   busy; while idle, ``settle_hold`` if the governor dropped the
   frequency mid-window and has not recovered, else ``stale_load``.
4. At the peak OPP: ``at_speed`` — intrinsic service time.

Rule order is priority order; a window at its peak OPP from the start
has no reaction latency at all.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.analysis.lagprofile import CauseBreakdown, LagMeasurement, LagProfile
from repro.obs.attribution.causes import (
    CAUSE_AT_SPEED,
    CAUSE_COMPOSITOR,
    CAUSE_LATE_BOOST,
    CAUSE_PARK_WAKE,
    CAUSE_SETTLE_HOLD,
    CAUSE_SLOW_RAMP,
    CAUSE_STALE_LOAD,
    CAUSE_UNATTRIBUTED,
    CAUSES,
    cause_order_key,
)

#: Version of the ``attribution`` summary layout inside the RunRecord
#: ``obs`` section.  Self-versioned like the section that carries it.
ATTRIBUTION_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class WindowAttribution:
    """One lag window's exhaustive cause decomposition."""

    lag_index: int
    gesture_index: int
    label: str
    category: str
    begin_us: int
    duration_us: int
    threshold_us: int
    penalty_us: int
    #: Microseconds from window open to the governor's first reaction.
    reaction_us: int
    #: The window's peak OPP — the best the governor ever offered it.
    ceiling_khz: int
    #: Contiguous ``(start_us, end_us, cause)`` segments covering the
    #: window exactly, in time order.
    segments: tuple[tuple[int, int, str], ...]
    #: ``(cause, us)`` partition of ``duration_us``, cause order.
    window_by_cause: tuple[tuple[str, int], ...]
    #: ``(cause, us)`` partition of ``penalty_us``, cause order; sums to
    #: ``penalty_us`` exactly.
    penalty_by_cause: tuple[tuple[str, int], ...]

    @property
    def dominant_cause(self) -> str | None:
        """The cause carrying the most penalty (cause order wins ties)."""
        winner: str | None = None
        best = 0
        for cause, us in self.penalty_by_cause:
            if us > best:
                best = us
                winner = cause
        return winner

    def breakdown(self) -> CauseBreakdown:
        """The profile-attachable form (:meth:`LagProfile.with_attribution`)."""
        return CauseBreakdown(
            lag_index=self.lag_index,
            window_by_cause=self.window_by_cause,
            penalty_by_cause=self.penalty_by_cause,
        )


@dataclass(frozen=True, slots=True)
class RunAttribution:
    """Per-run cause profile: every window attributed, totals exact."""

    workload: str
    config: str
    windows: tuple[WindowAttribution, ...]

    @property
    def total_penalty_us(self) -> int:
        return sum(window.penalty_us for window in self.windows)

    def per_cause_penalty_us(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for window in self.windows:
            for cause, us in window.penalty_by_cause:
                totals[cause] = totals.get(cause, 0) + us
        return totals

    def per_cause_window_us(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for window in self.windows:
            for cause, us in window.window_by_cause:
                totals[cause] = totals.get(cause, 0) + us
        return totals

    @property
    def unattributed_penalty_us(self) -> int:
        return self.per_cause_penalty_us().get(CAUSE_UNATTRIBUTED, 0)

    @property
    def dominant_cause(self) -> str | None:
        """The cause carrying the most run-total penalty."""
        totals = self.per_cause_penalty_us()
        candidates = [(cause, us) for cause, us in totals.items() if us > 0]
        if not candidates:
            return None
        return min(candidates, key=lambda item: (-item[1], cause_order_key(item[0])))[0]

    def breakdowns(self) -> tuple[CauseBreakdown, ...]:
        return tuple(window.breakdown() for window in self.windows)

    def attributed_profile(self) -> LagProfile:
        """A cause-carrying :class:`LagProfile` over this run's lags."""
        lags = tuple(
            LagMeasurement(
                lag_index=w.lag_index,
                gesture_index=w.gesture_index,
                label=w.label,
                category=w.category,
                begin_time_us=w.begin_us,
                end_frame=0,
                duration_us=w.duration_us,
                threshold_us=w.threshold_us,
            )
            for w in self.windows
        )
        return LagProfile(self.workload, lags).with_attribution(self.breakdowns())

    def summary(self) -> dict:
        """The JSON-safe form harvested into the ``obs`` record section."""
        per_penalty = self.per_cause_penalty_us()
        per_window = self.per_cause_window_us()
        return {
            "schema_version": ATTRIBUTION_SCHEMA_VERSION,
            "windows": len(self.windows),
            "total_penalty_us": self.total_penalty_us,
            "unattributed_penalty_us": self.unattributed_penalty_us,
            "per_cause_penalty_us": {
                cause: per_penalty[cause]
                for cause in CAUSES
                if per_penalty.get(cause)
            },
            "per_cause_window_us": {
                cause: per_window[cause]
                for cause in CAUSES
                if per_window.get(cause)
            },
            "dominant_cause": self.dominant_cause,
        }


def apportion_penalty(
    penalty_us: int, shares: list[tuple[str, int]]
) -> list[tuple[str, int]]:
    """Split ``penalty_us`` over ``shares`` proportionally and exactly.

    Largest-remainder rounding: every cause gets the floor of its
    proportional share, and the leftover microseconds go to the largest
    fractional remainders (ties broken by share order — cause taxonomy
    order by construction).  The returned amounts sum to ``penalty_us``
    exactly, which is what makes per-cause irritation reconstruct run
    totals to the microsecond.
    """
    if penalty_us <= 0:
        return []
    total = sum(us for _, us in shares)
    if total <= 0:
        return [(CAUSE_UNATTRIBUTED, penalty_us)]
    base: list[int] = []
    remainders: list[tuple[int, int]] = []
    for index, (_cause, us) in enumerate(shares):
        quotient, remainder = divmod(us * penalty_us, total)
        base.append(quotient)
        remainders.append((-remainder, index))
    leftover = penalty_us - sum(base)
    for _, index in sorted(remainders)[:leftover]:
        base[index] += 1
    return [
        (shares[index][0], base[index])
        for index in range(len(shares))
        if base[index]
    ]


def attribute_window(
    lag: LagMeasurement,
    freq_ts: list[int],
    freq_khz: list[int],
    busy_starts: list[int],
    busy_ends: list[int],
    boosts: list[int],
) -> WindowAttribution:
    """Attribute one lag window against the run's (sorted) event arrays."""
    t0 = lag.begin_time_us
    t1 = t0 + lag.duration_us
    penalty = max(0, lag.duration_us - lag.threshold_us)
    if t1 <= t0:
        return WindowAttribution(
            lag_index=lag.lag_index,
            gesture_index=lag.gesture_index,
            label=lag.label,
            category=lag.category,
            begin_us=t0,
            duration_us=lag.duration_us,
            threshold_us=lag.threshold_us,
            penalty_us=penalty,
            reaction_us=0,
            ceiling_khz=0,
            segments=(),
            window_by_cause=(),
            penalty_by_cause=(),
        )

    # Frequency steps inside the window: (ts, khz) with the entry value
    # first.  A transition at exactly t0 is the entry value.
    entry_index = bisect_right(freq_ts, t0) - 1
    entry_khz = 0
    if entry_index >= 0:
        entry_khz = freq_khz[entry_index]
    elif freq_khz:
        entry_khz = freq_khz[0]
    steps: list[tuple[int, int]] = [(t0, entry_khz)]
    for index in range(entry_index + 1, len(freq_ts)):
        if freq_ts[index] >= t1:
            break
        steps.append((freq_ts[index], freq_khz[index]))
    ceiling = max(khz for _, khz in steps)

    # The governor's first reaction: the first input boost in the
    # window, or the first frequency rise, whichever came first.  A
    # window already at its ceiling needed no reaction.
    first_rise: int | None = None
    for index in range(1, len(steps)):
        if steps[index][1] > steps[index - 1][1]:
            first_rise = steps[index][0]
            break
    first_boost: int | None = None
    boost_index = bisect_left(boosts, t0)
    if boost_index < len(boosts) and boosts[boost_index] < t1:
        first_boost = boosts[boost_index]
    if steps[0][1] >= ceiling:
        reaction_t = t0
        pre_cause = CAUSE_PARK_WAKE
    elif first_boost is not None and (
        first_rise is None or first_boost <= first_rise
    ):
        reaction_t = min(first_boost, t1)
        pre_cause = CAUSE_LATE_BOOST
    else:
        # ceiling > entry implies a rise exists inside the window.
        reaction_t = first_rise if first_rise is not None else t1
        pre_cause = CAUSE_PARK_WAKE

    # Busy spans clipped to the window; the tail after the last one is
    # the compositor-backlog stretch.
    spans: list[tuple[int, int]] = []
    span_index = bisect_right(busy_starts, t0) - 1
    if span_index >= 0 and busy_ends[span_index] > t0:
        spans.append((t0, min(busy_ends[span_index], t1)))
    for index in range(span_index + 1, len(busy_starts)):
        if busy_starts[index] >= t1:
            break
        spans.append(
            (max(busy_starts[index], t0), min(busy_ends[index], t1))
        )
    tail_start = spans[-1][1] if spans else t0

    # Elementary breakpoints: window edges, the reaction, the tail, every
    # frequency step, every busy edge.
    points = {t0, t1, tail_start}
    if t0 <= reaction_t <= t1:
        points.add(reaction_t)
    points.update(ts for ts, _ in steps)
    for start, end in spans:
        points.add(start)
        points.add(end)
    breakpoints = sorted(point for point in points if t0 <= point <= t1)

    segments: list[tuple[int, int, str]] = []
    step_cursor = 0
    span_cursor = 0
    dropped = False
    for index in range(len(breakpoints) - 1):
        a = breakpoints[index]
        b = breakpoints[index + 1]
        if b <= a:
            continue
        # Advance frequency state through a, tracking mid-window drops
        # (a drop "recovers" once the frequency is back at the ceiling).
        while step_cursor + 1 < len(steps) and steps[step_cursor + 1][0] <= a:
            step_cursor += 1
            if steps[step_cursor][1] < steps[step_cursor - 1][1]:
                dropped = True
            if steps[step_cursor][1] >= ceiling:
                dropped = False
        khz = steps[step_cursor][1]
        while span_cursor < len(spans) and spans[span_cursor][1] <= a:
            span_cursor += 1
        busy = (
            span_cursor < len(spans)
            and spans[span_cursor][0] <= a < spans[span_cursor][1]
        )
        if a >= tail_start:
            cause = CAUSE_COMPOSITOR
        elif a < reaction_t:
            cause = pre_cause
        elif khz >= ceiling:
            cause = CAUSE_AT_SPEED
        elif busy:
            cause = CAUSE_SLOW_RAMP
        elif dropped:
            cause = CAUSE_SETTLE_HOLD
        else:
            cause = CAUSE_STALE_LOAD
        if segments and segments[-1][2] == cause and segments[-1][1] == a:
            segments[-1] = (segments[-1][0], b, cause)
        else:
            segments.append((a, b, cause))

    totals: dict[str, int] = {}
    for start, end, cause in segments:
        totals[cause] = totals.get(cause, 0) + (end - start)
    covered = sum(totals.values())
    if covered < lag.duration_us:  # safety net; structurally unreachable
        totals[CAUSE_UNATTRIBUTED] = (
            totals.get(CAUSE_UNATTRIBUTED, 0) + lag.duration_us - covered
        )
    window_by_cause = tuple(
        (cause, totals[cause]) for cause in CAUSES if totals.get(cause)
    )
    penalty_by_cause = tuple(
        apportion_penalty(penalty, list(window_by_cause))
    )
    return WindowAttribution(
        lag_index=lag.lag_index,
        gesture_index=lag.gesture_index,
        label=lag.label,
        category=lag.category,
        begin_us=t0,
        duration_us=lag.duration_us,
        threshold_us=lag.threshold_us,
        penalty_us=penalty,
        reaction_us=max(0, reaction_t - t0),
        ceiling_khz=ceiling,
        segments=tuple(segments),
        window_by_cause=window_by_cause,
        penalty_by_cause=penalty_by_cause,
    )


def attribute_record(record, boosts=()) -> RunAttribution:
    """Attribute every lag window of one run.

    ``record`` is a :class:`~repro.results.RunRecord`; ``boosts`` the
    run's input-boost timestamps (a :class:`~repro.obs.session.
    DecisionLog`'s ``boosts`` list, or empty for governors without an
    input path).  All inputs are mode-invariant — see the module docs.
    """
    freq_ts: list[int] = []
    freq_khz: list[int] = []
    for ts, khz in record.transitions:
        freq_ts.append(ts)
        freq_khz.append(khz)
    busy_starts: list[int] = []
    busy_ends: list[int] = []
    for start, end in record.busy_intervals:
        busy_starts.append(start)
        busy_ends.append(end)
    boost_list = sorted(boosts)
    windows = tuple(
        attribute_window(
            lag, freq_ts, freq_khz, busy_starts, busy_ends, boost_list
        )
        for lag in record.lags
    )
    return RunAttribution(
        workload=record.workload, config=record.config, windows=windows
    )

"""Deterministic text report for a run's cause profile."""

from __future__ import annotations

from repro.obs.attribution.causes import CAUSE_DESCRIPTIONS, CAUSES
from repro.obs.attribution.engine import RunAttribution
from repro.harness.figures import format_table


def render_report(attribution: RunAttribution) -> str:
    """Per-cause irritation breakdown for ``repro-qoe attribute``.

    Everything here derives from simulation state, so the report is
    byte-identical across ``--jobs`` values, warm caches, and fastpath
    modes — CI diffs it directly.
    """
    total_penalty = attribution.total_penalty_us
    per_penalty = attribution.per_cause_penalty_us()
    per_window = attribution.per_cause_window_us()
    window_counts = {cause: 0 for cause in CAUSES}
    for window in attribution.windows:
        for cause, us in window.window_by_cause:
            if us:
                window_counts[cause] = window_counts.get(cause, 0) + 1
    rows = []
    for cause in CAUSES:
        window_us = per_window.get(cause, 0)
        penalty_us = per_penalty.get(cause, 0)
        if not window_us and not penalty_us:
            continue
        share = penalty_us / total_penalty if total_penalty else 0.0
        rows.append(
            [
                cause,
                str(window_counts.get(cause, 0)),
                f"{window_us / 1000:.1f}",
                f"{penalty_us / 1000:.1f}",
                f"{100 * share:.1f}%",
            ]
        )
    header = (
        f"# attribution {attribution.workload} [{attribution.config}]: "
        f"{len(attribution.windows)} window(s), total irritation "
        f"{total_penalty / 1_000_000:.3f} s"
    )
    lines = [header]
    if rows:
        lines.append(
            format_table(
                ["cause", "windows", "window ms", "irritation ms", "share"],
                rows,
            )
        )
    else:
        lines.append("(no lag windows)")
    dominant = attribution.dominant_cause
    if dominant is not None:
        lines.append(
            f"dominant cause: {dominant} — {CAUSE_DESCRIPTIONS[dominant]}"
        )
    else:
        lines.append("dominant cause: none (zero irritation)")
    return "\n".join(lines)

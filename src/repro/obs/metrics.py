"""The metrics registry: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is deliberately tiny — plain dicts of ints and
floats, no locks, no label sets — because it lives inside one
deterministic simulation run and is harvested exactly once, into the
schema-versioned ``obs`` section of the run's
:class:`~repro.results.RunRecord`.  Everything in a snapshot is pure
JSON and derived from *simulation* state, never wall-clock state, so two
runs of the same spec produce identical snapshots regardless of host or
worker count.
"""

from __future__ import annotations

#: Version of the ``obs`` section layout inside a RunRecord row.  The
#: section is additive and self-versioned: bumping this does NOT bump
#: ``RUN_RECORD_SCHEMA_VERSION`` (consumers must treat an unknown obs
#: version as opaque), but any change to the snapshot's key layout or
#: value meaning must bump it.  Version 2 added the ``attribution``
#: cause-profile summary (itself self-versioned, see
#: ``repro.obs.attribution.engine.ATTRIBUTION_SCHEMA_VERSION``).
OBS_SCHEMA_VERSION = 2

#: Histogram bucket upper bounds: powers of four give ~2 buckets per
#: decade over the simulator's natural ranges (µs-scale lags up to
#: minute-scale spans; tick counts from 1 to millions) at 16 buckets.
_BUCKET_BOUNDS = tuple(4**exponent for exponent in range(16))


class Histogram:
    """Fixed-bucket histogram over non-negative integer observations."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        buckets = {}
        for index, bound in enumerate(_BUCKET_BOUNDS):
            if self.counts[index]:
                buckets[f"le_{bound}"] = self.counts[index]
        if self.counts[-1]:
            buckets["inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Counters, gauges and histograms, harvested into one JSON snapshot."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: int | float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """The registry as a pure-JSON dict (deterministic key order)."""
        return {
            "schema_version": OBS_SCHEMA_VERSION,
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name] for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

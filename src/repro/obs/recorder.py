"""The divergence flight recorder.

A :class:`FlightRecorder` is a bounded ring buffer of *semantic* kernel
events — cpufreq OPP transitions, frame compositions, matched gesture
windows — the events that are guaranteed bit-identical between the fast
and slow paths (``REPRO_FASTPATH``/``REPRO_STREAM`` A/B).  Mode-specific
bookkeeping (timer parking, tick elision) is deliberately *not*
recorded: the recorder's entire purpose is to compare two runs that
should agree, so it only records what must agree.

When a golden A/B test finds a digest mismatch, two recorders (one per
mode) turn the useless "digests differ" into a report naming the first
event where the kernels diverged: :func:`divergence_report`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True, slots=True)
class RecordedEvent:
    """One semantic kernel event: global index, sim time, what happened."""

    seq: int
    ts: int
    category: str
    label: str

    def describe(self) -> str:
        return f"#{self.seq} t={self.ts}us {self.category}: {self.label}"


class FlightRecorder:
    """Bounded ring of recent semantic kernel events."""

    __slots__ = ("_events", "_seq", "capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._events: deque[RecordedEvent] = deque(maxlen=capacity)
        self._seq = 0

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (>= ``len(events())`` once the ring wraps)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events scrolled out of the bounded ring."""
        return self._seq - len(self._events)

    def record(self, ts: int, category: str, label: str) -> None:
        self._events.append(RecordedEvent(self._seq, ts, category, label))
        self._seq += 1

    def events(self) -> list[RecordedEvent]:
        return list(self._events)


def first_divergence(
    a: "FlightRecorder | list[RecordedEvent]",
    b: "FlightRecorder | list[RecordedEvent]",
) -> tuple[RecordedEvent | None, RecordedEvent | None] | None:
    """The first position where the two event streams disagree.

    Events align by their global ``seq``; comparison starts at the first
    seq still held by *both* rings.  Returns ``None`` when the
    comparable windows agree (including in length), else a pair
    ``(event_a, event_b)`` where either side is ``None`` if that stream
    ended early.
    """
    events_a = a.events() if isinstance(a, FlightRecorder) else list(a)
    events_b = b.events() if isinstance(b, FlightRecorder) else list(b)
    start_a = events_a[0].seq if events_a else 0
    start_b = events_b[0].seq if events_b else 0
    start = max(start_a, start_b)
    tail_a = [event for event in events_a if event.seq >= start]
    tail_b = [event for event in events_b if event.seq >= start]
    for event_a, event_b in zip(tail_a, tail_b):
        if (event_a.ts, event_a.category, event_a.label) != (
            event_b.ts,
            event_b.category,
            event_b.label,
        ):
            return (event_a, event_b)
    if len(tail_a) != len(tail_b):
        longer_a = len(tail_a) > len(tail_b)
        extra = tail_a[len(tail_b)] if longer_a else tail_b[len(tail_a)]
        return (extra, None) if longer_a else (None, extra)
    return None


def divergence_report(
    a: "FlightRecorder | list[RecordedEvent]",
    b: "FlightRecorder | list[RecordedEvent]",
    label_a: str = "a",
    label_b: str = "b",
    context: int = 5,
) -> str:
    """A human-readable first-diverging-event report.

    The report names the first diverging event on each side, shows up to
    ``context`` preceding events both sides agree on, and flags when the
    bounded rings scrolled past potentially earlier divergence.
    """
    recorder_a = a if isinstance(a, FlightRecorder) else None
    recorder_b = b if isinstance(b, FlightRecorder) else None
    events_a = a.events() if recorder_a is not None else list(a)
    events_b = b.events() if recorder_b is not None else list(b)
    divergence = first_divergence(events_a, events_b)
    lines = [f"flight recorder: {label_a} vs {label_b}"]
    counts = (
        f"  events recorded: {label_a}={len(events_a)} "
        f"{label_b}={len(events_b)}"
    )
    lines.append(counts)
    for label, recorder in ((label_a, recorder_a), (label_b, recorder_b)):
        if recorder is not None and recorder.dropped:
            lines.append(
                f"  NOTE: {label} ring dropped {recorder.dropped} earlier "
                "event(s); an earlier divergence may have scrolled out"
            )
    if divergence is None:
        lines.append("  no divergence within the comparable window")
        return "\n".join(lines)
    event_a, event_b = divergence
    diverging_seq = (event_a or event_b).seq
    agreeing = [event for event in events_a if event.seq < diverging_seq]
    if agreeing:
        lines.append(f"  last {min(context, len(agreeing))} agreeing event(s):")
        for event in agreeing[-context:]:
            lines.append(f"    {event.describe()}")
    lines.append("  FIRST DIVERGING EVENT:")
    lines.append(
        f"    {label_a}: "
        + (event_a.describe() if event_a is not None else "<stream ended>")
    )
    lines.append(
        f"    {label_b}: "
        + (event_b.describe() if event_b is not None else "<stream ended>")
    )
    return "\n".join(lines)

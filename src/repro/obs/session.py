"""The observability session: the one handle instrumentation sites see.

Zero-overhead-when-off contract
-------------------------------

Instrumented modules bind ``self._obs = active()`` **once, at
construction** (every run builds a fresh :class:`~repro.device.device.
Device`, so construction-time binding is exact), and every
instrumentation site is guarded by exactly one predicate::

    obs = self._obs
    if obs is not None:
        obs.freq_transition(timestamp, khz)

With no session installed the whole subsystem costs one attribute load
plus an ``is not None`` test per site — no dict lookups, no string
formatting, no allocation.  The micro-benchmark in
``benchmarks/bench_obs_overhead.py`` holds this to <=1% of macro replay
throughput.

Sessions are installed two ways:

* **opt-in env flag** (``REPRO_TRACE=1``): :func:`~repro.harness.
  experiment.replay_run` installs a metrics+flight-recorder session for
  the duration of the run and harvests it into the RunRecord's ``obs``
  section — including inside fleet worker processes, which inherit the
  environment;
* **programmatic** (the ``repro-qoe trace`` command, golden A/B tests):
  the caller installs its own session — usually with a
  :class:`~repro.obs.trace.TraceCollector` attached — around a replay
  and keeps the collected events afterwards.

The emit methods below are the complete instrumentation vocabulary; each
decides which backends (tracer / metrics / flight recorder) an event
feeds.  Mode-dependent events (timer parking) never reach the flight
recorder — the recorder only holds events the fast/slow paths must agree
on, which is what makes its A/B divergence reports meaningful.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.env import env_flag
from repro.core.errors import ReproError
from repro.obs.metrics import OBS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import (
    TID_CPUFREQ,
    TID_FRAMES,
    TID_GESTURES,
    TID_GOVERNOR,
    TID_TIMERS,
    TraceCollector,
)

TRACE_FLAG = "REPRO_TRACE"


class ObsError(ReproError):
    """Misuse of the observability session machinery."""


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE=1`` opted this process into observability."""
    return env_flag(TRACE_FLAG, default=False)


_ACTIVE: "ObsSession | None" = None


def active() -> "ObsSession | None":
    """The installed session, or None (the common, free case)."""
    return _ACTIVE


def install(session: "ObsSession") -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError("an observability session is already installed")
    _ACTIVE = session


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def observed(session: "ObsSession"):
    """Install ``session`` for the duration of a ``with`` block."""
    install(session)
    try:
        yield session
    finally:
        uninstall()


class DecisionLog:
    """Mode-invariant governor decision context for attribution.

    Two append-only lists: input-boost timestamps and ``(ts, kind,
    khz)`` decision events, both emitted only at actual frequency-change
    moments — which makes the log identical across fastpath modes
    (elided ticks are provably no-op) and bounds its size by the
    transition count the RunRecord stores whole anyway.
    """

    __slots__ = ("boosts", "decisions")

    def __init__(self) -> None:
        self.boosts: list[int] = []
        self.decisions: list[tuple[int, str, int]] = []


class ObsSession:
    """One run's observability backends, any subset of four."""

    __slots__ = ("tracer", "metrics", "recorder", "decisions")

    def __init__(
        self,
        tracer: TraceCollector | None = None,
        metrics: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        decisions: "DecisionLog | None" = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.recorder = recorder
        self.decisions = decisions

    @classmethod
    def for_run(cls) -> "ObsSession":
        """The ``REPRO_TRACE=1`` per-run session: metrics + recorder +
        decision log.

        No trace collector — an unconsumed event list would grow
        per-run memory for nothing; the ``repro-qoe trace`` command
        installs :meth:`for_tracing` when someone wants the timeline.
        The decision log does grow, but only at frequency-change
        moments, which the record's transition trace stores whole
        regardless — it feeds the attribution harvest.
        """
        return cls(
            metrics=MetricsRegistry(),
            recorder=FlightRecorder(),
            decisions=DecisionLog(),
        )

    @classmethod
    def for_tracing(cls) -> "ObsSession":
        """Everything on: tracer + metrics + recorder + decision log."""
        return cls(
            tracer=TraceCollector(),
            metrics=MetricsRegistry(),
            recorder=FlightRecorder(),
            decisions=DecisionLog(),
        )

    # --- emit vocabulary (called behind the per-site predicate) ---------------

    def governor_started(self, ts: int, name: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                f"governor_start:{name}", ts, TID_GOVERNOR, {"governor": name}
            )
        if self.metrics is not None:
            self.metrics.inc("governor.starts")

    def input_boost(self, ts: int, governor: str, target_khz: int) -> None:
        """A governor boosted frequency straight from the input path."""
        if self.tracer is not None:
            self.tracer.instant(
                "input_boost", ts, TID_GOVERNOR,
                {"governor": governor, "target_khz": target_khz},
            )
            self.tracer.counter("boost_state", ts, {"boosted": 1})
        if self.recorder is not None:
            self.recorder.record(
                ts, "governor", f"input_boost target={target_khz}"
            )
        if self.metrics is not None:
            self.metrics.inc("governor.input_boosts")
        if self.decisions is not None:
            self.decisions.boosts.append(ts)

    def governor_decision(
        self,
        ts: int,
        governor: str,
        kind: str,
        khz: int,
        waited_us: int = 0,
    ) -> None:
        """A governor changed frequency: the decision and its context.

        Emitted only at actual frequency-change moments (ramp/step
        up/down, jump-to-max, settle-to-efficient), never on no-op
        samples — which keeps the stream mode-invariant under tick
        elision.  ``waited_us`` carries the decision's latency context
        where one exists (a floor hold before a ramp-down, the idle
        stretch before a settle).
        """
        if self.tracer is not None:
            self.tracer.instant(
                f"decision:{kind}", ts, TID_GOVERNOR,
                {"governor": governor, "khz": khz, "waited_us": waited_us},
            )
            if kind in ("ramp_down", "settle_drop"):
                self.tracer.counter("boost_state", ts, {"boosted": 0})
        if self.recorder is not None:
            self.recorder.record(
                ts, "governor", f"decision:{kind} khz={khz}"
            )
        if self.metrics is not None:
            self.metrics.inc("governor.decisions")
            self.metrics.inc(f"governor.decisions.{kind}")
        if self.decisions is not None:
            self.decisions.decisions.append((ts, kind, khz))

    def governor_load(self, ts: int, load: int) -> None:
        """One sampled load value — a trace counter track only.

        Load samples are mode-*dependent* (elided ticks never sample),
        so they feed the annotated timeline and a metrics counter but
        never the flight recorder or the decision log the attribution
        engine consumes.
        """
        if self.tracer is not None:
            self.tracer.counter("governor_load", ts, {"load": load})
        if self.metrics is not None:
            self.metrics.inc("governor.load_samples")

    def timer_parked(self, ts: int, governor: str, mode: str) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                f"park:{mode}", ts, TID_TIMERS, {"governor": governor}
            )
        if self.metrics is not None:
            self.metrics.inc("timer.parks")
            self.metrics.inc(f"timer.parks.{mode}")

    def timer_unparked(
        self,
        ts: int,
        governor: str,
        mode: str | None,
        parked_since: int,
        elided: int,
    ) -> None:
        """A park ended: emit the whole park as one span + elision stats."""
        if self.tracer is not None:
            self.tracer.complete(
                f"parked:{mode}",
                parked_since,
                max(0, ts - parked_since),
                TID_TIMERS,
                {"governor": governor, "ticks_elided": elided},
            )
        if self.metrics is not None:
            self.metrics.inc("timer.unparks")
            self.metrics.inc("timer.ticks_elided", elided)
            self.metrics.observe("timer.elided_per_park", elided)

    def freq_transition(self, ts: int, khz: int) -> None:
        """One cpufreq OPP change (the paper's Fig. 3 staircase)."""
        if self.tracer is not None:
            self.tracer.counter("cpufreq_khz", ts, {"khz": khz})
            self.tracer.instant(
                "opp_transition", ts, TID_CPUFREQ, {"khz": khz}
            )
        if self.recorder is not None:
            self.recorder.record(ts, "cpufreq", f"opp={khz}")
        if self.metrics is not None:
            self.metrics.inc("cpufreq.transitions")

    def frame_composed(self, ts: int, frame_index: int) -> None:
        """The display composed a frame on its vsync deadline."""
        if self.tracer is not None:
            self.tracer.instant(
                "frame", ts, TID_FRAMES, {"frame_index": frame_index}
            )
        if self.recorder is not None:
            self.recorder.record(ts, "frame", f"composed={frame_index}")
        if self.metrics is not None:
            self.metrics.inc("frames.composed")

    def gesture_window_opened(
        self, ts: int, label: str, gesture_index: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                f"window_open:{label}", ts, TID_GESTURES,
                {"gesture_index": gesture_index},
            )
        if self.metrics is not None:
            self.metrics.inc("match.windows_opened")

    def lag_window_closed(
        self,
        begin_ts: int,
        duration_us: int,
        label: str,
        category: str,
        threshold_us: int,
    ) -> None:
        """A gesture's annotation window matched: the measured lag span."""
        if self.tracer is not None:
            self.tracer.complete(
                f"lag:{label}",
                begin_ts,
                duration_us,
                TID_GESTURES,
                {
                    "category": category,
                    "threshold_us": threshold_us,
                    "over_threshold": duration_us > threshold_us,
                },
            )
        if self.recorder is not None:
            self.recorder.record(
                begin_ts + duration_us, "lag", f"{label} dur={duration_us}"
            )
        if self.metrics is not None:
            self.metrics.inc("match.lags_matched")
            self.metrics.observe("match.lag_duration_us", duration_us)
            if duration_us > threshold_us:
                self.metrics.inc("match.lags_over_threshold")

    def segments_streamed(self, segments: int, end_frame: int) -> None:
        """A capture finalized: how many closed runs flowed to the taps."""
        if self.metrics is not None:
            self.metrics.inc("stream.segments_emitted", segments)
            self.metrics.set_gauge("stream.end_frame", end_frame)

    # --- harvest --------------------------------------------------------------

    def harvest_run(self, engine, governor=None) -> dict:
        """The run's ``obs`` row section: registry snapshot + engine stats.

        Engine totals are *read once here* rather than counted per event
        — the dispatch loop is the hottest code in the simulator and
        already keeps these counters for its own accounting.
        """
        metrics = self.metrics if self.metrics is not None else MetricsRegistry()
        metrics.inc("engine.events_dispatched", engine.events_fired)
        metrics.inc("engine.heap_compactions", engine.heap_compactions)
        if governor is not None:
            samples = getattr(governor, "samples_taken", None)
            if samples is not None:
                metrics.set_gauge("governor.samples_taken", samples)
        snapshot = metrics.snapshot()
        if self.tracer is not None:
            snapshot["trace_events"] = self.tracer.event_count
        if self.recorder is not None:
            snapshot["flight_recorder"] = {
                "recorded": self.recorder.total_recorded,
                "dropped": self.recorder.dropped,
                "capacity": self.recorder.capacity,
            }
        return snapshot


__all__ = [
    "DecisionLog",
    "OBS_SCHEMA_VERSION",
    "ObsError",
    "ObsSession",
    "TRACE_FLAG",
    "active",
    "install",
    "observed",
    "trace_enabled",
    "uninstall",
]

"""Simulation-time tracing in the Chrome trace-event format.

A :class:`TraceCollector` accumulates trace events whose timestamps are
*simulation* microseconds — the Chrome trace-event format's native time
unit — so a dumped trace loads directly into Perfetto / ``chrome://
tracing`` with the simulated session on the timeline.  Event categories
map onto synthetic threads of one synthetic process (the simulated
device): governor activity, cpufreq OPP changes, timer park/unpark
spans, frame compositions, and gesture annotation windows each get their
own track.

The collector knows nothing about the simulator; instrumented modules
emit through :class:`~repro.obs.session.ObsSession`, which fans out to a
collector only when one was requested (the ``repro-qoe trace`` command,
or a test installing its own session).
"""

from __future__ import annotations

import json

#: The one synthetic process: the simulated device.
PID_DEVICE = 1

#: Synthetic thread ids — one per track on the Perfetto timeline.
TID_GOVERNOR = 1
TID_CPUFREQ = 2
TID_TIMERS = 3
TID_FRAMES = 4
TID_GESTURES = 5
TID_ATTRIBUTION = 6

THREAD_NAMES = {
    TID_GOVERNOR: "governor",
    TID_CPUFREQ: "cpufreq",
    TID_TIMERS: "timers",
    TID_FRAMES: "frames",
    TID_GESTURES: "gestures",
    TID_ATTRIBUTION: "attribution",
}

#: Chrome trace-event phases this module emits (M = metadata).
PHASES = ("X", "i", "C", "M")


class TraceCollector:
    """Accumulates Chrome trace events for one simulation run."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[dict] = []

    @property
    def event_count(self) -> int:
        return len(self._events)

    def instant(
        self, name: str, ts: int, tid: int, args: dict | None = None
    ) -> None:
        """An instant event (``ph: i``) at simulation time ``ts``."""
        event = {
            "name": name,
            "ph": "i",
            "ts": ts,
            "pid": PID_DEVICE,
            "tid": tid,
            "s": "t",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def complete(
        self,
        name: str,
        ts: int,
        dur: int,
        tid: int,
        args: dict | None = None,
    ) -> None:
        """A complete span (``ph: X``) of ``dur`` µs starting at ``ts``."""
        event = {
            "name": name,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": PID_DEVICE,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, ts: int, series: dict[str, int | float]) -> None:
        """A counter sample (``ph: C``): Perfetto draws these as a track."""
        self._events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts,
                "pid": PID_DEVICE,
                "args": dict(series),
            }
        )

    def to_chrome_trace(self, run_label: str | None = None) -> dict:
        """The finished document: metadata events + collected events.

        Spans can be emitted at close time (a park span is only known at
        unpark), so events are sorted by timestamp on export — viewers
        tolerate disorder, diff-based tests should not have to.
        """
        metadata: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": PID_DEVICE,
                "tid": 0,
                "args": {"name": run_label or "repro-qoe simulated device"},
            }
        ]
        for tid, thread_name in THREAD_NAMES.items():
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID_DEVICE,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
            metadata.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": PID_DEVICE,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        ordered = sorted(
            self._events, key=lambda event: (event["ts"], event.get("tid", 0))
        )
        return {
            "traceEvents": metadata + ordered,
            "displayTimeUnit": "ms",
            "otherData": {"time_base": "simulation_microseconds"},
        }

    def write(self, path, run_label: str | None = None) -> None:
        """Dump the Chrome trace JSON document to ``path``."""
        from pathlib import Path

        document = self.to_chrome_trace(run_label)
        Path(path).write_text(
            json.dumps(document, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )

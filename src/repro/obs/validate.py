"""Structural validator for exported Chrome trace-event JSON.

CI runs ``python -m repro.obs.validate trace.json`` on the traced smoke
scenario so a malformed export fails the build before anyone wastes time
dragging a broken file into Perfetto.  The checks are structural, not a
full re-implementation of the Chrome spec: the document shape, the
per-phase required fields, timestamp sanity, and — because this
validator knows what a *simulator* trace must contain — that the five
device tracks are declared and the core event families are present.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.errors import ReproError
from repro.obs.attribution.causes import CAUSES
from repro.obs.trace import PHASES, PID_DEVICE, THREAD_NAMES, TID_ATTRIBUTION

#: Event-name prefixes a traced run must contain at least one of, per
#: acceptance pillar: governor activity, cpufreq, parking, frames,
#: gestures.  Keyed by a human label for the error message.
REQUIRED_FAMILIES: dict[str, tuple[str, ...]] = {
    "governor": ("governor_start:",),
    "cpufreq": ("opp_transition",),
    "timer parking": ("parked:", "park:"),
    "frames": ("frame",),
    "gesture windows": ("lag:", "window_open:"),
}


def _check_cause_span(where: str, event: dict) -> list[str]:
    """Attribution cause spans: known cause name + a lag label to anchor."""
    problems: list[str] = []
    name = event.get("name", "")
    if not (isinstance(name, str) and name.startswith("cause:")):
        problems.append(
            f"{where}: attribution-track spans must be named cause:<cause>"
        )
        return problems
    cause = name[len("cause:"):]
    if cause not in CAUSES:
        problems.append(f"{where}: unknown attribution cause {cause!r}")
    args = event.get("args")
    if not isinstance(args, dict) or not isinstance(args.get("lag"), str):
        problems.append(
            f"{where}: cause span args must carry the 'lag' window label"
        )
    return problems


def validate_document(document: object) -> list[str]:
    """Every structural problem found in ``document`` (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object with a traceEvents array"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        return ["traceEvents is empty"]

    declared_tids: set[int] = set()
    seen_names: list[str] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string name")
        if event.get("pid") != PID_DEVICE:
            problems.append(f"{where}: pid must be {PID_DEVICE}")
        if phase == "M":
            if event.get("name") == "thread_name":
                declared_tids.add(event.get("tid"))
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative integer")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative integer")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope must be t/p/g")
        if phase in ("X", "i") and event.get("tid") not in THREAD_NAMES:
            problems.append(f"{where}: tid not a known device track")
        if phase == "C":
            series = event.get("args")
            if not isinstance(series, dict) or not series:
                problems.append(
                    f"{where}: counter args must be a non-empty object"
                )
            else:
                for key, value in series.items():
                    if (
                        not isinstance(key, str)
                        or isinstance(value, bool)
                        or not isinstance(value, (int, float))
                    ):
                        problems.append(
                            f"{where}: counter series {key!r} must map a "
                            "string to a number"
                        )
                        break
        if phase == "X" and event.get("tid") == TID_ATTRIBUTION:
            problems.extend(_check_cause_span(where, event))
        seen_names.append(event.get("name", ""))

    missing_tracks = set(THREAD_NAMES) - declared_tids
    if missing_tracks:
        names = ", ".join(THREAD_NAMES[tid] for tid in sorted(missing_tracks))
        problems.append(f"missing thread_name metadata for track(s): {names}")

    for family, prefixes in REQUIRED_FAMILIES.items():
        if not any(
            name.startswith(prefix)
            for name in seen_names
            for prefix in prefixes
        ):
            problems.append(f"no {family} events in trace")
    return problems


def validate_file(path: str | Path) -> list[str]:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_document(document)


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if len(arguments) != 1:
        print("usage: python -m repro.obs.validate TRACE_JSON", file=sys.stderr)
        return 2
    problems = validate_file(arguments[0])
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        # One-line summary error, in the CLI's ReproError shape, so a
        # non-zero exit always ends with a single greppable line.
        error = ReproError(
            f"{arguments[0]}: {len(problems)} structural problem(s); "
            f"first: {problems[0]}"
        )
        print(f"repro-qoe: error: {error}", file=sys.stderr)
        return 1
    print(f"OK: {arguments[0]} is a valid simulator trace", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The oracle: the optimal frequency profile of §III-B."""

from repro.oracle.builder import OracleResult, build_oracle
from repro.oracle.profile import FrequencyProfile, ProfileSegment

__all__ = ["OracleResult", "build_oracle", "FrequencyProfile", "ProfileSegment"]

"""Composing the oracle from fixed-frequency executions (paper §III-B).

"We then use the traces of all fixed frequency workload executions to
compose an optimal frequency trace (oracle) that uses the least amount of
energy possible without irritating the user. … To construct the oracle we
pick the lowest frequency and corresponding load for each lag that is
still below the chosen irritation threshold … we set the irritation
threshold to 110% of what the fastest frequency could achieve.  For each
interval in a workload where there is no lag, we pick the frequency and
corresponding load that had the lowest overall energy consumption for the
complete workload."
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagProfile
from repro.device.frequencies import FrequencyTable
from repro.device.power import PowerModel
from repro.metrics.irritation import IrritationResult, irritation
from repro.oracle.profile import FrequencyProfile, ProfileSegment

DEFAULT_SLACK = 1.10  # "the user does not notice a 10% difference"

# Lag lengths are measured from 30 fps video, so durations are quantized
# to ~33 ms frames; a deadline within one frame of the fastest measurement
# is not distinguishable.  The paper's measurements carry the same
# granularity.
FRAME_QUANTUM_US = 34_000


class BusyTimeline:
    """Sorted busy intervals with O(log n) busy-time window queries.

    Accepts any iterable of ``(start, end)`` pairs — a plain list or the
    device accumulators' compact :class:`~repro.results.IntPairs` — and
    stores starts, ends and the prefix sum as ``array('q')`` buffers, so
    a day-long run's half-million intervals cost 24 bytes each instead
    of three boxed-int lists.
    """

    def __init__(self, intervals) -> None:
        from array import array

        from repro.results.pairs import IntPairs

        if isinstance(intervals, IntPairs):
            starts = array("q", intervals.firsts())
            ends = array("q", intervals.seconds())
        else:
            starts = array("q", (s for s, _ in intervals))
            ends = array("q", (e for _, e in intervals))
        prefix = array("q", [0]) * (len(starts) + 1)
        last_end = -1
        total = 0
        for index in range(len(starts)):
            start = starts[index]
            end = ends[index]
            if end < start:
                raise ReproError(f"busy interval ({start}, {end}) is inverted")
            if start < last_end:
                raise ReproError("busy intervals overlap or are unsorted")
            last_end = end
            total += end - start
            prefix[index + 1] = total
        self._starts = starts
        self._ends = ends
        self._prefix = prefix

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BusyTimeline):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __hash__(self) -> int:
        return hash((tuple(self._starts), tuple(self._ends)))

    @property
    def total_busy_us(self) -> int:
        return self._prefix[-1]

    def busy_in(self, window_start: int, window_end: int) -> int:
        """Busy microseconds inside ``[window_start, window_end)``."""
        if window_end <= window_start:
            return 0
        lo = bisect.bisect_right(self._ends, window_start)
        hi = bisect.bisect_left(self._starts, window_end)
        if lo >= hi:
            return 0
        total = self._prefix[hi] - self._prefix[lo]
        # Trim the partially-overlapping boundary intervals.
        total -= max(0, window_start - self._starts[lo])
        total -= max(0, self._ends[hi - 1] - window_end)
        return max(0, total)


@dataclass(frozen=True, slots=True)
class OracleLag:
    """Per-lag oracle decision."""

    label: str
    category: str
    begin_us: int
    chosen_khz: int
    duration_us: int
    fastest_duration_us: int
    deadline_us: int
    threshold_us: int


@dataclass(frozen=True, slots=True)
class OracleResult:
    """The composed oracle: frequency profile, energy and irritation."""

    profile: FrequencyProfile
    energy_j: float
    base_khz: int
    lags: tuple[OracleLag, ...]

    def irritation(self) -> IrritationResult:
        """Oracle irritation vs the user-set (HCI) thresholds."""
        return irritation(
            [(lag.label, lag.duration_us, lag.threshold_us) for lag in self.lags]
        )

    def lag_durations_ms(self) -> list[float]:
        return [lag.duration_us / 1e3 for lag in self.lags]


def build_oracle(
    fixed_profiles: dict[int, LagProfile],
    fixed_busy: dict[int, BusyTimeline],
    fixed_energy_j: dict[int, float],
    duration_us: int,
    table: FrequencyTable,
    power_model: PowerModel,
    slack: float = DEFAULT_SLACK,
) -> OracleResult:
    """Compose the oracle from the 14 fixed-frequency executions.

    Args:
        fixed_profiles: matcher lag profile per fixed frequency.
        fixed_busy: busy timeline per fixed frequency (for energy).
        fixed_energy_j: measured total energy per fixed frequency.
        duration_us: common run duration.
        table: the OPP table.
        power_model: the calibrated power model.
        slack: deadline factor over the fastest frequency (1.10).
    """
    freqs = sorted(fixed_profiles)
    if set(freqs) != set(table.frequencies_khz):
        raise ReproError("need a lag profile for every operating point")
    if set(fixed_busy) != set(freqs) or set(fixed_energy_j) != set(freqs):
        raise ReproError("need busy timelines and energies for every OPP")
    fastest = freqs[-1]
    lag_count = len(fixed_profiles[fastest])
    for freq in freqs:
        if len(fixed_profiles[freq]) != lag_count:
            raise ReproError(
                f"profile at {freq} kHz has a different lag count; "
                "all runs must replay the same workload"
            )

    # Non-lag frequency: lowest total energy over the whole workload.
    base_khz = min(freqs, key=lambda f: fixed_energy_j[f])

    # Per-lag frequency: lowest meeting 110% of the fastest duration.
    oracle_lags: list[OracleLag] = []
    for index in range(lag_count):
        fastest_lag = fixed_profiles[fastest].lags[index]
        deadline = max(
            int(fastest_lag.duration_us * slack),
            fastest_lag.duration_us + FRAME_QUANTUM_US,
        )
        if fastest_lag.duration_us <= fastest_lag.threshold_us:
            # "The least amount of energy possible without irritating the
            # user": when the fastest frequency meets the user's threshold,
            # the oracle must too.
            deadline = min(deadline, fastest_lag.threshold_us)
        chosen = fastest
        chosen_duration = fastest_lag.duration_us
        for freq in freqs:
            duration = fixed_profiles[freq].lags[index].duration_us
            if duration <= deadline:
                chosen = freq
                chosen_duration = duration
                break
        oracle_lags.append(
            OracleLag(
                label=fastest_lag.label,
                category=fastest_lag.category,
                begin_us=fastest_lag.begin_time_us,
                chosen_khz=chosen,
                duration_us=chosen_duration,
                fastest_duration_us=fastest_lag.duration_us,
                deadline_us=deadline,
                threshold_us=fastest_lag.threshold_us,
            )
        )

    profile = _compose_profile(oracle_lags, base_khz, duration_us)
    base_lag_windows = [
        (lag.begin_time_us, lag.begin_time_us + lag.duration_us)
        for lag in fixed_profiles[base_khz].lags
    ]
    energy = _compose_energy(
        profile, fixed_busy, table, power_model, base_khz, base_lag_windows
    )
    return OracleResult(
        profile=profile,
        energy_j=energy,
        base_khz=base_khz,
        lags=tuple(oracle_lags),
    )


def _compose_profile(
    lags: list[OracleLag], base_khz: int, duration_us: int
) -> FrequencyProfile:
    segments: list[ProfileSegment] = []
    cursor = 0
    for lag in sorted(lags, key=lambda l: l.begin_us):
        start = max(cursor, lag.begin_us)
        end = min(duration_us, lag.begin_us + lag.duration_us)
        if start > cursor:
            segments.append(ProfileSegment(cursor, start, base_khz))
        if end > start:
            segments.append(ProfileSegment(start, end, lag.chosen_khz))
            cursor = end
    if cursor < duration_us:
        segments.append(ProfileSegment(cursor, duration_us, base_khz))
    return FrequencyProfile(segments)


def _compose_energy(
    profile: FrequencyProfile,
    fixed_busy: dict[int, BusyTimeline],
    table: FrequencyTable,
    power_model: PowerModel,
    base_khz: int,
    base_lag_windows: list[tuple[int, int]],
) -> float:
    """Integrate *dynamic* power over the composed profile.

    Each segment draws its busy time from the fixed-frequency run that the
    oracle assigns there — "the lowest frequency and corresponding load" —
    so race-to-idle is accounted faithfully.  Like the paper's model, only
    dynamic core power (active minus idle) is charged.

    Base segments exclude the base run's busy time inside its *own* lag
    windows: that interaction work is already charged by the chosen-
    frequency lag segments, and counting it twice would inflate the
    oracle (the base run services lags slower than the chosen runs do).
    """
    energy = 0.0
    idle_w = power_model.idle_power()
    for segment in profile.segments:
        point = table.point(segment.freq_khz)
        timeline = fixed_busy[segment.freq_khz]
        busy_us = timeline.busy_in(segment.start_us, segment.end_us)
        if segment.freq_khz == base_khz:
            for lag_start, lag_end in base_lag_windows:
                lo = max(segment.start_us, lag_start)
                hi = min(segment.end_us, lag_end)
                if hi > lo:
                    busy_us -= timeline.busy_in(lo, hi)
            busy_us = max(0, busy_us)
        dynamic_w = power_model.active_power(point.freq_khz, point.volts) - idle_w
        energy += busy_us * dynamic_w / 1e6
    return energy

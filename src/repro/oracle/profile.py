"""Piecewise-constant frequency profiles.

Used both for the oracle's composed frequency trace and for rendering a
governor's transition log into plot-ready series (the paper's Fig. 3).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.errors import ReproError


@dataclass(frozen=True, slots=True)
class ProfileSegment:
    """Constant frequency over ``[start_us, end_us)``."""

    start_us: int
    end_us: int
    freq_khz: int

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


class FrequencyProfile:
    """An f(t) step function over a run's duration."""

    def __init__(self, segments: list[ProfileSegment]) -> None:
        if not segments:
            raise ReproError("frequency profile cannot be empty")
        for prev, cur in zip(segments, segments[1:]):
            if cur.start_us != prev.end_us:
                raise ReproError(
                    f"profile has a gap: {prev.end_us} -> {cur.start_us}"
                )
        for segment in segments:
            if segment.duration_us < 0:
                raise ReproError("profile segment has negative duration")
        self._segments = [s for s in segments if s.duration_us > 0]
        # Parallel start list: frequency_at/window bisect instead of
        # scanning, so rendering a transition-heavy trace stays O(n log n).
        self._starts = [s.start_us for s in self._segments]

    @classmethod
    def from_transitions(
        cls, transitions: list[tuple[int, int]], end_us: int
    ) -> "FrequencyProfile":
        """Build from ``(timestamp, freq_khz)`` transition pairs."""
        if not transitions:
            raise ReproError("no transitions to build a profile from")
        segments = []
        for (t0, f0), (t1, _f1) in zip(transitions, transitions[1:]):
            segments.append(ProfileSegment(t0, t1, f0))
        last_t, last_f = transitions[-1]
        segments.append(ProfileSegment(last_t, max(end_us, last_t), last_f))
        return cls(segments)

    @property
    def segments(self) -> list[ProfileSegment]:
        return list(self._segments)

    @property
    def start_us(self) -> int:
        return self._segments[0].start_us

    @property
    def end_us(self) -> int:
        return self._segments[-1].end_us

    def frequency_at(self, timestamp: int) -> int:
        index = bisect_right(self._starts, timestamp) - 1
        if index >= 0:
            segment = self._segments[index]
            if timestamp < segment.end_us:
                return segment.freq_khz
        if timestamp == self.end_us:
            return self._segments[-1].freq_khz
        raise ReproError(f"timestamp {timestamp} outside profile range")

    def window(self, start_us: int, end_us: int) -> list[ProfileSegment]:
        """Segments clipped to a window (for trace snapshots like Fig. 3)."""
        out = []
        first = max(0, bisect_right(self._starts, start_us) - 1)
        for segment in self._segments[first:]:
            if segment.start_us >= end_us:
                break
            if segment.end_us <= start_us:
                continue
            out.append(
                ProfileSegment(
                    max(segment.start_us, start_us),
                    min(segment.end_us, end_us),
                    segment.freq_khz,
                )
            )
        return out

    def series(self, step_us: int = 10_000) -> tuple[list[float], list[float]]:
        """(seconds, GHz) sampled series for plotting/printing."""
        xs, ys = [], []
        t = self.start_us
        while t < self.end_us:
            xs.append(t / 1e6)
            ys.append(self.frequency_at(t) / 1e6)
            t += step_us
        return xs, ys

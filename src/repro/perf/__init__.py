"""Performance subsystem: benchmarks, trajectory, and regression gate.

The replay simulator is the unit of cost for everything this repository
does — every sweep, study and design-space exploration bottoms out in
single-replay throughput.  This package makes that throughput a
first-class, defended quantity:

* :mod:`repro.perf.workloads` — deterministic micro (engine/kernel-only)
  and macro (full study-cell replay) benchmark workloads;
* :mod:`repro.perf.harness` — the runner: best-of-N timing, optional
  cProfile capture, machine-readable results;
* :mod:`repro.perf.trajectory` — the ``BENCH_replay.json`` perf
  trajectory: one appended entry per recorded run;
* :mod:`repro.perf.gate` — the CI regression gate comparing measured
  throughput against a committed baseline with a tolerance band.

Run via the CLI: ``repro-qoe perf`` (see ``repro-qoe perf --help``).
"""

from repro.perf.gate import (
    check_regression,
    load_baseline,
    write_baseline,
)
from repro.perf.harness import BenchResult, run_suite, suite_names
from repro.perf.trajectory import append_entry, load_trajectory

__all__ = [
    "BenchResult",
    "append_entry",
    "check_regression",
    "load_baseline",
    "load_trajectory",
    "run_suite",
    "suite_names",
    "write_baseline",
]

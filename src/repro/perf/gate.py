"""The perf regression gate.

Compares measured benchmark throughput against a committed baseline
(``benchmarks/perf_baseline.json``) with a tolerance band.  The band is
deliberately wide by default: CI runners differ wildly in absolute speed,
and the gate's job is to catch *algorithmic* regressions (an accidental
linear scan, a heap that stops compacting) — those show up as integer
factors, not percentages.

Updating the baseline is an explicit act (``repro-qoe perf
--update-baseline``) so a slow creep needs a reviewed diff to land.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import ReproError
from repro.perf.harness import BenchResult

# Fail only when measured throughput drops below tolerance * baseline.
# 0.35 tolerates a ~3x slower CI runner while still catching the order-of-
# magnitude collapses a complexity regression causes on micro benches.
DEFAULT_TOLERANCE = 0.35


def load_baseline(path) -> dict[str, float]:
    """Load the committed baseline: benchmark name -> throughput."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"unreadable perf baseline {path}: {exc}") from exc
    recorded = document.get("throughput")
    if not isinstance(recorded, dict) or not recorded:
        raise ReproError(f"perf baseline {path} records no throughput")
    return {name: float(value) for name, value in recorded.items()}


def write_baseline(path, results: list[BenchResult], note: str = "") -> None:
    """Write ``results`` into the committed baseline.

    Merges over any existing baseline: updating from a partial suite
    (the default ``perf`` invocation runs micro only) refreshes the
    benchmarks that ran and keeps the other floors, so a micro-only
    update cannot silently delete the macro gate.
    """
    path = Path(path)
    throughput: dict[str, float] = {}
    if path.exists():
        try:
            throughput.update(load_baseline(path))
        except ReproError:
            pass  # rewriting a corrupt baseline is the recovery path
    throughput.update(
        {result.name: round(result.throughput(), 1) for result in results}
    )
    document = {
        "schema": 1,
        "note": note
        or "Throughput floors for the perf regression gate; update via "
        "`repro-qoe perf --update-baseline`.",
        "throughput": {name: throughput[name] for name in sorted(throughput)},
    }
    path.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def check_regression(
    results: list[BenchResult],
    baseline: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    known_benchmarks: set[str] | None = None,
) -> list[str]:
    """Return one failure message per benchmark below its floor.

    Benchmarks without a baseline entry are skipped (a new benchmark
    lands first, its baseline follows).  Baseline entries without a
    measured result fail — unless ``known_benchmarks`` names them as real
    benchmarks that simply were not part of the suite that ran (CI gates
    the micro suite while the baseline also records macro numbers); a
    baseline name unknown to the harness always fails, so a renamed
    benchmark cannot silently hollow the gate out.
    """
    if not 0 < tolerance <= 1:
        raise ReproError(f"gate tolerance must be in (0, 1], got {tolerance}")
    failures = []
    measured = {result.name: result for result in results}
    for name, floor in sorted(baseline.items()):
        result = measured.get(name)
        if result is None:
            if known_benchmarks is not None and name in known_benchmarks:
                continue
            failures.append(
                f"{name}: baseline present but benchmark did not run"
            )
            continue
        throughput = result.throughput()
        if throughput < tolerance * floor:
            failures.append(
                f"{name}: throughput {throughput:,.0f} below gate "
                f"{tolerance:.2f} x baseline {floor:,.0f} "
                f"(= {tolerance * floor:,.0f})"
            )
    return failures

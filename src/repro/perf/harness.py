"""The benchmark runner.

Times each named benchmark best-of-``repeats`` (minimum wall time — the
least-noise estimator for a deterministic workload), reports throughput as
simulated microseconds per wall second where the workload has a simulated
duration, and events (or operations) per second everywhere.  ``--profile``
wraps one run of the selected suite in cProfile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.perf import workloads

MICRO_BENCHES = (
    "engine_events",
    "engine_periodic",
    "engine_churn",
    "scheduler_chunks",
    "policy_queries",
    "governor_sim",
    "demand_kernel",
)
MACRO_BENCHES = (
    "macro_study",
    "macro_daylong",
    "demand_trace",
)

SUITES: dict[str, tuple[str, ...]] = {
    "micro": MICRO_BENCHES,
    "macro": MACRO_BENCHES,
    "study": ("macro_study",),
    "demand": ("demand_trace",),
    "all": MICRO_BENCHES + MACRO_BENCHES,
}


def suite_names() -> list[str]:
    return sorted(SUITES)


@dataclass(slots=True)
class BenchResult:
    """One benchmark's best-of-N measurement."""

    name: str
    wall_s: float
    sim_us: int
    events: int
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def sim_us_per_wall_s(self) -> float:
        """Simulated microseconds retired per wall-clock second."""
        if not self.sim_us:
            return 0.0
        return self.sim_us / self.wall_s

    @property
    def events_per_s(self) -> float:
        if not self.events:
            return 0.0
        return self.events / self.wall_s

    def throughput(self) -> float:
        """The gated quantity: sim-µs/wall-s, else events/s."""
        return self.sim_us_per_wall_s or self.events_per_s

    def as_dict(self) -> dict:
        return {
            "wall_s": round(self.wall_s, 6),
            "sim_us": self.sim_us,
            "events": self.events,
            "sim_us_per_wall_s": round(self.sim_us_per_wall_s, 1),
            "events_per_s": round(self.events_per_s, 1),
            "metrics": {k: round(v, 6) for k, v in self.metrics.items()},
        }


def _best_of(repeats: int, runner) -> BenchResult:
    best: BenchResult | None = None
    for _rep in range(max(1, repeats)):
        result = runner()
        if best is None or result.wall_s < best.wall_s:
            best = result
    return best


def _run_engine_bench(name: str, fn) -> BenchResult:
    start = time.perf_counter()
    engine = fn()
    wall = time.perf_counter() - start
    return BenchResult(
        name=name,
        wall_s=wall,
        sim_us=engine.now,
        events=engine.events_fired,
    )


def _run_policy_queries() -> BenchResult:
    start = time.perf_counter()
    checksum = workloads.run_policy_queries()
    wall = time.perf_counter() - start
    return BenchResult(
        name="policy_queries",
        wall_s=wall,
        sim_us=0,
        events=20_000,  # transitions + queries
        metrics={"checksum": float(checksum % 1_000_000)},
    )


def _replay_cells(name: str, dataset_name: str, configs) -> BenchResult:
    import tracemalloc

    from repro.harness.experiment import record_workload, replay_run
    from repro.workloads.datasets import dataset

    artifacts = record_workload(dataset(dataset_name))
    sim_us = 0
    wall = 0.0
    per_config: dict[str, float] = {}
    peak_kb_max = 0.0
    for config in configs:
        start = time.perf_counter()
        result = replay_run(artifacts, config)
        elapsed = time.perf_counter() - start
        wall += elapsed
        sim_us += result.duration_us
        per_config[config] = result.duration_us / elapsed
        # Peak replay memory, on a separate deterministic pass so
        # tracemalloc's allocation bookkeeping (~2x slowdown) cannot
        # taint the timed run the throughput gate compares.  Only
        # replay-time allocations count: the recorded artifacts predate
        # the trace, so this is the O(session)-vs-O(window) quantity the
        # streaming pipeline is measured by.
        tracemalloc.start()
        try:
            replay_run(artifacts, config)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        peak_kb = peak / 1024.0
        per_config[f"mem_peak_kb:{config}"] = peak_kb
        peak_kb_max = max(peak_kb_max, peak_kb)
    per_config["mem_peak_kb"] = peak_kb_max
    return BenchResult(
        name=name,
        wall_s=wall,
        sim_us=sim_us,
        events=0,
        metrics=per_config,
    )


def _run_demand_trace(name: str, dataset_name: str, configs) -> BenchResult:
    """The trace-once/replay-many sweep: capture cost, warm and cold rates.

    Times one demand capture, then the full config grid through the
    kernel-only pass (warm: the trace and its preprocessed program are in
    hand, as on every fleet run after the first), through the
    node-object interpreter (the ``REPRO_DEMAND_COMPILE=0`` reference for
    the compiled flat-array walk) and through full replays (the
    ``REPRO_DEMAND=0`` reference).  ``wall_s`` is the warm demand sweep;
    the cold rate amortises the capture over this one grid, which is the
    worst case — the fleet store reuses the trace across reruns.
    """
    import os

    from repro.demand import DemandProgram, capture_demand, demand_replay_run
    from repro.harness.experiment import record_workload, replay_run
    from repro.workloads.datasets import dataset

    artifacts = record_workload(dataset(dataset_name))
    start = time.perf_counter()
    program = DemandProgram(capture_demand(artifacts))
    capture_s = time.perf_counter() - start
    sim_us = 0
    start = time.perf_counter()
    for config in configs:
        sim_us += demand_replay_run(artifacts, program, config).duration_us
    warm_s = time.perf_counter() - start
    saved = os.environ.get("REPRO_DEMAND_COMPILE")
    os.environ["REPRO_DEMAND_COMPILE"] = "0"
    try:
        start = time.perf_counter()
        for config in configs:
            demand_replay_run(artifacts, program, config)
        interp_s = time.perf_counter() - start
    finally:
        if saved is None:
            del os.environ["REPRO_DEMAND_COMPILE"]
        else:
            os.environ["REPRO_DEMAND_COMPILE"] = saved
    start = time.perf_counter()
    for config in configs:
        replay_run(artifacts, config)
    full_s = time.perf_counter() - start
    count = len(configs)
    return BenchResult(
        name=name,
        wall_s=warm_s,
        sim_us=sim_us,
        events=count,
        metrics={
            "configs": float(count),
            "capture_s": capture_s,
            "warm_wall_s": warm_s,
            "interp_wall_s": interp_s,
            "full_wall_s": full_s,
            "warm_configs_per_s": count / warm_s,
            "cold_configs_per_s": count / (capture_s + warm_s),
            "full_configs_per_s": count / full_s,
            "speedup_warm": full_s / warm_s,
            "speedup_cold": full_s / (capture_s + warm_s),
            "speedup_compiled": interp_s / warm_s,
        },
    )


def _runner_for(name: str, scenario: str | None = None):
    if name == "engine_events":
        return lambda: _run_engine_bench(name, workloads.run_engine_events)
    if name == "engine_periodic":
        return lambda: _run_engine_bench(name, workloads.run_engine_periodic)
    if name == "engine_churn":
        return lambda: _run_engine_bench(name, workloads.run_engine_churn)
    if name == "scheduler_chunks":
        return lambda: _run_engine_bench(name, workloads.run_scheduler_chunks)
    if name == "policy_queries":
        return _run_policy_queries
    if name == "governor_sim":
        return lambda: _run_engine_bench(name, workloads.run_governor_sim)
    if name == "demand_kernel":
        return lambda: _run_engine_bench(name, workloads.run_demand_kernel)
    if name == "macro_study":
        return lambda: _replay_cells(
            name,
            scenario or workloads.MACRO_STUDY_DATASET,
            workloads.MACRO_STUDY_CONFIGS,
        )
    if name == "macro_daylong":
        return lambda: _replay_cells(
            name,
            workloads.MACRO_DAYLONG_DATASET,
            workloads.MACRO_DAYLONG_CONFIGS,
        )
    if name == "demand_trace":
        from repro.harness.sweep import sweep_configs

        return lambda: _run_demand_trace(
            name,
            scenario or workloads.MACRO_STUDY_DATASET,
            tuple(sweep_configs()),
        )
    raise ReproError(f"unknown benchmark {name!r}")


def run_suite(
    suite: str = "micro",
    repeats: int = 3,
    profile_path: str | None = None,
    scenario: str | None = None,
) -> list[BenchResult]:
    """Run a benchmark suite, best-of-``repeats`` per benchmark.

    With ``profile_path``, one extra pass over the whole suite runs under
    cProfile and the stats are dumped there (inspect with ``python -m
    pstats`` or snakeviz).  ``scenario`` (a canonical scenario string)
    replaces the stock dataset of the study-cell macro benchmark.
    """
    try:
        names = SUITES[suite]
    except KeyError:
        raise ReproError(
            f"unknown perf suite {suite!r} (known: {', '.join(suite_names())})"
        ) from None
    # Macro benches re-record their workload per call; one repeat of the
    # day-long bench is already minutes of simulation, so macro runs are
    # timed once per invocation.
    results = []
    for name in names:
        reps = 1 if name in MACRO_BENCHES else repeats
        results.append(_best_of(reps, _runner_for(name, scenario)))
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        for name in names:
            _runner_for(name, scenario)()
        profiler.disable()
        profiler.dump_stats(profile_path)
    return results


def render_results(results: list[BenchResult]) -> str:
    """A fixed-width report table (deterministic layout, stable columns)."""
    lines = [
        f"{'benchmark':<18} {'wall s':>9} {'events/s':>12} "
        f"{'sim-s/wall-s':>13}",
    ]
    for result in results:
        sim_rate = result.sim_us_per_wall_s / 1e6
        lines.append(
            f"{result.name:<18} {result.wall_s:>9.3f} "
            f"{result.events_per_s:>12.0f} "
            f"{sim_rate:>13.1f}"
        )
        if result.name == "demand_trace":
            for key in sorted(result.metrics):
                lines.append(f"  {key:<20} {result.metrics[key]:>10.2f}")
        elif result.name.startswith("macro"):
            for key in sorted(result.metrics):
                value = result.metrics[key]
                if key.startswith("mem_peak_kb"):
                    config = key[len("mem_peak_kb:"):] or "(max)"
                    lines.append(
                        f"  {config:<20} {value / 1024:>10.1f} MB peak"
                    )
                else:
                    lines.append(
                        f"  {key:<20} {value / 1e6:>10.1f} sim-s/wall-s"
                    )
    return "\n".join(lines)

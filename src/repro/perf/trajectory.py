"""The ``BENCH_replay.json`` performance trajectory.

One JSON document holding an append-only list of entries, one per
recorded benchmark run.  The trajectory is the repository's perf memory:
every optimisation PR appends its before/after numbers so a regression
has a recorded history to be measured against.

Schema (version 1)::

    {
      "schema": 1,
      "benchmark": "replay-throughput",
      "entries": [
        {
          "recorded_at": "2026-07-26T12:00:00Z",
          "label": "PR 3 fast path",
          "python": "3.12.3",
          "platform": "Linux-...",
          "results": {"engine_events": {...}, "macro_study": {...}}
        },
        ...
      ]
    }
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.core.errors import ReproError
from repro.perf.harness import BenchResult

SCHEMA_VERSION = 1


def _empty_document() -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": "replay-throughput",
        "entries": [],
    }


def load_trajectory(path) -> dict:
    """Load (or initialise) the trajectory document at ``path``."""
    path = Path(path)
    if not path.exists():
        return _empty_document()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"unreadable trajectory {path}: {exc}") from exc
    if not isinstance(document, dict) or "entries" not in document:
        raise ReproError(f"trajectory {path} has no entries list")
    return document


def append_entry(
    path,
    results: list[BenchResult],
    label: str | None = None,
) -> dict:
    """Append one entry for ``results`` to the trajectory at ``path``.

    Returns the appended entry.  The file is written atomically enough
    for a single-writer workflow (write-then-rename is overkill here; the
    trajectory is a committed artifact, not shared mutable state).
    """
    path = Path(path)
    document = load_trajectory(path)
    entry = {
        "recorded_at": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "label": label or "",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": {result.name: result.as_dict() for result in results},
    }
    document["entries"].append(entry)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return entry

"""Deterministic benchmark workloads.

Micro workloads exercise one kernel subsystem in isolation (event heap,
periodic timers, cancellation churn, the scheduler's task path, the
cpufreq trace queries) so a regression pinpoints its layer.  Macro
workloads replay full study cells through :func:`repro.harness.experiment.
replay_run` — the quantity every sweep and exploration ultimately pays.

Every workload is seeded and deterministic: two runs execute the same
event sequence, so wall-clock differences measure the implementation, not
the workload.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import PRIORITY_TIMER, Engine
from repro.core.simtime import seconds
from repro.device.cpu import CpuCore
from repro.device.cpufreq import CpuFreqPolicy
from repro.device.frequencies import snapdragon_8074_table
from repro.kernel.scheduler import Scheduler
from repro.kernel.timers import PeriodicTimer
from repro.kernel.workchains import submit_chunked

# Study cells replayed by the macro benchmarks: the paper's three stock
# governors, the proposed QoE-aware governor, and one fixed OPP as the
# userspace-path representative (the remaining 13 fixed cells behave
# identically perf-wise).
MACRO_STUDY_CONFIGS: tuple[str, ...] = (
    "interactive",
    "ondemand",
    "conservative",
    "qoe_aware",
    "fixed:960000",
)
MACRO_STUDY_DATASET = "02"

# The day-long mixed-use workload (long idle periods, the paper's ambient
# scenario): where governor-tick cost dominates a replay.
MACRO_DAYLONG_CONFIGS: tuple[str, ...] = ("interactive", "ondemand")
MACRO_DAYLONG_DATASET = "24hour"


def run_engine_events(n_events: int = 200_000, chains: int = 64) -> Engine:
    """One-shot event storm: ``chains`` self-rescheduling cascades.

    Measures raw schedule/dispatch cost of the heap with a live queue of
    ``chains`` entries — no cancellations, no periodic re-arms.
    """
    engine = Engine()
    remaining = [n_events]

    def make_chain(index: int) -> Callable[[], None]:
        delay = 1 + (index * 7 + 3) % 97

        def fire() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule_after(delay, fire)

        return fire

    for index in range(min(chains, n_events)):
        engine.schedule_after(1 + index, make_chain(index))
    engine.run_until_idle()
    return engine


def run_engine_periodic(
    timers: int = 16, sim_us: int = 200_000
) -> Engine:
    """Periodic timers with co-prime-ish periods re-armed in place."""
    engine = Engine()
    ticks = [0]

    def tick() -> None:
        ticks[0] += 1

    for index in range(timers):
        PeriodicTimer(engine, 53 + 13 * index, tick).start()
    engine.run_until(sim_us)
    return engine


def run_engine_churn(rounds: int = 400, batch: int = 512) -> Engine:
    """Schedule-then-cancel churn: tombstone compaction under pressure.

    Every round schedules ``batch`` far-future events and cancels 90% of
    them; a heap without compaction grows linearly with rounds and turns
    every push into log(total-ever-scheduled) work.
    """
    engine = Engine()
    for _round in range(rounds):
        base = engine.now + 1_000
        events = [
            engine.schedule_at(base + index, _noop) for index in range(batch)
        ]
        for event in events[: batch - batch // 10]:
            event.cancel()
        engine.run_until(base + batch)
    return engine


def _noop() -> None:
    return None


def run_scheduler_chunks(chains: int = 64, chain_cycles: float = 600e6) -> Engine:
    """Background chunk chains through the scheduler at a fixed frequency.

    Exercises the task dispatch/completion path, busy accounting and the
    energy meter — the per-chunk machinery every replay pays thousands of
    times.
    """
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    scheduler = Scheduler(engine, core)
    for index in range(chains):
        engine.schedule_at(
            1 + index * 97,
            lambda i=index: submit_chunked(
                engine, scheduler, f"bench:{i}", chain_cycles
            ),
        )
    engine.run_until_idle()
    return engine


def run_policy_queries(
    transitions: int = 10_000, queries: int = 10_000
) -> int:
    """A transition-heavy frequency trace plus many point queries.

    Guards the bisect fast path in :meth:`CpuFreqPolicy.frequency_at`: a
    linear scan would make this quadratic in ``transitions``.
    Returns a checksum of the queried frequencies.
    """
    engine = Engine()
    table = snapdragon_8074_table()
    core = CpuCore(engine.clock, table)
    policy = CpuFreqPolicy(engine.clock, core)
    freqs = table.frequencies_khz
    step_us = 100
    for index in range(transitions):
        engine.clock.advance_to((index + 1) * step_us)
        policy.set_target(freqs[index % len(freqs)])
    span = transitions * step_us
    checksum = 0
    for index in range(queries):
        timestamp = (index * 7919) % span
        checksum = (checksum + policy.frequency_at(timestamp)) % (1 << 61)
    return checksum


def _demand_kernel_trace(windows: int, states: int = 4):
    """A synthetic demand trace exercising every compiled node kind.

    Per input window: a foreground tap task fans out into a staged timer
    chain, two invalidates and a background IO task with a childless
    timer — the shape a real capture produces, sized so foreground work
    always quiesces before the next window's guard check.  One periodic
    chain runs throughout.  Guards are empty (quiescence), states are
    tiny placeholder framebuffers (the kernel-only walk never
    decompresses them).
    """
    import zlib

    from repro.demand.trace import (
        KIND_CHAIN_START,
        KIND_INVALIDATE,
        KIND_TASK,
        KIND_TIMER,
        DemandNode,
        DemandTrace,
    )

    nodes: list[DemandNode] = []

    def add(kind: str, **payload) -> int:
        node = DemandNode(node_id=len(nodes), kind=kind, **payload)
        nodes.append(node)
        return node.node_id

    add(
        KIND_CHAIN_START,
        chain_key=0,
        name="bench:chain",
        period_us=33_000,
        cycles=2.0e6,
        priority=1,
    )
    setup = add(KIND_TASK, name="bench:setup", cycles=1.0e6, priority=1)
    add(KIND_INVALIDATE, parent=setup, state_id=0)
    for window in range(windows):
        tap = add(
            KIND_TASK,
            input_ordinal=window,
            name="bench:tap",
            cycles=3.0e6,
            priority=0,
        )
        add(KIND_INVALIDATE, parent=tap, state_id=(window + 1) % states)
        stage = add(KIND_TIMER, parent=tap, delay_us=2_000)
        render = add(
            KIND_TASK,
            parent=stage,
            name="bench:render",
            cycles=2.0e6,
            priority=0,
        )
        add(KIND_INVALIDATE, parent=render, state_id=window % states)
        io = add(
            KIND_TASK, parent=tap, name="bench:io", cycles=1.5e6, priority=1
        )
        add(KIND_TIMER, parent=io, delay_us=500)
    return DemandTrace(
        workload="perf:demand_kernel",
        capture_config="fixed:300000",
        duration_us=windows * 20_000 + 20_000,
        width=8,
        height=8,
        input_events=windows,
        nodes=nodes,
        states=[zlib.compress(bytes(64))] * states,
    )


_DEMAND_KERNEL_PROGRAM = None
_DEMAND_KERNEL_WINDOWS = 3_000


def _demand_kernel_program(windows: int):
    """The bench's preprocessed program, built once per process.

    Mirrors a fleet worker: one :class:`DemandProgram` (and one compiled
    lowering, memoized inside it) shared by every evaluation, so the
    timed region is the walk — not trace construction or lowering.
    """
    global _DEMAND_KERNEL_PROGRAM
    if (
        _DEMAND_KERNEL_PROGRAM is None
        or _DEMAND_KERNEL_PROGRAM.trace.input_events != windows
    ):
        from repro.demand.replayer import DemandProgram

        _DEMAND_KERNEL_PROGRAM = DemandProgram(_demand_kernel_trace(windows))
    return _DEMAND_KERNEL_PROGRAM


def run_demand_kernel(windows: int = _DEMAND_KERNEL_WINDOWS) -> Engine:
    """The demand executor's walk over a live kernel at one fixed OPP.

    Isolates what the compiled flat-array walk optimises: node dispatch,
    task submission, timer re-arm and child fan-out — with the governor
    pinned (``fixed:960000``) so sampling cost does not drown the walk.
    The executor is chosen exactly as a sweep cell would choose it
    (``REPRO_DEMAND_COMPILE``), so the same bench A/Bs the interpreter.
    """
    from repro.demand.replayer import make_executor
    from repro.device.device import Device

    program = _demand_kernel_program(windows)
    device = Device()
    executor = make_executor(device, program, pixels=False)
    executor.run_setup()
    device.set_governor("fixed:960000")
    spacing = 20_000
    for window in range(windows):
        device.engine.schedule_at(
            5_000 + window * spacing,
            lambda: executor.on_input(None),
        )
    device.run_for(windows * spacing + 20_000)
    return device.engine


def run_governor_sim(
    governor: str = "interactive", sim_s: int = 120
) -> Engine:
    """A governor sampling over synthetic bursty load, device-level only.

    Uses the scheduler and background chunks but no UI stack, apps or
    capture — the cheapest workload that exercises the governor fast path
    (tick elision) end to end.
    """
    from repro.device.device import Device

    device = Device()
    device.set_governor(governor)
    for index in range(sim_s):
        device.engine.schedule_at(
            seconds(index) + 1 + (index * 131) % 997,
            lambda i=index: submit_chunked(
                device.engine,
                device.scheduler,
                f"burst:{i}",
                80e6 + (i % 7) * 40e6,
            ),
        )
    device.run_for(seconds(sim_s))
    return device.engine

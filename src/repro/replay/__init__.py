"""Record and replay of interactive workloads (paper §II-B)."""

from repro.replay.getevent import format_event, format_trace, parse_line, parse_trace
from repro.replay.recorder import GeteventRecorder
from repro.replay.replayer import ReplayAgent
from repro.replay.trace import EventTrace

__all__ = [
    "format_event",
    "format_trace",
    "parse_line",
    "parse_trace",
    "GeteventRecorder",
    "ReplayAgent",
    "EventTrace",
]

"""The getevent trace format.

ANDROID's ``getevent`` prints one line per kernel input event; with ``-t``
it prefixes the timestamp.  The paper's Fig. 5 shows the untimed triple
form::

    /dev/input/event1: 0003 0039 00000003

We read and write the timed form (as the paper's recorder needs exact
timings), and also accept the untimed form when parsing::

    [   12.345678] /dev/input/event1: 0003 0039 00000003
"""

from __future__ import annotations

import re

from repro.core.errors import ReplayError
from repro.core.events import InputEvent
from repro.core.simtime import MICROS_PER_SECOND

_LINE_RE = re.compile(
    r"^(?:\[\s*(?P<sec>\d+)\.(?P<usec>\d{6})\]\s+)?"
    r"(?P<device>/dev/input/event\d+):\s+"
    r"(?P<type>[0-9a-fA-F]{4})\s+"
    r"(?P<code>[0-9a-fA-F]{4})\s+"
    r"(?P<value>[0-9a-fA-F]{8})\s*$"
)


def format_event(event: InputEvent, with_timestamp: bool = True) -> str:
    """Render one event as a getevent line."""
    triple = (
        f"{event.device}: {event.type:04x} {event.code:04x} "
        f"{event.value & 0xFFFFFFFF:08x}"
    )
    if not with_timestamp:
        return triple
    sec, usec = divmod(event.timestamp, MICROS_PER_SECOND)
    return f"[{sec:8d}.{usec:06d}] {triple}"


def parse_line(line: str) -> InputEvent:
    """Parse one getevent line (timed or untimed; untimed gets t=0)."""
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise ReplayError(f"unparseable getevent line: {line!r}")
    if match.group("sec") is not None:
        timestamp = (
            int(match.group("sec")) * MICROS_PER_SECOND + int(match.group("usec"))
        )
    else:
        timestamp = 0
    return InputEvent(
        timestamp=timestamp,
        device=match.group("device"),
        type=int(match.group("type"), 16),
        code=int(match.group("code"), 16),
        value=int(match.group("value"), 16),
    )


def format_trace(events: list[InputEvent]) -> str:
    """Render a whole trace, one line per event."""
    return "\n".join(format_event(e) for e in events) + ("\n" if events else "")


def parse_trace(text: str) -> list[InputEvent]:
    """Parse a getevent dump; blank lines and ``#`` comments are skipped."""
    events = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        events.append(parse_line(stripped))
    return events

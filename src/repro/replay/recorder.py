"""Recording: capture kernel input events with exact timestamps.

The functional equivalent of running ``getevent -t`` on the device while
the user goes about their business (paper §II-B1): the recorder attaches
to input device nodes and logs every event it sees.
"""

from __future__ import annotations

from repro.core.events import InputEvent
from repro.device.input_device import InputDeviceNode, InputSubsystem
from repro.replay.trace import EventTrace


class GeteventRecorder:
    """Records all events flowing through the input subsystem."""

    def __init__(self, subsystem: InputSubsystem) -> None:
        self._subsystem = subsystem
        self._recording = False
        self._trace = EventTrace()
        self._attached: list[InputDeviceNode] = []

    @property
    def recording(self) -> bool:
        return self._recording

    def start(self) -> None:
        """Begin recording on every registered input node."""
        if self._recording:
            return
        self._recording = True
        self._trace = EventTrace()
        for node in self._subsystem.nodes():
            node.add_observer(self._on_event)
            self._attached.append(node)

    def stop(self) -> EventTrace:
        """Stop recording and return the captured trace."""
        if self._recording:
            for node in self._attached:
                node.remove_observer(self._on_event)
            self._attached.clear()
            self._recording = False
        return self._trace

    def _on_event(self, event: InputEvent) -> None:
        self._trace.append(event)

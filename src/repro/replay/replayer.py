"""The replay agent.

ANDROID's ``sendevent`` is "very basic and does not provide enough
functionality and performance to replay our recorded event trace
accurately" (paper §II-B2), so the authors wrote their own agent; this is
that agent for the simulated device: it knows the recorded trace and
injects every event into the input subsystem at its exact timestamp.
"""

from __future__ import annotations

from repro.core.engine import PRIORITY_INPUT, Engine
from repro.core.errors import ReplayError
from repro.device.input_device import InputSubsystem
from repro.replay.trace import EventTrace


class ReplayAgent:
    """Replays an event trace with accurate timings."""

    def __init__(self, engine: Engine, subsystem: InputSubsystem) -> None:
        self._engine = engine
        self._subsystem = subsystem
        self.events_injected = 0

    def schedule(self, trace: EventTrace, start_offset_us: int = 0) -> int:
        """Arm injection of every event; returns the last event's time.

        ``start_offset_us`` shifts the whole trace, e.g. to leave the
        device a settling period after boot, matching the paper's "initial
        system state of the device is always the same" requirement.
        """
        if start_offset_us < 0:
            raise ReplayError("start offset must be >= 0")
        last = self._engine.now
        for event in trace:
            when = event.timestamp + start_offset_us
            if when < self._engine.now:
                raise ReplayError(
                    f"event at {event.timestamp} would fire in the past"
                )
            shifted = event if start_offset_us == 0 else type(event)(
                when, event.device, event.type, event.code, event.value
            )
            self._engine.schedule_at(
                when, lambda e=shifted: self._inject(e), priority=PRIORITY_INPUT
            )
            last = max(last, when)
        return last

    def _inject(self, event) -> None:
        self.events_injected += 1
        self._subsystem.emit(event)

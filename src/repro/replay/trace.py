"""Event traces: the recorded artefact a workload replays from."""

from __future__ import annotations

from pathlib import Path

from repro.core import events as ev
from repro.core.errors import ReplayError
from repro.core.events import InputEvent
from repro.replay.getevent import format_trace, parse_trace


class EventTrace:
    """An ordered sequence of recorded kernel input events."""

    def __init__(self, events: list[InputEvent] | None = None) -> None:
        self.events: list[InputEvent] = list(events or [])
        self._check_ordering()

    def _check_ordering(self) -> None:
        for prev, cur in zip(self.events, self.events[1:]):
            if cur.timestamp < prev.timestamp:
                raise ReplayError(
                    "trace events out of order at "
                    f"{prev.timestamp} -> {cur.timestamp}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration_us(self) -> int:
        if not self.events:
            return 0
        return self.events[-1].timestamp - self.events[0].timestamp

    def append(self, event: InputEvent) -> None:
        if self.events and event.timestamp < self.events[-1].timestamp:
            raise ReplayError("cannot append event earlier than trace end")
        self.events.append(event)

    def shifted(self, offset_us: int) -> "EventTrace":
        """A copy with every timestamp moved by ``offset_us``."""
        return EventTrace(
            [
                InputEvent(
                    e.timestamp + offset_us, e.device, e.type, e.code, e.value
                )
                for e in self.events
            ]
        )

    def touch_down_times(self) -> list[int]:
        """Timestamps of finger-down events (new tracking ids)."""
        return [
            e.timestamp
            for e in self.events
            if e.type == ev.EV_ABS
            and e.code == ev.ABS_MT_TRACKING_ID
            and e.value != ev.TRACKING_ID_NONE
        ]

    def counts_by_type(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts

    # --- persistence -----------------------------------------------------------------

    def dumps(self) -> str:
        return format_trace(self.events)

    @classmethod
    def loads(cls, text: str) -> "EventTrace":
        return cls(parse_trace(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "EventTrace":
        return cls.loads(Path(path).read_text(encoding="utf-8"))

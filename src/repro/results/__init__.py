"""Typed run artifacts: the one result shape that crosses boundaries.

Every replay produces a :class:`RunRecord`; every consumer — the sweep,
the oracle composer, the figures, the design-space evaluator, the perf
macro benchmarks, fleet IPC and the result cache — reads that record.
See :mod:`repro.results.record` for the schema and versioning rules.
"""

from repro.results.pairs import IntPairs
from repro.results.record import (
    RUN_RECORD_SCHEMA_VERSION,
    RunRecord,
    RunRecordSchemaError,
)

__all__ = [
    "IntPairs",
    "RUN_RECORD_SCHEMA_VERSION",
    "RunRecord",
    "RunRecordSchemaError",
]

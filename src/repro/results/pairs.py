"""A compact, typed sequence of ``(int, int)`` pairs.

Day-long replays accumulate hundreds of thousands of frequency
transitions and busy intervals; as Python lists of tuples of boxed ints
those traces cost ~130 bytes per pair and dominate a run's resident
memory.  :class:`IntPairs` stores the same data as two parallel
``array('q')`` buffers — 16 bytes per pair — while still *reading* like a
list of tuples: iteration yields ``(a, b)`` tuples, indexing and slicing
work, equality is element-wise.

The device-side accumulators (``CpuCore`` busy trace, ``CpuFreqPolicy``
transition trace) append into raw arrays during the run and hand the
result over as ``IntPairs`` without ever boxing a pair; the
:class:`~repro.results.RunRecord` holds them in this form for its whole
lifetime.

Wire rows decode lazily: :meth:`IntPairs.from_lists` adopts the
``[[a, b], ...]`` lists straight out of ``json.loads`` and defers the
element-wise conversion until a consumer actually reads the pairs.
Profiling the warm-cache scan showed that conversion dominating a fully
cached sweep — and most cached records' traces are never read at all
(sweep aggregation touches energy scalars and lag profiles; only the
oracle's reference rows walk their busy intervals).  A record that *is*
read converts once and frees the raw rows; one that is not never pays.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

_TYPECODE = "q"  # signed 64-bit: microsecond timestamps and kHz both fit


class IntPairs:
    """An immutable-by-convention sequence of integer pairs."""

    __slots__ = ("_a", "_b", "_rows")

    def __init__(self, pairs: "Iterable[tuple[int, int]] | IntPairs" = ()) -> None:
        self._rows = None
        if isinstance(pairs, IntPairs):
            pairs._materialise()
            self._a = array(_TYPECODE, pairs._a)
            self._b = array(_TYPECODE, pairs._b)
            return
        a = array(_TYPECODE)
        b = array(_TYPECODE)
        for first, second in pairs:
            a.append(first)
            b.append(second)
        self._a = a
        self._b = b

    @classmethod
    def from_lists(cls, rows: list) -> "IntPairs":
        """Adopt the JSON wire form ``[[a, b], ...]`` without decoding it.

        The rows are kept as-is and converted to the packed arrays on
        first read access (then freed); :meth:`to_lists` round-trips
        straight from the adopted rows.  Malformed rows therefore raise
        at first access rather than here — callers that need eager
        validation (there are none on the wire path: the rows come from
        this class's own canonical serialization) should use the strict
        constructor.  Anything that is not a list falls back to the
        strict constructor immediately.
        """
        if type(rows) is not list:
            return cls(rows)
        pairs = cls.__new__(cls)
        pairs._a = None
        pairs._b = None
        pairs._rows = rows
        return pairs

    @classmethod
    def from_arrays(cls, a: array, b: array) -> "IntPairs":
        """Adopt two parallel ``array('q')`` buffers (no copy)."""
        if len(a) != len(b):
            raise ValueError(
                f"parallel arrays disagree in length: {len(a)} != {len(b)}"
            )
        pairs = cls.__new__(cls)
        pairs._a = a
        pairs._b = b
        pairs._rows = None
        return pairs

    def _materialise(self) -> None:
        """Convert adopted wire rows into the packed arrays (idempotent)."""
        rows = self._rows
        if rows is None:
            return
        a = array(_TYPECODE)
        b = array(_TYPECODE)
        for first, second in rows:
            a.append(first)
            b.append(second)
        self._a = a
        self._b = b
        self._rows = None

    # --- sequence protocol ------------------------------------------------------

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._a)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        self._materialise()
        return zip(self._a, self._b)

    def __getitem__(self, index):
        self._materialise()
        if isinstance(index, slice):
            return list(zip(self._a[index], self._b[index]))
        return (self._a[index], self._b[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntPairs):
            self._materialise()
            other._materialise()
            return self._a == other._a and self._b == other._b
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                pair == mine for pair, mine in zip(other, self)
            )
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(repr(pair) for pair in self[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"IntPairs([{preview}{suffix}], len={len(self)})"

    # --- views ------------------------------------------------------------------

    def firsts(self) -> array:
        """The first elements as a live ``array('q')`` (do not mutate)."""
        self._materialise()
        return self._a

    def seconds(self) -> array:
        self._materialise()
        return self._b

    def to_lists(self) -> list[list[int]]:
        """JSON form: ``[[a, b], ...]``."""
        if self._rows is not None:
            # Adopted wire rows round-trip without converting; fresh
            # outer/inner lists so a caller cannot alias our state.
            return [list(row) for row in self._rows]
        return [[first, second] for first, second in self]

    def tolist(self) -> list[tuple[int, int]]:
        return list(self)

"""A compact, typed sequence of ``(int, int)`` pairs.

Day-long replays accumulate hundreds of thousands of frequency
transitions and busy intervals; as Python lists of tuples of boxed ints
those traces cost ~130 bytes per pair and dominate a run's resident
memory.  :class:`IntPairs` stores the same data as two parallel
``array('q')`` buffers — 16 bytes per pair — while still *reading* like a
list of tuples: iteration yields ``(a, b)`` tuples, indexing and slicing
work, equality is element-wise.

The device-side accumulators (``CpuCore`` busy trace, ``CpuFreqPolicy``
transition trace) append into raw arrays during the run and hand the
result over as ``IntPairs`` without ever boxing a pair; the
:class:`~repro.results.RunRecord` holds them in this form for its whole
lifetime.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

_TYPECODE = "q"  # signed 64-bit: microsecond timestamps and kHz both fit


class IntPairs:
    """An immutable-by-convention sequence of integer pairs."""

    __slots__ = ("_a", "_b")

    def __init__(self, pairs: "Iterable[tuple[int, int]] | IntPairs" = ()) -> None:
        if isinstance(pairs, IntPairs):
            self._a = array(_TYPECODE, pairs._a)
            self._b = array(_TYPECODE, pairs._b)
            return
        a = array(_TYPECODE)
        b = array(_TYPECODE)
        for first, second in pairs:
            a.append(first)
            b.append(second)
        self._a = a
        self._b = b

    @classmethod
    def from_arrays(cls, a: array, b: array) -> "IntPairs":
        """Adopt two parallel ``array('q')`` buffers (no copy)."""
        if len(a) != len(b):
            raise ValueError(
                f"parallel arrays disagree in length: {len(a)} != {len(b)}"
            )
        pairs = cls.__new__(cls)
        pairs._a = a
        pairs._b = b
        return pairs

    # --- sequence protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._a)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(self._a, self._b)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(zip(self._a[index], self._b[index]))
        return (self._a[index], self._b[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntPairs):
            return self._a == other._a and self._b == other._b
        if isinstance(other, (list, tuple)):
            return len(other) == len(self._a) and all(
                pair == mine for pair, mine in zip(other, self)
            )
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(repr(pair) for pair in self[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"IntPairs([{preview}{suffix}], len={len(self)})"

    # --- views ------------------------------------------------------------------

    def firsts(self) -> array:
        """The first elements as a live ``array('q')`` (do not mutate)."""
        return self._a

    def seconds(self) -> array:
        return self._b

    def to_lists(self) -> list[list[int]]:
        """JSON form: ``[[a, b], ...]``."""
        return [[first, second] for first, second in self]

    def tolist(self) -> list[tuple[int, int]]:
        return list(self)

"""The schema-versioned run artifact.

A :class:`RunRecord` is the one typed result of a replay: everything a
consumer downstream of the run loop needs (sweep aggregation, oracle
composition, figure regeneration, design-space scoring, perf accounting)
in a compact, JSON-safe row.  It is the *only* shape a run result takes
when it crosses a process or storage boundary — fleet worker IPC ships
these rows, and the content-addressed result cache stores them as JSON
documents instead of pickles.

Schema rules
------------

* ``RUN_RECORD_SCHEMA_VERSION`` names the row layout.  Any change to the
  field set, field meaning, or encoding MUST bump it.
* The version is embedded in every serialized row and folded into every
  fleet cache key, so old cache entries become misses (and re-execute)
  instead of deserializing wrongly.
* Rows are pure JSON: ints, floats, strings, lists.  Floats round-trip
  exactly (``json`` emits ``repr``-precision), which the bit-identical
  A/B guarantees rely on.
* The ``obs`` section (``REPRO_TRACE=1`` observability harvest) is
  self-versioned by ``repro.obs.metrics.OBS_SCHEMA_VERSION`` and
  omitted entirely when ``None``; its internal layout is opaque to this
  module.  Adding the field was itself a row-layout change, hence
  version 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.results.pairs import IntPairs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.hci import HciModel
    from repro.oracle.builder import BusyTimeline

#: Version of the serialized row layout.  Bump on ANY change to the
#: fields below or their encoding; the fleet cache folds this into its
#: content address, so a bump invalidates every cached row at once.
RUN_RECORD_SCHEMA_VERSION = 2


class RunRecordSchemaError(ReproError):
    """A serialized row does not carry the supported schema version."""


@dataclass(slots=True)
class RunRecord:
    """One workload execution under one configuration.

    ``transitions`` is the raw ``(timestamp_us, freq_khz)`` trace of the
    cpufreq policy; ``busy_intervals`` the core's closed ``(start_us,
    end_us)`` busy spans — both accumulated online on the device side
    during the run and held as compact :class:`~repro.results.pairs.
    IntPairs` (16 bytes/pair) rather than lists of tuples, because a
    day-long run logs hundreds of thousands of each.  Any iterable of
    pairs is accepted at construction and coerced.  ``lags`` is the
    matcher's output.

    ``obs`` is the observability harvest (counters, gauges, histograms)
    of a ``REPRO_TRACE=1`` run, or ``None`` — the default — when the run
    was not observed.  It is excluded from equality so an observed run
    still compares equal to its unobserved twin: observability must
    never perturb result semantics.
    """

    workload: str
    config: str
    rep: int
    duration_us: int
    energy_j: float
    dynamic_energy_j: float
    busy_us: int
    transitions: IntPairs
    busy_intervals: IntPairs
    lags: tuple[LagMeasurement, ...]
    schema_version: int = RUN_RECORD_SCHEMA_VERSION
    obs: dict | None = field(default=None, compare=False)
    _timeline: "BusyTimeline | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.transitions, IntPairs):
            self.transitions = IntPairs(self.transitions)
        if not isinstance(self.busy_intervals, IntPairs):
            self.busy_intervals = IntPairs(self.busy_intervals)

    # --- derived views ----------------------------------------------------------

    @property
    def lag_profile(self) -> LagProfile:
        """The run's lag profile (cheap view over ``lags``)."""
        return LagProfile(self.workload, self.lags)

    @property
    def busy_timeline(self) -> "BusyTimeline":
        """Busy intervals with O(log n) window queries, built lazily."""
        if self._timeline is None:
            from repro.oracle.builder import BusyTimeline

            self._timeline = BusyTimeline(self.busy_intervals)
        return self._timeline

    def irritation_seconds(self, model: "HciModel | None" = None) -> float:
        return self.lag_profile.irritation(model).total_seconds

    # --- serialization ----------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The row as a pure-JSON dict (the IPC and cache wire format).

        ``obs`` is emitted only when present, so unobserved rows (the
        default, and everything the A/B digest tests compare) serialize
        to byte-identical text whether or not the field exists.
        """
        row = {
            "schema_version": self.schema_version,
            "workload": self.workload,
            "config": self.config,
            "rep": self.rep,
            "duration_us": self.duration_us,
            "energy_j": self.energy_j,
            "dynamic_energy_j": self.dynamic_energy_j,
            "busy_us": self.busy_us,
            "transitions": self.transitions.to_lists(),
            "busy_intervals": self.busy_intervals.to_lists(),
            "lags": [
                {
                    "lag_index": lag.lag_index,
                    "gesture_index": lag.gesture_index,
                    "label": lag.label,
                    "category": lag.category,
                    "begin_time_us": lag.begin_time_us,
                    "end_frame": lag.end_frame,
                    "duration_us": lag.duration_us,
                    "threshold_us": lag.threshold_us,
                }
                for lag in self.lags
            ],
        }
        if self.obs is not None:
            row["obs"] = self.obs
        return row

    @classmethod
    def from_json_dict(cls, row: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output.

        Raises :class:`RunRecordSchemaError` on a version mismatch — the
        cache treats that as a miss and re-executes the cell.
        """
        version = row.get("schema_version")
        if version != RUN_RECORD_SCHEMA_VERSION:
            raise RunRecordSchemaError(
                f"RunRecord schema version {version!r} is not the "
                f"supported version {RUN_RECORD_SCHEMA_VERSION}"
            )
        return cls(
            workload=row["workload"],
            config=row["config"],
            rep=row["rep"],
            duration_us=row["duration_us"],
            energy_j=row["energy_j"],
            dynamic_energy_j=row["dynamic_energy_j"],
            busy_us=row["busy_us"],
            # Wire rows adopt lazily: the warm-cache scan loads hundreds
            # of rows whose traces are mostly never read, so the
            # element-wise decode is deferred to first access.
            transitions=IntPairs.from_lists(row["transitions"]),
            busy_intervals=IntPairs.from_lists(row["busy_intervals"]),
            lags=tuple(
                LagMeasurement(
                    lag_index=lag["lag_index"],
                    gesture_index=lag["gesture_index"],
                    label=lag["label"],
                    category=lag["category"],
                    begin_time_us=lag["begin_time_us"],
                    end_frame=lag["end_frame"],
                    duration_us=lag["duration_us"],
                    threshold_us=lag["threshold_us"],
                )
                for lag in row["lags"]
            ),
            obs=row.get("obs"),
        )

    def dumps(self) -> str:
        """Canonical JSON text of the row (stable key order, no spaces)."""
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def loads(cls, text: str) -> "RunRecord":
        return cls.from_json_dict(json.loads(text))

"""Scenario synthesis: procedurally generated workloads.

The paper evaluates on six recorded workloads (Table I).  This package
multiplies that into an open-ended grid: a *scenario* is a seeded,
procedurally generated user session drawn from a parameterized
**persona** (an app mix, think-time profile, gesture ratio and
spurious-input rate) executed on a **device profile** (an OPP table,
power model and panel variant).  Every scenario is addressable by a
canonical config string::

    persona=gamer,seed=7,duration=10m,profile=quad_ls

parsed and validated the same way governor config strings are
(:mod:`repro.governors.config`), and is interchangeable with a named
dataset everywhere a dataset name is accepted — ``sweep``, ``study``,
``explore``, ``perf``, the fleet cache, saved artifacts.

Determinism guarantee: the generated :class:`PlanStep` sequence is a
pure function of the canonical config string — independent of the
harness master seed, worker count, or cache state — so the same
scenario records and replays bit-identically everywhere.
"""

from repro.scenarios.config import (
    ScenarioSpec,
    canonical_scenario,
    format_duration,
    is_scenario_name,
    parse_scenario,
)
from repro.scenarios.personas import PERSONAS, Persona, persona, persona_names
from repro.scenarios.profiles import (
    PROFILES,
    DeviceProfile,
    device_config_for,
    device_profile,
    frequency_table_for,
    profile_names,
)
from repro.scenarios.synth import ScenarioPlan, synthesize_scenario

__all__ = [
    "ScenarioSpec",
    "parse_scenario",
    "canonical_scenario",
    "format_duration",
    "is_scenario_name",
    "Persona",
    "PERSONAS",
    "persona",
    "persona_names",
    "DeviceProfile",
    "PROFILES",
    "device_profile",
    "device_config_for",
    "frequency_table_for",
    "profile_names",
    "ScenarioPlan",
    "synthesize_scenario",
]

"""Parsing and canonicalisation of scenario config strings.

A *scenario string* names one synthesized workload::

    persona=gamer,seed=7,duration=10m,profile=quad_ls

Comma-separated ``key=value`` pairs, mirroring the grammar of governor
config strings (:mod:`repro.governors.config`).  ``persona`` is
required; ``seed`` (default 0), ``duration`` (default ``10m``) and
``profile`` (default ``stock``) are optional.  Durations take a unit
suffix — ``45s``, ``2m``, ``1h`` — and :func:`canonical_scenario`
normalises every spelling of the same scenario (key order, whitespace,
``_`` digit separators, equivalent duration units) to exactly one
string, so that one scenario maps to one dataset name, one RNG stream
and one cache cell.

Like the governor grammar, this module stays free of simulator imports
beyond the persona/profile registries it validates against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import WorkloadError
from repro.core.simtime import hours, minutes, seconds

#: Canonical key order of a scenario string.
SCENARIO_KEYS = ("persona", "seed", "duration", "profile")

DEFAULT_SEED = 0
DEFAULT_DURATION_US = minutes(10)
DEFAULT_PROFILE = "stock"

_UNIT_US = {"s": seconds(1), "m": minutes(1), "h": hours(1)}


def parse_duration(text: str) -> int:
    """``45s`` / ``2m`` / ``1h`` → microseconds (positive, unit required)."""
    text = text.strip().replace("_", "")
    unit = text[-1:] if text else ""
    if unit not in _UNIT_US:
        raise WorkloadError(
            f"scenario duration {text!r} needs a unit suffix (s, m or h), "
            "e.g. duration=10m"
        )
    try:
        count = int(text[:-1])
    except ValueError:
        raise WorkloadError(
            f"scenario duration {text!r} needs an integer count, e.g. 45s"
        ) from None
    if count <= 0:
        raise WorkloadError(f"scenario duration {text!r} must be positive")
    return count * _UNIT_US[unit]


def format_duration(duration_us: int) -> str:
    """Canonical spelling of a duration: the largest unit that divides it."""
    for unit in ("h", "m", "s"):
        unit_us = _UNIT_US[unit]
        if duration_us % unit_us == 0:
            return f"{duration_us // unit_us}{unit}"
    raise WorkloadError(
        f"scenario duration {duration_us} us is not a whole number of seconds"
    )


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One synthesized scenario: persona, seed, duration, device profile."""

    persona: str
    seed: int
    duration_us: int
    profile: str

    def canonical(self) -> str:
        """The canonical config string this spec answers to."""
        return (
            f"persona={self.persona},seed={self.seed},"
            f"duration={format_duration(self.duration_us)},"
            f"profile={self.profile}"
        )


def is_scenario_name(name: str) -> bool:
    """Whether a workload name is a scenario string (vs a named dataset)."""
    return isinstance(name, str) and "=" in name


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse and validate a scenario string into a :class:`ScenarioSpec`.

    Raises :class:`WorkloadError` with a one-line message for every
    malformed spelling, unknown key, unknown persona or unknown profile.
    """
    from repro.scenarios.personas import PERSONAS
    from repro.scenarios.profiles import PROFILES

    if not isinstance(text, str) or not text.strip():
        raise WorkloadError(f"empty scenario spec {text!r}")
    pairs: dict[str, str] = {}
    for pair in text.strip().split(","):
        key, eq, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if not eq or not key or not value:
            raise WorkloadError(
                f"scenario {text!r}: malformed pair {pair.strip()!r} "
                "(expected key=value)"
            )
        if key not in SCENARIO_KEYS:
            raise WorkloadError(
                f"scenario {text!r}: unknown key {key!r} "
                f"(known: {', '.join(SCENARIO_KEYS)})"
            )
        if key in pairs:
            raise WorkloadError(f"scenario {text!r}: duplicate key {key!r}")
        pairs[key] = value

    if "persona" not in pairs:
        raise WorkloadError(
            f"scenario {text!r} needs a persona, e.g. persona=gamer"
        )
    persona = pairs["persona"]
    if persona not in PERSONAS:
        raise WorkloadError(
            f"scenario {text!r}: unknown persona {persona!r} "
            f"(known: {', '.join(sorted(PERSONAS))})"
        )
    profile = pairs.get("profile", DEFAULT_PROFILE)
    if profile not in PROFILES:
        raise WorkloadError(
            f"scenario {text!r}: unknown profile {profile!r} "
            f"(known: {', '.join(sorted(PROFILES))})"
        )
    seed_text = pairs.get("seed", str(DEFAULT_SEED))
    try:
        seed = int(seed_text)
    except ValueError:
        raise WorkloadError(
            f"scenario {text!r}: seed needs an integer value, got {seed_text!r}"
        ) from None
    duration_us = (
        parse_duration(pairs["duration"])
        if "duration" in pairs
        else DEFAULT_DURATION_US
    )
    return ScenarioSpec(
        persona=persona, seed=seed, duration_us=duration_us, profile=profile
    )


def canonical_scenario(text: str) -> str:
    """Normalise a scenario string to its one canonical spelling."""
    return parse_scenario(text).canonical()

"""Personas: parameterized synthetic users.

A :class:`Persona` is a distribution over *activities* — bounded app
sessions built from the same tap/swipe vocabularies the Table I dataset
plans use — plus a think-time scale, a spurious-input rate, per-session
idle gaps and a swipe bias.  :func:`persona_plan` turns a persona and a
seeded :class:`random.Random` into an endless :class:`PlanStep` stream;
the recording harness cuts it at the scenario duration.

Activities keep the cross-visit state the live UI keeps (Pulse scroll
offset, Movie Studio clip count, Logo Quiz progress) in a
:class:`PlanState`, so every generated target resolves against the live
UI exactly the way the proven dataset plans do: list-row taps stay
inside the tracked visible window, clip selections never name a clip
that was not imported, and every activity leaves its app in the state
the next visit expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator

from repro.core.errors import WorkloadError
from repro.workloads.datasets import ANSWER_WORDS
from repro.workloads.sessions import KIND_SWIPE, KIND_TAP, PlanStep


def _tap(app: str, target: str, think_us: int) -> PlanStep:
    return PlanStep(KIND_TAP, app, target, think_us)


def _swipe(app: str, target: str, think_us: int) -> PlanStep:
    return PlanStep(KIND_SWIPE, app, target, think_us)


@dataclass(frozen=True, slots=True)
class Persona:
    """One synthetic user archetype."""

    name: str
    description: str
    #: ``(activity, weight)`` pairs; weights need not sum to one.
    app_mix: tuple[tuple[str, float], ...]
    #: Multiplier on every base think-time range (lower = faster user).
    think_scale: float
    #: Chance of a spurious (dead) tap at each activity's spurious points.
    spurious_rate: float
    #: Idle gap range in seconds between app sessions (the launcher tap
    #: that starts each activity carries this as its think time).
    idle_gap_s: tuple[float, float]
    #: Chance of an extra scroll swipe wherever an activity scrolls.
    swipe_bias: float
    #: Action blocks per app session.
    session_blocks: tuple[int, int] = (2, 3)

    def think(self, rng: Random, low_s: float, high_s: float) -> int:
        """A think time drawn from the scaled ``[low_s, high_s]`` range."""
        return int(
            rng.uniform(low_s * self.think_scale, high_s * self.think_scale)
            * 1_000_000
        )

    def blocks(self, rng: Random) -> int:
        return rng.randint(*self.session_blocks)


@dataclass(slots=True)
class PlanState:
    """Cross-visit UI state a persona's plan tracks, one per scenario."""

    quiz_started: bool = False
    pulse_rows: int = 0
    clips_imported: int = 0
    clip_selected: int = -1
    music_playing: bool = False


Activity = Callable[[Random, Persona, PlanState, int], Iterator[PlanStep]]


def _spurious(
    rng: Random, persona: Persona, app: str
) -> Iterator[PlanStep]:
    if rng.random() < persona.spurious_rate:
        yield _tap(app, "dead", persona.think(rng, 0.8, 1.6))


# --- activities -----------------------------------------------------------------------
#
# Each activity starts with a launcher tap whose think time is the
# between-session idle gap, performs a bounded number of blocks, and
# returns to the home screen, leaving its app ready for the next visit.


def _quiz(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Logo Quiz: typing-dominated play (the Dataset 02 vocabulary)."""
    yield _tap("launcher", "icon:logoquiz", gap_us)
    if not state.quiz_started:
        yield _tap("logoquiz", "btn:play", persona.think(rng, 1.5, 3.0))
        level = rng.randint(0, 8)
        yield _tap("logoquiz", f"level:{level}", persona.think(rng, 1.2, 2.5))
        state.quiz_started = True
    for _ in range(persona.blocks(rng)):
        word = rng.choice(ANSWER_WORDS)
        first_think = persona.think(rng, 7.0, 13.0)
        for position, char in enumerate(word):
            think = first_think if position == 0 else persona.think(rng, 1.1, 2.4)
            yield _tap("logoquiz", f"key:{char}", think)
        yield from _spurious(rng, persona, "logoquiz")
        yield _tap("logoquiz", "btn:check", persona.think(rng, 1.4, 2.8))
    yield _tap("logoquiz", "nav:home", persona.think(rng, 1.5, 3.0))


def _news(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Pulse News: scroll and read (the Dataset 05 vocabulary).

    ``state.pulse_rows`` mirrors the feed's scroll offset across visits
    so story taps always land inside the visible window.
    """
    if rng.random() < 0.3:
        yield _tap("launcher", "widget", gap_us)
    else:
        yield _tap("launcher", "icon:pulse", gap_us)
    for _ in range(persona.blocks(rng)):
        if state.pulse_rows == 0 and rng.random() < 0.2:
            yield _swipe("pulse", "pull-refresh", persona.think(rng, 2.0, 4.5))
        swipes = rng.randint(1, 2)
        if rng.random() < persona.swipe_bias:
            swipes += 1
        for _ in range(swipes):
            if state.pulse_rows < 12:
                yield _swipe("pulse", "scroll-up", persona.think(rng, 2.5, 6.0))
                state.pulse_rows += 8
            else:
                yield _swipe("pulse", "scroll-down", persona.think(rng, 2.5, 6.0))
                state.pulse_rows -= 8
        story = min(23, state.pulse_rows + rng.randint(0, 5))
        yield _tap("pulse", f"story:{story}", persona.think(rng, 3.0, 6.0))
        yield _tap("pulse", "nav:back", persona.think(rng, 9.0, 25.0))
        yield from _spurious(rng, persona, "pulse")
    yield _tap("pulse", "nav:home", persona.think(rng, 1.5, 3.0))


def _chat(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Messaging: open a thread, type, attach, send (Dataset 03)."""
    yield _tap("launcher", "icon:messaging", gap_us)
    thread = rng.randint(0, 7)
    yield _tap("messaging", f"thread:{thread}", persona.think(rng, 2.0, 4.0))
    for _ in range(persona.blocks(rng)):
        word = rng.choice(ANSWER_WORDS)
        for position, char in enumerate(word):
            think = (
                persona.think(rng, 3.0, 7.0)
                if position == 0
                else persona.think(rng, 0.8, 2.0)
            )
            yield _tap("messaging", f"key:{char}", think)
        if rng.random() < 0.4:
            yield _tap("messaging", "btn:attach", persona.think(rng, 2.0, 4.0))
            yield _tap(
                "messaging",
                f"pick:{rng.randint(0, 5)}",
                persona.think(rng, 2.5, 5.0),
            )
        yield from _spurious(rng, persona, "messaging")
        yield _tap("messaging", "btn:send", persona.think(rng, 1.5, 3.0))
    yield _tap("messaging", "nav:home", persona.think(rng, 2.0, 5.0))


def _photos(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Gallery: edit / filter / save — the long complex lags (Dataset 01)."""
    yield _tap("launcher", "icon:gallery", gap_us)
    album = rng.randint(0, 7)
    yield _tap("gallery", f"album:{album}", persona.think(rng, 4.0, 8.0))
    yield _tap(
        "gallery", f"photo:{rng.randint(0, 5)}", persona.think(rng, 3.0, 6.0)
    )
    flips = rng.randint(0, 2)
    if rng.random() < persona.swipe_bias:
        flips += 1
    for _ in range(flips):
        yield _swipe("gallery", "flip-next", persona.think(rng, 5.0, 10.0))
    yield _tap("gallery", "btn:edit", persona.think(rng, 4.0, 8.0))
    yield _tap("gallery", "btn:filter", persona.think(rng, 4.0, 8.0))
    if rng.random() < 0.35:
        yield _tap("gallery", "btn:filter", persona.think(rng, 4.0, 8.0))
    yield _tap("gallery", "btn:save", persona.think(rng, 4.0, 7.0))
    yield from _spurious(rng, persona, "gallery")
    # Admire the result, then back out to the albums overview.
    yield _tap("gallery", "nav:back", persona.think(rng, 8.0, 15.0))
    yield _tap("gallery", "nav:back", persona.think(rng, 2.0, 4.0))
    yield _tap("gallery", "nav:back", persona.think(rng, 2.0, 4.0))
    yield _tap("gallery", "nav:home", persona.think(rng, 1.5, 3.0))


def _video(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Movie Studio: clip edits, previews, exports (Dataset 04).

    ``state.clips_imported`` / ``state.clip_selected`` mirror the app's
    project state so selection taps always name an imported clip.
    """
    yield _tap("launcher", "icon:moviestudio", gap_us)
    for _ in range(persona.blocks(rng)):
        if state.clips_imported < 6:
            yield _tap(
                "moviestudio", "btn:addclip", persona.think(rng, 1.5, 3.0)
            )
            state.clips_imported += 1
        for _ in range(rng.randint(2, 4)):
            choice = rng.randrange(state.clips_imported)
            if choice == state.clip_selected:
                choice = (choice + 1) % state.clips_imported
            if choice == state.clip_selected:
                continue  # only one clip imported and already selected
            state.clip_selected = choice
            yield _tap(
                "moviestudio", f"clip:{choice}", persona.think(rng, 1.0, 2.2)
            )
        yield from _spurious(rng, persona, "moviestudio")
        yield _tap("moviestudio", "btn:preview", persona.think(rng, 3.0, 6.5))
        if state.clips_imported >= 3 and rng.random() < 0.3:
            yield _tap(
                "moviestudio", "btn:export", persona.think(rng, 6.0, 12.0)
            )
    yield _tap("moviestudio", "nav:home", persona.think(rng, 1.5, 3.0))


def _feed(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """A feed app burst (the 24-hour workload's social/email vocabulary).

    Self-restoring: every scroll-up is paired with a scroll-down, so the
    feed is back at the top when the session ends.
    """
    app = rng.choice(("facebook", "gmail"))
    yield _tap("launcher", f"icon:{app}", gap_us)
    scrolled = rng.random() < max(persona.swipe_bias, 0.3)
    if scrolled:
        yield _swipe(app, "scroll-up", persona.think(rng, 2.0, 5.0))
    # One 112 px swipe over 13 px rows leaves items 9..16 on screen.
    base = 9 if scrolled else 0
    for _ in range(persona.blocks(rng)):
        yield _tap(
            app, f"item:{base + rng.randint(0, 5)}", persona.think(rng, 1.5, 3.0)
        )
        yield _tap(app, "nav:back", persona.think(rng, 5.0, 14.0))
    yield from _spurious(rng, persona, app)
    if scrolled:
        yield _swipe(app, "scroll-down", persona.think(rng, 1.5, 3.0))
    yield _tap(app, "nav:home", persona.think(rng, 1.0, 2.0))


def _tunes(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Music: toggle playback — background decode load between sessions."""
    yield _tap("launcher", "icon:music", gap_us)
    yield _tap("music", "btn:toggle", persona.think(rng, 1.0, 2.0))
    state.music_playing = not state.music_playing
    yield from _spurious(rng, persona, "music")
    yield _tap("music", "nav:home", persona.think(rng, 1.5, 3.0))


def _sums(
    rng: Random, persona: Persona, state: PlanState, gap_us: int
) -> Iterator[PlanStep]:
    """Calculator: rapid typing-category taps."""
    yield _tap("launcher", "icon:calculator", gap_us)
    for char in str(rng.randint(10, 999)):
        yield _tap("calculator", f"key:{char}", persona.think(rng, 0.5, 1.0))
    yield _tap("calculator", "key:+", persona.think(rng, 0.5, 1.0))
    for char in str(rng.randint(10, 999)):
        yield _tap("calculator", f"key:{char}", persona.think(rng, 0.5, 1.0))
    yield _tap("calculator", "key:=", persona.think(rng, 0.5, 1.0))
    yield from _spurious(rng, persona, "calculator")
    yield _tap("calculator", "nav:home", persona.think(rng, 1.5, 3.0))


ACTIVITIES: dict[str, Activity] = {
    "quiz": _quiz,
    "news": _news,
    "chat": _chat,
    "photos": _photos,
    "video": _video,
    "feed": _feed,
    "tunes": _tunes,
    "sums": _sums,
}


# --- the personas ---------------------------------------------------------------------

PERSONAS: dict[str, Persona] = {
    persona.name: persona
    for persona in (
        Persona(
            name="gamer",
            description="Fast-fingered Logo Quiz marathons with side chats.",
            app_mix=(("quiz", 0.62), ("chat", 0.15), ("feed", 0.13), ("tunes", 0.10)),
            think_scale=0.6,
            spurious_rate=0.25,
            idle_gap_s=(4.0, 10.0),
            swipe_bias=0.1,
            session_blocks=(2, 4),
        ),
        Persona(
            name="reader",
            description="Long, slow news and feed reading sessions.",
            app_mix=(("news", 0.55), ("feed", 0.25), ("photos", 0.10), ("chat", 0.10)),
            think_scale=1.6,
            spurious_rate=0.12,
            idle_gap_s=(6.0, 18.0),
            swipe_bias=0.6,
            session_blocks=(2, 3),
        ),
        Persona(
            name="messenger",
            description="Conversation-driven: typing bursts and quick glances.",
            app_mix=(("chat", 0.60), ("news", 0.15), ("feed", 0.15), ("tunes", 0.10)),
            think_scale=0.8,
            spurious_rate=0.20,
            idle_gap_s=(3.0, 9.0),
            swipe_bias=0.25,
        ),
        Persona(
            name="creator",
            description="Media-heavy editing: Gallery filters and Movie Studio exports.",
            app_mix=(("photos", 0.45), ("video", 0.45), ("tunes", 0.10)),
            think_scale=1.0,
            spurious_rate=0.30,
            idle_gap_s=(5.0, 12.0),
            swipe_bias=0.3,
        ),
        Persona(
            name="mixed",
            description="A bit of everything, densely interleaved.",
            app_mix=(
                ("quiz", 0.15),
                ("news", 0.20),
                ("chat", 0.20),
                ("photos", 0.15),
                ("video", 0.10),
                ("feed", 0.10),
                ("sums", 0.05),
                ("tunes", 0.05),
            ),
            think_scale=1.0,
            spurious_rate=0.20,
            idle_gap_s=(4.0, 12.0),
            swipe_bias=0.35,
        ),
        Persona(
            name="burst-commuter",
            description="Short intense bursts separated by long pocket gaps.",
            app_mix=(("news", 0.30), ("chat", 0.30), ("feed", 0.30), ("sums", 0.10)),
            think_scale=0.7,
            spurious_rate=0.15,
            idle_gap_s=(45.0, 150.0),
            swipe_bias=0.3,
        ),
    )
}


def persona(name: str) -> Persona:
    try:
        return PERSONAS[name]
    except KeyError:
        known = ", ".join(sorted(PERSONAS))
        raise WorkloadError(
            f"unknown persona {name!r} (known: {known})"
        ) from None


def persona_names() -> list[str]:
    return sorted(PERSONAS)


def _weighted_choice(
    rng: Random, mix: tuple[tuple[str, float], ...]
) -> str:
    total = sum(weight for _, weight in mix)
    mark = rng.random() * total
    for name, weight in mix:
        mark -= weight
        if mark < 0:
            return name
    return mix[-1][0]


def persona_plan(who: Persona, rng: Random) -> Iterator[PlanStep]:
    """An endless seeded :class:`PlanStep` stream for one persona."""
    state = PlanState()
    first = True
    while True:
        activity = ACTIVITIES[_weighted_choice(rng, who.app_mix)]
        low, high = who.idle_gap_s
        # The first session starts promptly; later ones wait out the gap.
        gap_us = (
            int(rng.uniform(1.5, 3.0) * 1_000_000)
            if first
            else int(rng.uniform(low, high) * 1_000_000)
        )
        first = False
        yield from activity(rng, who, state, gap_us)

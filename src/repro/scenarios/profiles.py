"""Device profiles: hardware variants scenarios can run on.

A :class:`DeviceProfile` names one hardware configuration — an OPP
subset of the Snapdragon 8074 table (or the full table), a power-model
variant and a panel size — and builds the matching
:class:`~repro.device.device.DeviceConfig`.  Profiles are pure values
derived from :mod:`repro.device.frequencies`, so the same profile name
always yields the same table, the same recording frequency (the
table's lowest OPP) and the same sweep grid (one ``fixed:<khz>``
configuration per OPP plus the governors).

``stock`` reproduces the paper's Dragonboard exactly: the full
14-point table, the default power model and the default panel —
running a scenario on ``stock`` is bit-identical to the pre-profile
code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import WorkloadError
from repro.device.device import (
    DEFAULT_SCREEN_HEIGHT,
    DEFAULT_SCREEN_WIDTH,
    DeviceConfig,
)
from repro.device.frequencies import (
    SNAPDRAGON_8074_FREQS_KHZ,
    FrequencyTable,
    OperatingPoint,
    rail_voltage,
    snapdragon_8074_table,
)
from repro.device.power import (
    DEFAULT_ACTIVE_BASE_W,
    DEFAULT_IDLE_W,
    DEFAULT_KAPPA,
    PowerModel,
)


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """One simulated hardware variant."""

    name: str
    description: str
    #: The OPPs this device exposes (a subset of the 8074 table).
    freqs_khz: tuple[int, ...]
    screen_width: int = DEFAULT_SCREEN_WIDTH
    screen_height: int = DEFAULT_SCREEN_HEIGHT
    #: Power-model constants (see :class:`repro.device.power.PowerModel`).
    kappa: float = DEFAULT_KAPPA
    active_base_w: float = DEFAULT_ACTIVE_BASE_W
    idle_w: float = DEFAULT_IDLE_W

    def frequency_table(self) -> FrequencyTable:
        if self.freqs_khz == SNAPDRAGON_8074_FREQS_KHZ:
            return snapdragon_8074_table()
        return FrequencyTable(
            [
                OperatingPoint(freq_khz=khz, volts=rail_voltage(khz))
                for khz in self.freqs_khz
            ]
        )

    def power_model(self) -> PowerModel:
        return PowerModel(
            kappa=self.kappa,
            active_base_w=self.active_base_w,
            idle_w=self.idle_w,
        )

    def device_config(self) -> DeviceConfig:
        return DeviceConfig(
            screen_width=self.screen_width,
            screen_height=self.screen_height,
            power_model=self.power_model(),
            frequency_table=self.frequency_table(),
        )


PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (
        DeviceProfile(
            name="stock",
            description="The paper's Dragonboard APQ8074: full 14-OPP table.",
            freqs_khz=SNAPDRAGON_8074_FREQS_KHZ,
        ),
        DeviceProfile(
            name="quad_ls",
            description=(
                "Little-cluster quad: the eight OPPs up to 1.19 GHz, "
                "low-power core constants."
            ),
            freqs_khz=SNAPDRAGON_8074_FREQS_KHZ[:8],
            kappa=0.48,
            active_base_w=0.052,
            idle_w=0.031,
        ),
        DeviceProfile(
            name="hexa_perf",
            description=(
                "Performance hexa: the six OPPs from 1.27 GHz up, hotter "
                "idle floor (no deep sleep below the big cluster)."
            ),
            freqs_khz=SNAPDRAGON_8074_FREQS_KHZ[8:],
            kappa=0.66,
            active_base_w=0.080,
            idle_w=0.052,
        ),
        DeviceProfile(
            name="tablet_hd",
            description=(
                "Tablet variant: full OPP table driving a 96x160 panel "
                "with a higher display power floor."
            ),
            freqs_khz=SNAPDRAGON_8074_FREQS_KHZ,
            screen_width=96,
            screen_height=160,
            active_base_w=0.074,
            idle_w=0.049,
        ),
    )
}


def device_profile(name: str) -> DeviceProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise WorkloadError(
            f"unknown device profile {name!r} (known: {known})"
        ) from None


def profile_names() -> list[str]:
    return sorted(PROFILES)


def device_config_for(spec) -> DeviceConfig:
    """The :class:`DeviceConfig` a dataset spec's profile prescribes."""
    return device_profile(getattr(spec, "profile", "stock")).device_config()


def frequency_table_for(spec) -> FrequencyTable:
    """The OPP table a dataset spec's profile prescribes."""
    return device_profile(getattr(spec, "profile", "stock")).frequency_table()


def power_model_for(spec) -> PowerModel:
    """The power model a dataset spec's profile prescribes."""
    return device_profile(getattr(spec, "profile", "stock")).power_model()

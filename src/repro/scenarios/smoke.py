"""Scenario smoke check: ``python -m repro.scenarios.smoke``.

For every persona: synthesize one short scenario, record it, replay it
under two governors through the fleet engine (``jobs=2``) with a
content-addressed cache, then re-run warm and verify

* the warm pass executes **zero** replays (cache-key stability),
* warm results are bit-identical to the cold ones,
* a scenario re-synthesized from its canonical string produces the
  same plan (round-trip determinism).

Exit status 0 on success, 1 on any failure — CI's scenario-smoke job
runs exactly this.
"""

from __future__ import annotations

import itertools
import sys
import tempfile
from random import Random

SMOKE_GOVERNORS = ("ondemand", "qoe_aware")
SMOKE_DURATION = "45s"
SMOKE_SEED = 3


def _digest(result) -> tuple:
    return (
        repr(result.energy_j),
        repr(result.dynamic_energy_j),
        result.busy_us,
        repr(result.irritation_seconds()),
        len(result.lag_profile.lags),
        tuple(result.transitions),
    )


def run_smoke(out=sys.stdout) -> int:
    from repro.fleet.cache import ResultCache
    from repro.fleet.engine import FleetEngine
    from repro.fleet.spec import RunSpec
    from repro.harness.experiment import record_workload
    from repro.scenarios.personas import persona_names
    from repro.workloads.datasets import dataset

    failures = 0
    with tempfile.TemporaryDirectory(prefix="scenario-smoke-") as cache_dir:
        for name in persona_names():
            scenario = f"persona={name},seed={SMOKE_SEED},duration={SMOKE_DURATION}"
            spec = dataset(scenario)

            # Round-trip determinism of the synthesized plan.
            steps_a = list(itertools.islice(spec.plan(Random(0)), 50))
            steps_b = list(
                itertools.islice(dataset(spec.name).plan(Random(99)), 50)
            )
            if steps_a != steps_b:
                print(f"FAIL {spec.name}: plan not canonical-deterministic",
                      file=out)
                failures += 1
                continue

            artifacts = record_workload(spec)
            specs = [
                RunSpec(
                    dataset=artifacts.name,
                    config=config,
                    rep=0,
                    master_seed=artifacts.recording_master_seed,
                )
                for config in SMOKE_GOVERNORS
            ]
            cache = ResultCache(cache_dir)
            engine = FleetEngine(jobs=2, cache=cache)
            cold = [_digest(r) for r in engine.run(artifacts, specs)]
            cold_executed = engine.last_stats.executed

            warm_engine = FleetEngine(jobs=2, cache=ResultCache(cache_dir))
            warm = [_digest(r) for r in warm_engine.run(artifacts, specs)]
            if warm_engine.last_stats.executed != 0:
                print(
                    f"FAIL {spec.name}: warm re-run executed "
                    f"{warm_engine.last_stats.executed} replay(s), wanted 0",
                    file=out,
                )
                failures += 1
            elif warm != cold:
                print(f"FAIL {spec.name}: warm results differ from cold",
                      file=out)
                failures += 1
            else:
                print(
                    f"ok {spec.name}: {artifacts.input_count} inputs, "
                    f"{cold_executed} replays cold, 0 warm",
                    file=out,
                )
    if failures:
        print(f"{failures} scenario smoke failure(s)", file=out)
        return 1
    print("scenario smoke passed", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())

"""Scenario synthesis: config string → :class:`DatasetSpec`.

A synthesized scenario is a first-class workload: its canonical config
string is its dataset name, so it flows unchanged through recording,
replay, the fleet cache key (via the workload fingerprint and
``RunSpec.dataset``), saved artifacts, and every figure.

Determinism: the plan stream is seeded from the canonical string alone
(the harness's plan RNG is deliberately ignored), so the same scenario
yields a byte-identical :class:`PlanStep` sequence regardless of the
master seed, worker count or cache state.  :class:`ScenarioPlan` is a
plain picklable value — fleet workers receive it inside the recorded
artifacts' spec.
"""

from __future__ import annotations

import hashlib
from random import Random
from typing import Iterator

from repro.scenarios.config import ScenarioSpec, parse_scenario
from repro.scenarios.personas import PERSONAS, persona_plan
from repro.workloads.datasets import DatasetSpec
from repro.workloads.sessions import PlanStep


def scenario_plan_seed(canonical: str) -> int:
    """The plan-stream seed, a pure function of the canonical string."""
    digest = hashlib.sha256(f"scenario-plan:{canonical}".encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class ScenarioPlan:
    """Picklable plan factory for one scenario.

    Implements the ``plan_factory`` protocol of :class:`DatasetSpec`.
    The harness-supplied RNG is ignored: the stream is derived from the
    scenario's canonical string so the plan is identical under every
    master seed.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    def __call__(self, _rng: Random) -> Iterator[PlanStep]:
        rng = Random(scenario_plan_seed(self.spec.canonical()))
        return persona_plan(PERSONAS[self.spec.persona], rng)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioPlan):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:
        return f"ScenarioPlan({self.spec.canonical()!r})"


def synthesize_scenario(scenario: str | ScenarioSpec) -> DatasetSpec:
    """Build the :class:`DatasetSpec` for a scenario string (or spec)."""
    spec = (
        scenario
        if isinstance(scenario, ScenarioSpec)
        else parse_scenario(scenario)
    )
    who = PERSONAS[spec.persona]
    return DatasetSpec(
        name=spec.canonical(),
        description=f"Synthesized scenario — {who.description}",
        duration_us=spec.duration_us,
        plan_factory=ScenarioPlan(spec),
        target_inputs=None,
        profile=spec.profile,
    )

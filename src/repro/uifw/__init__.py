"""Minimal Android-like UI framework.

Apps are state machines built from widgets; the window manager composes
the foreground app plus the status bar into the framebuffer on vsync; a
gesture decoder reconstructs taps and swipes from raw kernel input events
— the same path for live recording and replay, which is what makes
replayed workloads behave identically to recorded ones.
"""

from repro.uifw.app import App, AppContext
from repro.uifw.gestures import Gesture, GestureDecoder, Swipe, Tap
from repro.uifw.journal import GroundTruthJournal, InteractionRecord
from repro.uifw.view import View, WindowManager
from repro.uifw.widgets import (
    Button,
    Icon,
    Keyboard,
    Label,
    ListView,
    ProgressBar,
    Spinner,
    StatusBar,
    TextField,
    TextureBlock,
    Widget,
)

__all__ = [
    "App",
    "AppContext",
    "Gesture",
    "GestureDecoder",
    "Tap",
    "Swipe",
    "GroundTruthJournal",
    "InteractionRecord",
    "View",
    "WindowManager",
    "Widget",
    "Label",
    "TextureBlock",
    "Icon",
    "Button",
    "ListView",
    "ProgressBar",
    "Spinner",
    "StatusBar",
    "TextField",
    "Keyboard",
]

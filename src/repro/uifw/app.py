"""Application base class and the context apps use to touch the system."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.kernel.task import PRIORITY_FOREGROUND, Task
from repro.uifw.gestures import Gesture, Swipe, Tap
from repro.uifw.journal import InteractionToken
from repro.uifw.view import View
from repro.uifw.widgets import TextureBlock

if TYPE_CHECKING:
    from repro.uifw.view import WindowManager

#: One loading stage: (cpu_cycles, io_gap_us_after_stage).
Stage = tuple[float, int]

# Cycles to redraw a screen after trivial state changes (navigation, key
# echo).  Roughly a few milliseconds at mid frequencies.
RENDER_WORK_CYCLES = 20.0e6


class AppContext:
    """Everything an app may use: work posting, journal, invalidation."""

    def __init__(self, wm: "WindowManager", app: "App") -> None:
        self.wm = wm
        self.app = app
        self.engine = wm.engine
        self.scheduler = wm.device.scheduler
        self.journal = wm.journal

    def invalidate(self) -> None:
        self.wm.invalidate()

    def now(self) -> int:
        return self.engine.now

    def open_interaction(self, label: str, category: str) -> InteractionToken:
        return self.journal.open_interaction(
            f"{self.app.name}:{label}", category, self.journal.current_down_time()
        )

    def post_work(
        self,
        label: str,
        cycles: float,
        on_complete: Callable[[], None] | None = None,
        priority: int = PRIORITY_FOREGROUND,
    ) -> Task:
        """Submit one unit of CPU work to the kernel."""
        task = Task(
            f"{self.app.name}:{label}",
            cycles,
            priority=priority,
            on_complete=(lambda _t: on_complete()) if on_complete else None,
        )
        self.scheduler.submit(task)
        return task

    def run_stages(
        self,
        label: str,
        stages: Sequence[Stage],
        on_stage: Callable[[int], None] | None = None,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """Run CPU stages sequentially with optional IO gaps between them.

        ``on_stage(i)`` fires after stage ``i`` completes (apps update the
        screen there, producing the progressive loading the suggester
        sees); ``on_done`` fires after the last stage.
        """
        if not stages:
            if on_done is not None:
                on_done()
            return

        def run(index: int) -> None:
            cycles, io_gap = stages[index]

            def completed() -> None:
                if on_stage is not None:
                    on_stage(index)
                next_index = index + 1
                if next_index >= len(stages):
                    if on_done is not None:
                        on_done()
                elif io_gap > 0:
                    self.engine.schedule_after(io_gap, lambda: run(next_index))
                else:
                    run(next_index)

            self.post_work(f"{label}[{index}]", cycles, completed)

        run(0)


class App:
    """Base class for simulated applications.

    Subclasses build views, react to gestures by posting CPU work through
    the context, update their widgets when work completes, and mark
    interaction completion on the journal token — which is the ground
    truth the AutoAnnotator (standing in for the paper's human) consults.
    """

    #: unique app name; also the launcher icon key.
    name = "app"
    #: HCI category a cold launch of this app falls into.
    launch_category = "common"

    def __init__(self) -> None:
        self.ctx: AppContext | None = None
        self._view = View(f"{self.name}:root")
        self._splash_view: View | None = None
        self._pre_launch_view: View | None = None
        self.launched = False

    # --- lifecycle ---------------------------------------------------------------

    def attach(self, ctx: AppContext) -> None:
        self.ctx = ctx
        self.build_ui()

    def build_ui(self) -> None:
        """Create the app's widgets (called once at install)."""

    @property
    def view(self) -> View:
        return self._view

    @property
    def context(self) -> AppContext:
        if self.ctx is None:
            raise SimulationError(f"app {self.name!r} not attached")
        return self.ctx

    def screen_size(self) -> tuple[int, int]:
        display = self.context.wm.device.display
        return display.width, display.height

    def label(self) -> str:
        """Launcher icon label."""
        return self.name

    def dynamic_regions(self) -> list:
        """Screen regions that may differ between runs of a workload.

        The AutoAnnotator masks these out of lag-ending images, the same
        way the paper's users mask the clock or an advertisement (Fig. 8).
        """
        return []

    # --- gestures ------------------------------------------------------------------

    def handle_gesture(self, gesture: Gesture) -> bool:
        """Route a gesture into the current view. Returns consumed?"""
        if isinstance(gesture, Tap):
            return self._view.dispatch_tap(gesture)
        if isinstance(gesture, Swipe):
            return self._view.dispatch_swipe(gesture)
        return False

    def on_back(self, token: InteractionToken) -> bool:
        """Handle the nav-bar back button.

        Return True if handled in-app (the app must complete the token);
        False sends the user home (the home app completes it).
        """
        return False

    def service_navigation(self, token: InteractionToken) -> None:
        """Complete a navigation interaction that lands on this app.

        The window switch happens when the render work completes, so the
        visual change coincides with the interaction's semantic end — the
        property the annotator and matcher both rely on.
        """
        ctx = self.context

        def done() -> None:
            ctx.wm.switch_to(self)
            token.complete(ctx.now())

        ctx.post_work("nav-render", RENDER_WORK_CYCLES, done)

    # --- launch ------------------------------------------------------------------------

    def cold_start_stages(self) -> list[Stage]:
        """CPU stages of a cold launch; override for heavier apps."""
        return [(80e6, 10_000), (100e6, 10_000), (80e6, 0)]

    def loading_view(self) -> View:
        """The screen shown while the app cold-starts.

        By default a splash screen; apps with progressive loading (the
        Gallery's one-by-one thumbnails) override this to load in place.
        """
        if self._splash_view is None:
            splash = View(f"{self.name}:splash", background=0)
            width, height = self.screen_size()
            splash.add(
                TextureBlock(
                    Rect(8, height // 3, width - 16, 24),
                    f"splash:{self.name}",
                )
            )
            self._splash_view = splash
        return self._splash_view

    def on_launch_stage(self, index: int) -> None:
        """Update the loading screen after stage ``index``; override."""

    def on_launched(self) -> None:
        """Final screen state after launch.

        The default restores the view that was current before the splash;
        apps override to land somewhere specific.
        """
        if self._pre_launch_view is not None:
            self._view = self._pre_launch_view

    def launch(self, token: InteractionToken) -> None:
        """Cold-start (or fast-resume) the app; completes ``token``."""
        ctx = self.context
        if self.launched:
            # Fast resume: the app window appears when the resume render
            # is done (the visual change marks the lag ending).
            def resumed() -> None:
                ctx.wm.switch_to(self)
                token.complete(ctx.now())

            ctx.post_work("resume", RENDER_WORK_CYCLES * 2, resumed)
            return

        # Cold start: the splash appears immediately, stages update it,
        # and on_launched lands on the final screen at completion time.
        self._pre_launch_view = self._view
        self._view = self.loading_view()
        ctx.wm.switch_to(self)

        def stage_done(index: int) -> None:
            self.on_launch_stage(index)
            ctx.invalidate()

        def all_done() -> None:
            self.launched = True
            self.on_launched()
            ctx.invalidate()
            token.complete(ctx.now())

        ctx.run_stages("launch", self.cold_start_stages(), stage_done, all_done)

    # --- synthetic-user affordances -------------------------------------------------------

    def tap_target(self, name: str) -> Point:
        """Screen point for a named tap target (the synthetic user's eyes)."""
        raise SimulationError(f"app {self.name!r} has no tap target {name!r}")

    def swipe_target(self, name: str) -> tuple[Point, Point, int]:
        """(start, end, duration_us) for a named swipe gesture."""
        raise SimulationError(f"app {self.name!r} has no swipe target {name!r}")

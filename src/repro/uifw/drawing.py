"""Canvas drawing primitives.

Everything on the simulated screen is 8-bit grayscale.  "Text" other than
the status-bar clock is rendered as deterministic texture blocks — the
video-analysis pipeline only needs frames to be *distinct and repeatable*,
not legible.  The clock uses a real 3x5 digit font because its changing
pixels are what force mask support in the matcher (the paper's Fig. 8).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.geometry import Rect

# 3x5 bitmaps for the status-bar clock.
_DIGIT_FONT: dict[str, tuple[str, ...]] = {
    "0": ("111", "101", "101", "101", "111"),
    "1": ("010", "110", "010", "010", "111"),
    "2": ("111", "001", "111", "100", "111"),
    "3": ("111", "001", "111", "001", "111"),
    "4": ("101", "101", "111", "001", "001"),
    "5": ("111", "100", "111", "001", "111"),
    "6": ("111", "100", "111", "101", "111"),
    "7": ("111", "001", "010", "010", "010"),
    "8": ("111", "101", "111", "101", "111"),
    "9": ("111", "101", "111", "001", "111"),
    ":": ("000", "010", "000", "010", "000"),
}

_texture_cache: dict[tuple[str, int, int], np.ndarray] = {}


def texture(key: str, width: int, height: int) -> np.ndarray:
    """A deterministic pseudo-random texture for ``key``.

    The same key always produces the same pixels, across runs and Python
    processes, so screens containing it are repeatable between workload
    executions — the property the matcher relies on.
    """
    cache_key = (key, width, height)
    cached = _texture_cache.get(cache_key)
    if cached is not None:
        return cached
    seed = zlib.crc32(key.encode("utf-8"))
    rng = np.random.default_rng(seed)
    block = rng.integers(32, 224, size=(height, width), dtype=np.int64).astype(
        np.uint8
    )
    _texture_cache[cache_key] = block
    return block


class Canvas:
    """Thin drawing wrapper over a numpy framebuffer slice."""

    def __init__(self, buffer: np.ndarray) -> None:
        self._buffer = buffer
        self.height, self.width = buffer.shape

    @property
    def buffer(self) -> np.ndarray:
        return self._buffer

    def _clip(self, rect: Rect) -> Rect:
        return rect.clamped_to(Rect(0, 0, self.width, self.height))

    def _clip_bounds(self, rect: Rect) -> tuple[int, int, int, int]:
        """Clipped ``(x0, y0, x1, y1)`` as plain ints.

        The draw primitives run once per widget per compose; computing the
        clip arithmetically avoids two Rect allocations per call that
        :meth:`_clip` would pay.
        """
        x0 = rect.x
        y0 = rect.y
        x1 = x0 + rect.w
        y1 = y0 + rect.h
        if x0 < 0:
            x0 = 0
        if y0 < 0:
            y0 = 0
        if x1 > self.width:
            x1 = self.width
        if y1 > self.height:
            y1 = self.height
        return x0, y0, x1, y1

    def fill(self, value: int) -> None:
        self._buffer[:, :] = value

    def fill_rect(self, rect: Rect, value: int) -> None:
        x0, y0, x1, y1 = self._clip_bounds(rect)
        if x1 > x0 and y1 > y0:
            self._buffer[y0:y1, x0:x1] = value

    def frame_rect(self, rect: Rect, value: int) -> None:
        """A 1-px border."""
        x0, y0, x1, y1 = self._clip_bounds(rect)
        if x1 <= x0 or y1 <= y0:
            return
        buffer = self._buffer
        buffer[y0, x0:x1] = value
        buffer[y1 - 1, x0:x1] = value
        buffer[y0:y1, x0] = value
        buffer[y0:y1, x1 - 1] = value

    def blit_texture(self, rect: Rect, key: str) -> None:
        """Draw the deterministic texture for ``key`` into ``rect``."""
        x0, y0, x1, y1 = self._clip_bounds(rect)
        if x1 <= x0 or y1 <= y0:
            return
        block = texture(key, rect.w, rect.h)
        self._buffer[y0:y1, x0:x1] = block[
            y0 - rect.y : y1 - rect.y, x0 - rect.x : x1 - rect.x
        ]

    def draw_digits(self, x: int, y: int, text: str, value: int = 255) -> Rect:
        """Render clock-style digits with the 3x5 font; returns the bounds."""
        cursor = x
        for char in text:
            bitmap = _DIGIT_FONT.get(char)
            if bitmap is None:
                cursor += 4
                continue
            for row, bits in enumerate(bitmap):
                for col, bit in enumerate(bits):
                    if bit == "1":
                        px, py = cursor + col, y + row
                        if 0 <= px < self.width and 0 <= py < self.height:
                            self._buffer[py, px] = value
            cursor += 4
        return Rect(x, y, cursor - x, 5)


def digits_bounds(x: int, y: int, text: str) -> Rect:
    """Bounds :meth:`Canvas.draw_digits` would cover, without drawing."""
    return Rect(x, y, 4 * len(text), 5)

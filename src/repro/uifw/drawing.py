"""Canvas drawing primitives.

Everything on the simulated screen is 8-bit grayscale.  "Text" other than
the status-bar clock is rendered as deterministic texture blocks — the
video-analysis pipeline only needs frames to be *distinct and repeatable*,
not legible.  The clock uses a real 3x5 digit font because its changing
pixels are what force mask support in the matcher (the paper's Fig. 8).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.geometry import Rect

# 3x5 bitmaps for the status-bar clock.
_DIGIT_FONT: dict[str, tuple[str, ...]] = {
    "0": ("111", "101", "101", "101", "111"),
    "1": ("010", "110", "010", "010", "111"),
    "2": ("111", "001", "111", "100", "111"),
    "3": ("111", "001", "111", "001", "111"),
    "4": ("101", "101", "111", "001", "001"),
    "5": ("111", "100", "111", "001", "111"),
    "6": ("111", "100", "111", "101", "111"),
    "7": ("111", "001", "010", "010", "010"),
    "8": ("111", "101", "111", "101", "111"),
    "9": ("111", "101", "111", "001", "111"),
    ":": ("000", "010", "000", "010", "000"),
}

_texture_cache: dict[tuple[str, int, int], np.ndarray] = {}


def texture(key: str, width: int, height: int) -> np.ndarray:
    """A deterministic pseudo-random texture for ``key``.

    The same key always produces the same pixels, across runs and Python
    processes, so screens containing it are repeatable between workload
    executions — the property the matcher relies on.
    """
    cache_key = (key, width, height)
    cached = _texture_cache.get(cache_key)
    if cached is not None:
        return cached
    seed = zlib.crc32(key.encode("utf-8"))
    rng = np.random.default_rng(seed)
    block = rng.integers(32, 224, size=(height, width), dtype=np.int64).astype(
        np.uint8
    )
    _texture_cache[cache_key] = block
    return block


class Canvas:
    """Thin drawing wrapper over a numpy framebuffer slice."""

    def __init__(self, buffer: np.ndarray) -> None:
        self._buffer = buffer
        self.height, self.width = buffer.shape

    @property
    def buffer(self) -> np.ndarray:
        return self._buffer

    def _clip(self, rect: Rect) -> Rect:
        return rect.clamped_to(Rect(0, 0, self.width, self.height))

    def fill(self, value: int) -> None:
        self._buffer[:, :] = value

    def fill_rect(self, rect: Rect, value: int) -> None:
        r = self._clip(rect)
        if r.area:
            self._buffer[r.y : r.bottom, r.x : r.right] = value

    def frame_rect(self, rect: Rect, value: int) -> None:
        """A 1-px border."""
        r = self._clip(rect)
        if not r.area:
            return
        self._buffer[r.y, r.x : r.right] = value
        self._buffer[r.bottom - 1, r.x : r.right] = value
        self._buffer[r.y : r.bottom, r.x] = value
        self._buffer[r.y : r.bottom, r.right - 1] = value

    def blit_texture(self, rect: Rect, key: str) -> None:
        """Draw the deterministic texture for ``key`` into ``rect``."""
        r = self._clip(rect)
        if not r.area:
            return
        block = texture(key, rect.w, rect.h)
        self._buffer[r.y : r.bottom, r.x : r.right] = block[
            r.y - rect.y : r.bottom - rect.y, r.x - rect.x : r.right - rect.x
        ]

    def draw_digits(self, x: int, y: int, text: str, value: int = 255) -> Rect:
        """Render clock-style digits with the 3x5 font; returns the bounds."""
        cursor = x
        for char in text:
            bitmap = _DIGIT_FONT.get(char)
            if bitmap is None:
                cursor += 4
                continue
            for row, bits in enumerate(bitmap):
                for col, bit in enumerate(bits):
                    if bit == "1":
                        px, py = cursor + col, y + row
                        if 0 <= px < self.width and 0 <= py < self.height:
                            self._buffer[py, px] = value
            cursor += 4
        return Rect(x, y, cursor - x, 5)


def digits_bounds(x: int, y: int, text: str) -> Rect:
    """Bounds :meth:`Canvas.draw_digits` would cover, without drawing."""
    return Rect(x, y, 4 * len(text), 5)

"""Gesture decoding: raw kernel events back into taps and swipes.

This is the framework-side consumer of ``/dev/input`` events.  Both a live
recording session and a replayed trace flow through this same decoder,
which is what guarantees replay drives the apps identically to the
original session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import events as ev
from repro.core.geometry import Point

# A contact that moves less than this is a tap, otherwise a swipe.
TAP_MAX_TRAVEL_PX = 4


@dataclass(frozen=True, slots=True)
class Tap:
    """A decoded tap gesture."""

    down_time: int
    up_time: int
    point: Point


@dataclass(frozen=True, slots=True)
class Swipe:
    """A decoded swipe gesture."""

    down_time: int
    up_time: int
    start: Point
    end: Point

    @property
    def delta_x(self) -> int:
        return self.end.x - self.start.x

    @property
    def delta_y(self) -> int:
        return self.end.y - self.start.y


Gesture = Tap | Swipe
GestureHandler = Callable[[Gesture], None]


class GestureDecoder:
    """Reassembles protocol-B event packets into gestures."""

    def __init__(self, handler: GestureHandler) -> None:
        self._handler = handler
        self._contact = False
        self._down_time = 0
        self._start: Point | None = None
        self._last: Point | None = None
        self._pending_x: int | None = None
        self._pending_y: int | None = None
        self._pending_release = False
        self.gestures_decoded = 0

    def on_event(self, event: ev.InputEvent) -> None:
        """Feed one kernel event; emits a gesture on finger-up."""
        if event.type == ev.EV_ABS:
            self._on_abs(event)
        elif event.is_syn_report():
            self._on_syn(event)

    def _on_abs(self, event: ev.InputEvent) -> None:
        if event.code == ev.ABS_MT_TRACKING_ID:
            if event.value == ev.TRACKING_ID_NONE:
                self._pending_release = True
            else:
                self._contact = True
                self._down_time = event.timestamp
                self._start = None
                self._last = None
        elif event.code == ev.ABS_MT_POSITION_X:
            self._pending_x = event.value
        elif event.code == ev.ABS_MT_POSITION_Y:
            self._pending_y = event.value

    def _on_syn(self, event: ev.InputEvent) -> None:
        if self._contact and self._pending_x is not None and self._pending_y is not None:
            point = Point(self._pending_x, self._pending_y)
            if self._start is None:
                self._start = point
            self._last = point
        self._pending_x = None
        self._pending_y = None
        if self._pending_release:
            self._pending_release = False
            self._finish(event.timestamp)

    def _finish(self, up_time: int) -> None:
        self._contact = False
        start, last = self._start, self._last
        self._start = None
        self._last = None
        if start is None or last is None:
            return  # release without any position: ignore
        self.gestures_decoded += 1
        if start.distance_to(last) <= TAP_MAX_TRAVEL_PX:
            gesture: Gesture = Tap(self._down_time, up_time, start)
        else:
            gesture = Swipe(self._down_time, up_time, start, last)
        self._handler(gesture)

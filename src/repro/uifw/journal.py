"""Ground-truth journal of interactions.

The journal records, device-side, when each gesture was handled and when
the app *semantically* finished servicing it.  It plays the role of the
human in the paper's annotation step (part A of Fig. 4): the AutoAnnotator
uses it to pick the correct suggester candidate, once per workload.  The
matcher — the fully automatic part — never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import SimulationError


@dataclass(slots=True)
class GestureNote:
    """One decoded gesture as the framework saw it."""

    index: int
    kind: str  # "tap" | "swipe"
    down_time: int
    consumed: bool = False


@dataclass(slots=True)
class InteractionRecord:
    """One serviced interaction: begin at input, end at semantic completion.

    ``mask_rects`` snapshots the screen regions that vary between runs
    (status-bar clock, widgets, blinking cursors) at completion time; the
    AutoAnnotator turns them into the annotation's image mask.
    """

    gesture_index: int
    label: str
    category: str
    begin_time: int
    end_time: int | None = None
    mask_rects: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.end_time is not None

    @property
    def duration_us(self) -> int:
        if self.end_time is None:
            raise SimulationError(f"interaction {self.label!r} never completed")
        return self.end_time - self.begin_time


class InteractionToken:
    """Handle an app uses to mark its interaction complete."""

    __slots__ = ("_journal", "_record", "_closed")

    def __init__(self, journal: "GroundTruthJournal", record: InteractionRecord):
        self._journal = journal
        self._record = record
        self._closed = False

    @property
    def record(self) -> InteractionRecord:
        return self._record

    def complete(self, now: int) -> None:
        """Mark the interaction serviced at time ``now``."""
        if self._closed:
            raise SimulationError(
                f"interaction {self._record.label!r} completed twice"
            )
        self._closed = True
        self._record.end_time = now
        self._record.mask_rects = self._journal.capture_mask()
        if self._journal.completion_listener is not None:
            self._journal.completion_listener(self._record)


class GroundTruthJournal:
    """Per-run record of gestures and the interactions they triggered."""

    def __init__(self) -> None:
        self.gestures: list[GestureNote] = []
        self.interactions: list[InteractionRecord] = []
        self._current_gesture: GestureNote | None = None
        #: set by the window manager; returns the dynamic-region rects.
        self.mask_provider = None
        #: set by the window manager; fires with each completed record.
        self.completion_listener = None

    def capture_mask(self) -> list:
        """Snapshot the currently dynamic screen regions."""
        if self.mask_provider is None:
            return []
        return list(self.mask_provider())

    # --- framework-side hooks ------------------------------------------------------

    def note_gesture(self, kind: str, down_time: int) -> GestureNote:
        note = GestureNote(index=len(self.gestures), kind=kind, down_time=down_time)
        self.gestures.append(note)
        self._current_gesture = note
        return note

    def gesture_dispatched(self, consumed: bool) -> None:
        if self._current_gesture is not None:
            self._current_gesture.consumed = consumed
        self._current_gesture = None

    def current_down_time(self) -> int:
        """Finger-down time of the gesture being dispatched (= lag begin)."""
        if self._current_gesture is None:
            raise SimulationError("no gesture is being dispatched")
        return self._current_gesture.down_time

    # --- app-side hooks -----------------------------------------------------------

    def open_interaction(
        self, label: str, category: str, begin_time: int
    ) -> InteractionToken:
        """Open an interaction for the gesture currently being dispatched."""
        if self._current_gesture is None:
            raise SimulationError(
                f"interaction {label!r} opened outside gesture dispatch"
            )
        gesture_index = self._current_gesture.index
        for existing in reversed(self.interactions):
            if existing.gesture_index == gesture_index:
                raise SimulationError(
                    f"gesture {gesture_index} already has an interaction "
                    f"({existing.label!r})"
                )
        record = InteractionRecord(
            gesture_index=gesture_index,
            label=label,
            category=category,
            begin_time=begin_time,
        )
        self.interactions.append(record)
        return InteractionToken(self, record)

    # --- queries -------------------------------------------------------------------

    def completed_interactions(self) -> list[InteractionRecord]:
        return [r for r in self.interactions if r.complete]

    def spurious_gesture_indices(self) -> list[int]:
        """Gestures that triggered no interaction (the paper's spurious lags)."""
        with_interaction = {r.gesture_index for r in self.interactions}
        return [g.index for g in self.gestures if g.index not in with_interaction]

"""Views and the window manager.

The window manager is the glue between the device and the apps: it decodes
input events into gestures, dispatches them to the foreground app (or the
navigation bar), composes the foreground view plus status bar into the
framebuffer on vsync, and keeps the ground-truth journal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.core.geometry import Point, Rect
from repro.core.simtime import MICROS_PER_MINUTE
from repro.metrics.hci import CATEGORY_SIMPLE
from repro.uifw.drawing import Canvas
from repro.uifw.gestures import Gesture, GestureDecoder, Swipe, Tap
from repro.uifw.journal import GroundTruthJournal
from repro.uifw.widgets import StatusBar, Widget

if TYPE_CHECKING:
    from repro.device.device import Device
    from repro.uifw.app import App

NAV_BAR_HEIGHT = 10
ANIMATION_TICK_US = 100_000

# Deferred work an interaction leaves behind once the UI is responsive
# again (caching, thumbnailing, analytics).  Runs at background priority,
# so it never extends a lag — it is the post-lag load the paper's first
# ondemand inefficiency is about.
AFTERMATH_CYCLES = {
    "typing": 150e6,
    "simple_frequent": 500e6,
    "common": 900e6,
    "complex": 1_400e6,
}


class View:
    """A screen of widgets; the last widget in the list draws on top."""

    def __init__(self, name: str, background: int = 0) -> None:
        self.name = name
        self.background = background
        self.widgets: list[Widget] = []
        self.on_swipe: Callable[[Swipe], bool] | None = None

    def add(self, widget: Widget) -> Widget:
        self.widgets.append(widget)
        return widget

    def draw(self, canvas: Canvas, now: int) -> None:
        for widget in self.widgets:
            widget.draw(canvas, now)

    def dispatch_tap(self, tap: Tap) -> bool:
        """Deliver a tap to the topmost widget that claims it."""
        for widget in reversed(self.widgets):
            if widget.hit_test(tap.point) and widget.on_tap is not None:
                widget.on_tap(tap.point)
                return True
        return False

    def dispatch_swipe(self, swipe: Swipe) -> bool:
        if self.on_swipe is not None:
            return self.on_swipe(swipe)
        return False


class WindowManager:
    """Owns the foreground app, composition and gesture routing."""

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.engine: Engine = device.engine
        self.journal = GroundTruthJournal()
        self.status_bar = StatusBar(device.display.width)
        self.nav_bar_rect = Rect(
            0,
            device.display.height - NAV_BAR_HEIGHT,
            device.display.width,
            NAV_BAR_HEIGHT,
        )
        self._apps: dict[str, "App"] = {}
        self._foreground: "App | None" = None
        self._home_app: "App | None" = None
        self._decoder = GestureDecoder(self._on_gesture)
        device.touchscreen.node.add_observer(self._decoder.on_event)
        device.display.set_composer(self._compose)
        self.journal.mask_provider = self._dynamic_regions
        self.journal.completion_listener = self._on_interaction_complete
        self._animation_holds = 0
        self._animation_scheduled = False
        self._schedule_minute_tick()

    # --- app lifecycle ----------------------------------------------------------

    @property
    def foreground(self) -> "App | None":
        return self._foreground

    def install(self, app: "App", home: bool = False) -> None:
        from repro.uifw.app import AppContext

        if app.name in self._apps:
            raise SimulationError(f"app {app.name!r} already installed")
        self._apps[app.name] = app
        app.attach(AppContext(self, app))
        if home:
            self._home_app = app
            self._foreground = app
            self.invalidate()

    def app(self, name: str) -> "App":
        try:
            return self._apps[name]
        except KeyError:
            raise SimulationError(f"no app named {name!r}") from None

    def apps(self) -> list["App"]:
        return list(self._apps.values())

    def switch_to(self, app: "App") -> None:
        """Bring an app to the foreground (used by launcher and nav)."""
        if app.name not in self._apps:
            raise SimulationError(f"app {app.name!r} not installed")
        self._foreground = app
        self.invalidate()

    def go_home(self) -> None:
        if self._home_app is None:
            raise SimulationError("no home app installed")
        self.switch_to(self._home_app)

    # --- composition ---------------------------------------------------------------

    def invalidate(self) -> None:
        self.device.display.invalidate()

    def _compose(self, framebuffer) -> None:
        canvas = Canvas(framebuffer)
        now = self.engine.now
        app = self._foreground
        canvas.fill(app.view.background if app is not None else 0)
        if app is not None:
            app.view.draw(canvas, now)
        self.status_bar.draw(canvas, now)
        self._draw_nav_bar(canvas)

    def _draw_nav_bar(self, canvas: Canvas) -> None:
        canvas.fill_rect(self.nav_bar_rect, 20)
        back, home = self._nav_targets()
        canvas.fill_rect(Rect(back.x - 2, back.y - 2, 5, 5), 160)
        canvas.frame_rect(Rect(home.x - 3, home.y - 2, 7, 5), 160)

    def _nav_targets(self) -> tuple[Point, Point]:
        """Screen points of the back and home buttons."""
        y = self.nav_bar_rect.y + self.nav_bar_rect.h // 2
        return (
            Point(self.device.display.width // 4, y),
            Point(self.device.display.width // 2, y),
        )

    def _on_interaction_complete(self, record) -> None:
        from repro.kernel.workchains import submit_chunked

        cycles = AFTERMATH_CYCLES.get(record.category)
        if cycles:
            submit_chunked(
                self.engine,
                self.device.scheduler,
                f"aftermath:{record.label}",
                cycles,
            )

    def _dynamic_regions(self) -> list[Rect]:
        """Regions that vary between runs: clock + app dynamics."""
        regions = [self.status_bar.clock_rect]
        if self._foreground is not None:
            regions.extend(self._foreground.dynamic_regions())
        return regions

    def home_button_point(self) -> Point:
        return self._nav_targets()[1]

    def back_button_point(self) -> Point:
        return self._nav_targets()[0]

    # --- animation support ------------------------------------------------------------

    def hold_animation(self) -> None:
        """Keep composing frames periodically (spinners, cursors)."""
        self._animation_holds += 1
        self._ensure_animation_tick()

    def release_animation(self) -> None:
        if self._animation_holds <= 0:
            raise SimulationError("release_animation without matching hold")
        self._animation_holds -= 1

    def _ensure_animation_tick(self) -> None:
        if self._animation_scheduled or self._animation_holds == 0:
            return
        self._animation_scheduled = True
        self.engine.schedule_after(ANIMATION_TICK_US, self._animation_tick)

    def _animation_tick(self) -> None:
        self._animation_scheduled = False
        if self._animation_holds > 0:
            self.invalidate()
            self._ensure_animation_tick()

    def _schedule_minute_tick(self) -> None:
        now = self.engine.now
        next_minute = (now // MICROS_PER_MINUTE + 1) * MICROS_PER_MINUTE
        self.engine.schedule_at(next_minute, self._minute_tick)

    def _minute_tick(self) -> None:
        self.invalidate()  # the status-bar clock changed
        self._schedule_minute_tick()

    # --- gesture routing -----------------------------------------------------------------

    def _on_gesture(self, gesture: Gesture) -> None:
        kind = "tap" if isinstance(gesture, Tap) else "swipe"
        self.journal.note_gesture(kind, gesture.down_time)
        consumed = self._dispatch(gesture)
        self.journal.gesture_dispatched(consumed)

    def _dispatch(self, gesture: Gesture) -> bool:
        if isinstance(gesture, Tap) and self.nav_bar_rect.contains(gesture.point):
            return self._dispatch_nav(gesture)
        app = self._foreground
        if app is None:
            return False
        return app.handle_gesture(gesture)

    def _dispatch_nav(self, tap: Tap) -> bool:
        back, home = self._nav_targets()
        app = self._foreground
        if tap.point.distance_to(home) <= 4:
            if app is not None and app is not self._home_app:
                token = self.journal.open_interaction(
                    "nav:home", CATEGORY_SIMPLE, tap.down_time
                )
                app_home = self._home_app
                assert app_home is not None
                # The switch happens when the render completes, inside
                # service_navigation, so the lag ends on a visual change.
                app_home.service_navigation(token)
            return True
        if tap.point.distance_to(back) <= 4:
            if app is not None and app is not self._home_app:
                token = self.journal.open_interaction(
                    "nav:back", CATEGORY_SIMPLE, tap.down_time
                )
                if not app.on_back(token):
                    app_home = self._home_app
                    assert app_home is not None
                    app_home.service_navigation(token)
            return True
        return False

"""Widgets: the building blocks of app screens."""

from __future__ import annotations

from typing import Callable

from repro.core.geometry import Point, Rect
from repro.core.simtime import MICROS_PER_MINUTE
from repro.uifw.drawing import Canvas, digits_bounds

STATUS_BAR_HEIGHT = 8
CURSOR_BLINK_PERIOD_US = 500_000


class Widget:
    """Base widget: a rectangle that can draw itself and take taps."""

    def __init__(self, rect: Rect, name: str = "") -> None:
        self.rect = rect
        self.name = name
        self.visible = True
        self.on_tap: Callable[[Point], None] | None = None

    def draw(self, canvas: Canvas, now: int) -> None:
        """Render into the canvas; ``now`` enables time-varying widgets."""

    def hit_test(self, point: Point) -> bool:
        return self.visible and self.rect.contains(point)


class Label(Widget):
    """A block of static 'text' rendered as a deterministic texture."""

    def __init__(self, rect: Rect, text: str) -> None:
        super().__init__(rect, name=f"label:{text}")
        self.text = text

    def draw(self, canvas: Canvas, now: int) -> None:
        if self.visible:
            canvas.blit_texture(self.rect, f"label:{self.text}")


class TextureBlock(Widget):
    """Arbitrary content block (image thumbnail, article body, …)."""

    def __init__(self, rect: Rect, key: str) -> None:
        super().__init__(rect, name=f"texture:{key}")
        self.key = key

    def draw(self, canvas: Canvas, now: int) -> None:
        if self.visible:
            canvas.blit_texture(self.rect, self.key)


class Icon(Widget):
    """A tappable launcher/app icon."""

    def __init__(self, rect: Rect, label: str) -> None:
        super().__init__(rect, name=f"icon:{label}")
        self.label = label

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        canvas.blit_texture(self.rect.inset(1), f"icon:{self.label}")
        canvas.frame_rect(self.rect, 200)


class Button(Widget):
    """A framed tappable button."""

    def __init__(self, rect: Rect, label: str) -> None:
        super().__init__(rect, name=f"button:{label}")
        self.label = label
        self.enabled = True

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        fill = 90 if self.enabled else 40
        canvas.fill_rect(self.rect, fill)
        canvas.frame_rect(self.rect, 230)
        canvas.blit_texture(self.rect.inset(2), f"button:{self.label}")

    def hit_test(self, point: Point) -> bool:
        return self.enabled and super().hit_test(point)


class ProgressBar(Widget):
    """A determinate progress bar (0.0 … 1.0)."""

    def __init__(self, rect: Rect, name: str = "progress") -> None:
        super().__init__(rect, name=name)
        self.fraction = 0.0

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        canvas.fill_rect(self.rect, 30)
        canvas.frame_rect(self.rect, 200)
        filled = int(max(0.0, min(1.0, self.fraction)) * (self.rect.w - 2))
        if filled > 0:
            inner = Rect(self.rect.x + 1, self.rect.y + 1, filled, self.rect.h - 2)
            canvas.fill_rect(inner, 220)


class Spinner(Widget):
    """An indeterminate activity spinner; animates while active.

    The animation keeps successive frames different, so a lag that ends
    when the spinner disappears is found by the suggester as the first
    frame of the following still period — exactly the paper's Gallery
    example.
    """

    def __init__(self, rect: Rect, name: str = "spinner") -> None:
        super().__init__(rect, name=name)
        self.active = False

    def draw(self, canvas: Canvas, now: int) -> None:
        if not (self.visible and self.active):
            return
        phase = (now // 100_000) % 4
        canvas.fill_rect(self.rect, 25)
        w, h = self.rect.w // 2, self.rect.h // 2
        quadrant = [
            Rect(self.rect.x, self.rect.y, w, h),
            Rect(self.rect.x + w, self.rect.y, self.rect.w - w, h),
            Rect(self.rect.x + w, self.rect.y + h, self.rect.w - w, self.rect.h - h),
            Rect(self.rect.x, self.rect.y + h, w, self.rect.h - h),
        ][phase]
        canvas.fill_rect(quadrant, 240)


class StatusBar(Widget):
    """The always-on-top bar with a live HH:MM clock.

    The clock changes every simulated minute, which is why every workload
    annotation needs a status-bar mask — the paper's Fig. 8 scenario.
    """

    def __init__(self, screen_width: int) -> None:
        super().__init__(Rect(0, 0, screen_width, STATUS_BAR_HEIGHT), "statusbar")
        self._clock_x = screen_width - 21
        self._clock_y = 1

    @property
    def clock_rect(self) -> Rect:
        """The region the clock digits occupy (what annotations mask)."""
        return digits_bounds(self._clock_x, self._clock_y, "00:00")

    def draw(self, canvas: Canvas, now: int) -> None:
        canvas.fill_rect(self.rect, 15)
        total_minutes = (now // MICROS_PER_MINUTE) % (24 * 60)
        hours, mins = divmod(total_minutes, 60)
        canvas.draw_digits(
            self._clock_x, self._clock_y, f"{hours:02d}:{mins:02d}", 230
        )


class ListView(Widget):
    """A vertically scrollable list of texture rows."""

    def __init__(
        self,
        rect: Rect,
        item_keys: list[str],
        item_height: int,
        name: str = "list",
    ) -> None:
        super().__init__(rect, name=name)
        self.item_keys = list(item_keys)
        self.item_height = item_height
        self.scroll_px = 0
        self.on_item_tap: Callable[[int], None] | None = None

    @property
    def max_scroll(self) -> int:
        content = len(self.item_keys) * self.item_height
        return max(0, content - self.rect.h)

    def scroll_by(self, delta_px: int) -> int:
        """Scroll and return the clamped distance actually moved."""
        target = max(0, min(self.max_scroll, self.scroll_px + delta_px))
        moved = target - self.scroll_px
        self.scroll_px = target
        return moved

    def item_at(self, point: Point) -> int | None:
        """Index of the item under a screen point, if any."""
        if not self.rect.contains(point):
            return None
        offset = point.y - self.rect.y + self.scroll_px
        index = offset // self.item_height
        if 0 <= index < len(self.item_keys):
            return index
        return None

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        canvas.fill_rect(self.rect, 10)
        first = self.scroll_px // self.item_height
        y = self.rect.y - (self.scroll_px % self.item_height)
        index = first
        while y < self.rect.bottom and index < len(self.item_keys):
            row = Rect(self.rect.x, y, self.rect.w, self.item_height - 1)
            clipped = row.clamped_to(self.rect)
            if clipped.area:
                canvas.blit_texture(clipped, f"{self.name}:{self.item_keys[index]}")
            y += self.item_height
            index += 1


class TextField(Widget):
    """A text entry with typed-content texture and a blinking cursor.

    The blinking cursor is the paper's example of why the suggester needs
    a pixel-difference tolerance: without it every blink starts a new
    still period.
    """

    def __init__(self, rect: Rect, name: str = "textfield") -> None:
        super().__init__(rect, name=name)
        self.content = ""
        self.focused = False

    @property
    def cursor_rect(self) -> Rect:
        x = self.rect.x + 2 + min(len(self.content), self.rect.w - 6)
        return Rect(x, self.rect.y + 2, 2, max(1, self.rect.h - 4))

    def append(self, char: str) -> None:
        self.content += char

    def clear(self) -> None:
        self.content = ""

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        canvas.fill_rect(self.rect, 35)
        canvas.frame_rect(self.rect, 180)
        if self.content:
            text_w = min(len(self.content), self.rect.w - 6)
            if text_w > 0:
                text_rect = Rect(
                    self.rect.x + 2, self.rect.y + 2, text_w, self.rect.h - 4
                )
                canvas.blit_texture(text_rect, f"{self.name}:{self.content}")
        if self.focused and (now // CURSOR_BLINK_PERIOD_US) % 2 == 0:
            canvas.fill_rect(self.cursor_rect, 250)


class Keyboard(Widget):
    """A 4-row on-screen keyboard."""

    ROWS = ("qwertyuiop", "asdfghjkl", "zxcvbnm", " ")

    def __init__(self, screen_width: int, screen_height: int) -> None:
        height = 36
        super().__init__(
            Rect(0, screen_height - height, screen_width, height), "keyboard"
        )
        self._key_rects: dict[str, Rect] = {}
        row_h = height // len(self.ROWS)
        for row_idx, row in enumerate(self.ROWS):
            key_w = screen_width // len(row)
            for col, char in enumerate(row):
                self._key_rects[char] = Rect(
                    col * key_w,
                    self.rect.y + row_idx * row_h,
                    key_w,
                    row_h,
                )

    def key_rect(self, char: str) -> Rect:
        """Where a character's key is (for the synthetic user to aim at)."""
        return self._key_rects[char]

    def key_at(self, point: Point) -> str | None:
        if not self.rect.contains(point):
            return None
        for char, rect in self._key_rects.items():
            if rect.contains(point):
                return char
        return None

    def draw(self, canvas: Canvas, now: int) -> None:
        if not self.visible:
            return
        canvas.fill_rect(self.rect, 50)
        for char, rect in self._key_rects.items():
            canvas.frame_rect(rect, 120)

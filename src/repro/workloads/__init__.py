"""Workload synthesis: the study's datasets as recordable user sessions."""

from repro.workloads.datasets import (
    DATASETS,
    DatasetSpec,
    check_recording,
    dataset,
    dataset_names,
    register_dataset,
    unregister_dataset,
)
from repro.workloads.sessions import PlanStep, ScriptedUser

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "check_recording",
    "dataset",
    "dataset_names",
    "register_dataset",
    "unregister_dataset",
    "PlanStep",
    "ScriptedUser",
]

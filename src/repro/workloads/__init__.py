"""Workload synthesis: the study's datasets as recordable user sessions."""

from repro.workloads.datasets import (
    DATASETS,
    DatasetSpec,
    dataset,
    dataset_names,
)
from repro.workloads.sessions import PlanStep, ScriptedUser

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset",
    "dataset_names",
    "PlanStep",
    "ScriptedUser",
]

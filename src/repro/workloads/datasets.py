"""The study's workloads (Table I) as scripted-user plans.

Each dataset is a seeded generator of :class:`PlanStep`; the recording
harness runs it against the simulated device until the dataset duration is
reached.  Event counts are tuned to land near the paper's Fig. 10 numbers
(68 / 149 / 76 / 114 / 83 inputs for datasets 01-05 and 218 for the
24-hour workload), including a small share of spurious inputs (taps that
hit nothing).

| Dataset | Table I description                                  |
|---------|------------------------------------------------------|
| 01      | Image manipulation with Gallery application.          |
| 02      | Logo Quiz game.                                       |
| 03      | Pulse News widget and multimedia text messaging.      |
| 04      | Movie Studio video creation.                          |
| 05      | Pulse News application.                               |
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Iterator

from repro.core.errors import WorkloadError
from repro.core.simtime import hours, minutes, seconds
from repro.workloads.sessions import KIND_SWIPE, KIND_TAP, PlanStep

ANSWER_WORDS = ("cola", "star", "apple", "shell", "nike", "ford", "jeep", "visa")


def _tap(app: str, target: str, think_us: int) -> PlanStep:
    return PlanStep(KIND_TAP, app, target, think_us)


def _swipe(app: str, target: str, think_us: int) -> PlanStep:
    return PlanStep(KIND_SWIPE, app, target, think_us)


def _think(rng: Random, low_s: float, high_s: float) -> int:
    return int(rng.uniform(low_s, high_s) * 1_000_000)


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """One workload: name, description, duration and plan factory.

    ``target_inputs`` is the tuned event count the recording should land
    near (``None`` for synthesized scenarios, whose counts are emergent);
    ``profile`` names the device profile the workload records and
    replays on (see :mod:`repro.scenarios.profiles`).
    """

    name: str
    description: str
    duration_us: int
    plan_factory: Callable[[Random], Iterator[PlanStep]]
    target_inputs: int | None = None
    profile: str = "stock"

    def plan(self, rng: Random) -> Iterator[PlanStep]:
        return self.plan_factory(rng)


# --- dataset 01: Gallery image manipulation -------------------------------------------


def _plan_dataset01(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:gallery", _think(rng, 1.5, 3.0))
    album = -1
    while True:
        album = (album + rng.randint(1, 3)) % 8
        yield _tap("gallery", f"album:{album}", _think(rng, 4.0, 8.0))
        photo = rng.randint(0, 5)
        yield _tap("gallery", f"photo:{photo}", _think(rng, 3.0, 6.0))
        for _ in range(rng.randint(0, 2)):
            yield _swipe("gallery", "flip-next", _think(rng, 5.0, 10.0))
        yield _tap("gallery", "btn:edit", _think(rng, 4.0, 8.0))
        yield _tap("gallery", "btn:filter", _think(rng, 4.0, 8.0))
        if rng.random() < 0.35:
            yield _tap("gallery", "btn:filter", _think(rng, 4.0, 8.0))
        yield _tap("gallery", "btn:save", _think(rng, 4.0, 7.0))
        if rng.random() < 0.3:
            yield _tap("gallery", "dead", _think(rng, 1.0, 2.0))
        # Admire the saved result, then back out to the albums overview.
        yield _tap("gallery", "nav:back", _think(rng, 8.0, 15.0))
        yield _tap("gallery", "nav:back", _think(rng, 2.0, 4.0))
        yield _tap("gallery", "nav:back", _think(rng, 2.0, 4.0))


# --- dataset 02: Logo Quiz ------------------------------------------------------------


def _plan_dataset02(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:logoquiz", _think(rng, 1.5, 3.0))
    yield _tap("logoquiz", "btn:play", _think(rng, 1.5, 3.0))
    level = rng.randint(0, 8)
    yield _tap("logoquiz", f"level:{level}", _think(rng, 1.2, 2.5))
    while True:
        word = rng.choice(ANSWER_WORDS)
        # Puzzle over the logo, then type the answer.
        first_think = _think(rng, 7.0, 13.0)
        for position, char in enumerate(word):
            think = first_think if position == 0 else _think(rng, 1.1, 2.4)
            yield _tap("logoquiz", f"key:{char}", think)
        if rng.random() < 0.35:
            yield _tap("logoquiz", "dead", _think(rng, 0.8, 1.6))
        yield _tap("logoquiz", "btn:check", _think(rng, 1.4, 2.8))
        if rng.random() < 0.18:
            # Back out to pick another level.
            yield _tap("logoquiz", "nav:back", _think(rng, 1.5, 3.0))
            level = rng.randint(0, 8)
            yield _tap("logoquiz", f"level:{level}", _think(rng, 1.2, 2.5))


# --- dataset 03: Pulse widget + multimedia messaging ------------------------------------


def _plan_dataset03(rng: Random) -> Iterator[PlanStep]:
    while True:
        # Glance at the widget, open Pulse from it, read an article.
        yield _tap("launcher", "widget", _think(rng, 4.0, 8.0))
        story_base = rng.randint(0, 3)
        yield _tap("pulse", f"story:{story_base}", _think(rng, 3.0, 6.0))
        yield _tap("pulse", "nav:back", _think(rng, 25.0, 45.0))
        yield _tap("pulse", "nav:home", _think(rng, 2.0, 4.0))
        # Then answer a text message with a picture.
        yield _tap("launcher", "icon:messaging", _think(rng, 3.0, 6.0))
        thread = rng.randint(0, 7)
        yield _tap("messaging", f"thread:{thread}", _think(rng, 2.5, 5.0))
        word = rng.choice(ANSWER_WORDS)
        for position, char in enumerate(word):
            think = (
                _think(rng, 4.0, 8.0) if position == 0 else _think(rng, 1.2, 2.5)
            )
            yield _tap("messaging", f"key:{char}", think)
        yield _tap("messaging", "btn:attach", _think(rng, 2.0, 4.0))
        yield _tap("messaging", f"pick:{rng.randint(0, 5)}", _think(rng, 2.5, 5.0))
        if rng.random() < 0.35:
            yield _tap("messaging", "dead", _think(rng, 0.8, 1.5))
        yield _tap("messaging", "btn:send", _think(rng, 1.5, 3.0))
        # Wait around for a reply before checking the news again.
        yield _tap("messaging", "nav:home", _think(rng, 15.0, 25.0))


# --- dataset 04: Movie Studio ------------------------------------------------------------


def _plan_dataset04(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:moviestudio", _think(rng, 1.5, 3.0))
    clips = 0
    selected = -1
    while True:
        if clips < 6:
            yield _tap("moviestudio", "btn:addclip", _think(rng, 1.5, 3.0))
            clips += 1
        # Fiddle with the timeline: frequent cheap selection taps.
        for _ in range(rng.randint(2, 4)):
            choice = rng.randrange(clips)
            if choice == selected:
                choice = (choice + 1) % clips
            if choice == selected:
                continue  # only one clip so far and already selected
            selected = choice
            yield _tap("moviestudio", f"clip:{choice}", _think(rng, 1.0, 2.2))
        if rng.random() < 0.3:
            yield _tap("moviestudio", "dead", _think(rng, 0.8, 1.5))
        yield _tap("moviestudio", "btn:preview", _think(rng, 3.0, 6.5))
        if clips >= 3 and rng.random() < 0.3:
            # Watch the preview before committing to an export.
            yield _tap("moviestudio", "btn:export", _think(rng, 6.0, 12.0))


# --- dataset 05: Pulse News app -----------------------------------------------------------


def _plan_dataset05(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:pulse", _think(rng, 1.5, 3.0))
    scroll_rows = 0
    while True:
        if rng.random() < 0.25 and scroll_rows == 0:
            yield _swipe("pulse", "pull-refresh", _think(rng, 2.0, 4.5))
        swipes = rng.randint(1, 3)
        for _ in range(swipes):
            if scroll_rows < 12:
                yield _swipe("pulse", "scroll-up", _think(rng, 2.5, 6.0))
                scroll_rows += 8  # 112 px per swipe / 14 px rows
            else:
                yield _swipe("pulse", "scroll-down", _think(rng, 2.5, 6.0))
                scroll_rows -= 8
        visible_first = max(0, (scroll_rows * 14) // 14)
        story = min(23, visible_first + rng.randint(0, 5))
        yield _tap("pulse", f"story:{story}", _think(rng, 3.0, 6.0))
        yield _tap("pulse", "nav:back", _think(rng, 9.0, 20.0))
        if rng.random() < 0.2:
            yield _tap("pulse", "dead", _think(rng, 0.8, 1.5))


# --- the 24-hour workload -----------------------------------------------------------------


def _plan_day(rng: Random) -> Iterator[PlanStep]:
    """A day in the life: short sessions separated by long idle gaps."""
    sessions: list[Callable[[], Iterator[PlanStep]]] = [
        lambda: _burst_email(rng),
        lambda: _burst_news(rng),
        lambda: _burst_messaging(rng),
        lambda: _burst_music(rng),
        lambda: _burst_calculator(rng),
        lambda: _burst_social(rng),
    ]
    while True:
        burst = rng.choice(sessions)
        yield from burst()
        # Phone goes back in the pocket for 20-80 minutes.
        yield _tap("launcher", "dead", int(rng.uniform(20, 80) * 60e6))


def _burst_email(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:gmail", _think(rng, 2.0, 4.0))
    for _ in range(rng.randint(2, 4)):
        yield _tap("gmail", f"item:{rng.randint(0, 6)}", _think(rng, 2.0, 4.0))
        yield _tap("gmail", "nav:back", _think(rng, 5.0, 15.0))
    yield _tap("gmail", "nav:home", _think(rng, 1.0, 2.0))


def _burst_news(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "widget", _think(rng, 2.0, 4.0))
    for _ in range(rng.randint(1, 3)):
        yield _tap("pulse", f"story:{rng.randint(0, 5)}", _think(rng, 2.0, 4.0))
        yield _tap("pulse", "nav:back", _think(rng, 8.0, 20.0))
    yield _tap("pulse", "nav:home", _think(rng, 1.0, 2.0))


def _burst_messaging(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:messaging", _think(rng, 2.0, 4.0))
    yield _tap("messaging", f"thread:{rng.randint(0, 7)}", _think(rng, 1.5, 3.0))
    for char in rng.choice(ANSWER_WORDS):
        yield _tap("messaging", f"key:{char}", _think(rng, 0.5, 1.2))
    yield _tap("messaging", "btn:send", _think(rng, 1.0, 2.0))
    yield _tap("messaging", "nav:home", _think(rng, 2.0, 4.0))


def _burst_music(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:music", _think(rng, 2.0, 4.0))
    yield _tap("music", "btn:toggle", _think(rng, 1.0, 2.0))
    yield _tap("music", "nav:home", _think(rng, 1.5, 3.0))


def _burst_calculator(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:calculator", _think(rng, 2.0, 4.0))
    for char in str(rng.randint(10, 999)):
        yield _tap("calculator", f"key:{char}", _think(rng, 0.5, 1.0))
    yield _tap("calculator", "key:+", _think(rng, 0.5, 1.0))
    for char in str(rng.randint(10, 999)):
        yield _tap("calculator", f"key:{char}", _think(rng, 0.5, 1.0))
    yield _tap("calculator", "key:=", _think(rng, 0.5, 1.0))
    yield _tap("calculator", "nav:home", _think(rng, 1.5, 3.0))


def _burst_social(rng: Random) -> Iterator[PlanStep]:
    yield _tap("launcher", "icon:facebook", _think(rng, 2.0, 4.0))
    scrolled = rng.random() < 0.6
    if scrolled:
        yield _swipe("facebook", "scroll-up", _think(rng, 2.0, 5.0))
    # One 112 px swipe over 13 px rows leaves items 9..16 on screen.
    base = 9 if scrolled else 0
    yield _tap("facebook", f"item:{base + rng.randint(0, 5)}", _think(rng, 1.5, 3.0))
    yield _tap("facebook", "nav:back", _think(rng, 5.0, 12.0))
    if scrolled:
        yield _swipe("facebook", "scroll-down", _think(rng, 1.5, 3.0))
    yield _tap("facebook", "nav:home", _think(rng, 1.0, 2.0))


DATASETS: dict[str, DatasetSpec] = {
    "01": DatasetSpec(
        "01",
        "Image manipulation with Gallery application.",
        minutes(10),
        _plan_dataset01,
        target_inputs=68,
    ),
    "02": DatasetSpec(
        "02",
        "Logo Quiz game.",
        minutes(10),
        _plan_dataset02,
        target_inputs=149,
    ),
    "03": DatasetSpec(
        "03",
        "Pulse News widget and multimedia text messaging.",
        minutes(10),
        _plan_dataset03,
        target_inputs=76,
    ),
    "04": DatasetSpec(
        "04",
        "Movie Studio video creation.",
        minutes(10),
        _plan_dataset04,
        target_inputs=114,
    ),
    "05": DatasetSpec(
        "05",
        "Pulse News application.",
        minutes(10),
        _plan_dataset05,
        target_inputs=83,
    ),
    "24hour": DatasetSpec(
        "24hour",
        "A full day of mixed use with long idle periods.",
        hours(24),
        _plan_day,
        target_inputs=218,
    ),
}


# Durations above this are "day-class" workloads, excluded from the
# default sweep set and from Fig. 10's ten-minute average.
SHORT_WORKLOAD_LIMIT_US = minutes(30)

# Tolerance band for the tuned event counts: a recording whose input
# count falls outside ``target_inputs`` by more than this factor either
# way indicates a broken plan or a broken recorder.
INPUT_COUNT_TOLERANCE = 3.0


def register_dataset(spec: DatasetSpec, replace: bool = False) -> DatasetSpec:
    """Add a workload to the registry (tests, plugins, generated sets)."""
    if not replace and spec.name in DATASETS:
        raise WorkloadError(f"dataset {spec.name!r} is already registered")
    DATASETS[spec.name] = spec
    return spec


def unregister_dataset(name: str) -> None:
    DATASETS.pop(name, None)


def dataset(name: str) -> DatasetSpec:
    """Resolve a workload name: a registered dataset or a scenario string.

    Scenario strings (``persona=...,seed=...``) synthesize on the fly —
    named datasets and synthesized scenarios are interchangeable
    everywhere a dataset name is accepted.
    """
    spec = DATASETS.get(name)
    if spec is not None:
        return spec
    from repro.scenarios.config import is_scenario_name

    if is_scenario_name(name):
        from repro.scenarios.synth import synthesize_scenario

        return synthesize_scenario(name)
    known = ", ".join(sorted(DATASETS))
    raise WorkloadError(
        f"unknown dataset {name!r} (known: {known}; or a scenario string "
        "like persona=gamer,seed=7,duration=10m)"
    ) from None


def dataset_names(include_day: bool = False) -> list[str]:
    """Registered workload names, short ones first (registry-driven)."""
    names = [
        name
        for name, spec in DATASETS.items()
        if spec.duration_us <= SHORT_WORKLOAD_LIMIT_US
    ]
    if include_day:
        names.extend(
            name
            for name, spec in DATASETS.items()
            if spec.duration_us > SHORT_WORKLOAD_LIMIT_US
        )
    return names


def check_recording(spec: DatasetSpec, input_count: int, duration_us: int) -> None:
    """Validate a recording against its spec, registry-driven.

    Duration and event-count expectations come from the spec itself, not
    from a hard-coded list of the five Table I workloads, so synthesized
    scenarios (``target_inputs=None``, arbitrary durations) pass the
    same gate the tuned datasets do.
    """
    if duration_us < spec.duration_us:
        raise WorkloadError(
            f"workload {spec.name!r}: recording covers {duration_us} us, "
            f"shorter than the spec's {spec.duration_us} us"
        )
    if spec.target_inputs is None:
        return
    low = spec.target_inputs / INPUT_COUNT_TOLERANCE
    high = spec.target_inputs * INPUT_COUNT_TOLERANCE
    if not (low <= input_count <= high):
        raise WorkloadError(
            f"workload {spec.name!r}: recorded {input_count} inputs, "
            f"outside the tuned band [{low:.0f}, {high:.0f}] around "
            f"{spec.target_inputs}"
        )

"""The synthetic user that records workloads.

The paper's volunteers used the device naturally for ten minutes while the
recorder captured their input events.  Our scripted user does the same on
the simulated device: it performs gestures from a dataset plan, *watches
the screen* — i.e. waits until the current interaction has visibly
completed — thinks for a while, then acts again.

Recording runs on a device pinned at the lowest frequency.  Because the
user always waits for completion at the worst-case speed, the recorded
input timings stay in sync with the system state when replayed at *any*
frequency or governor — the synchronisation requirement of §II-E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import WorkloadError
from repro.core.geometry import Point
from repro.uifw.view import WindowManager

POLL_PERIOD_US = 50_000
SETTLE_AFTER_COMPLETION_US = 200_000

KIND_TAP = "tap"
KIND_SWIPE = "swipe"


@dataclass(frozen=True, slots=True)
class PlanStep:
    """One user action: where to touch and how long to think first.

    ``app`` and ``target`` are resolved against the live UI at act time,
    so targets that depend on runtime state (scroll offsets, keyboards)
    are looked up exactly when the user would look at the screen.
    """

    kind: str  # KIND_TAP | KIND_SWIPE
    app: str
    target: str
    think_us: int

    def __post_init__(self) -> None:
        if self.kind not in (KIND_TAP, KIND_SWIPE):
            raise WorkloadError(f"unknown step kind {self.kind!r}")
        if self.think_us < 0:
            raise WorkloadError("think time must be >= 0")


class ScriptedUser:
    """Performs a plan of steps against a device, waiting like a human."""

    def __init__(
        self,
        wm: WindowManager,
        plan: Iterator[PlanStep],
        stop_initiating_after_us: int,
    ) -> None:
        self._wm = wm
        self._device = wm.device
        self._engine = wm.engine
        self._plan = iter(plan)
        self._deadline = stop_initiating_after_us
        self._steps_done = 0
        self._finished = False
        self._on_finished = None

    @property
    def steps_performed(self) -> int:
        return self._steps_done

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self, on_finished=None) -> None:
        """Begin the session; ``on_finished`` fires when the user stops."""
        self._on_finished = on_finished
        self._next_step()

    # --- internals ----------------------------------------------------------------------

    def _next_step(self) -> None:
        if self._engine.now >= self._deadline:
            self._finish()
            return
        try:
            step = next(self._plan)
        except StopIteration:
            self._finish()
            return
        self._engine.schedule_after(step.think_us, lambda: self._act(step))

    def _act(self, step: PlanStep) -> None:
        if self._engine.now >= self._deadline:
            self._finish()
            return
        app = self._wm.app(step.app)
        now = self._engine.now
        if step.kind == KIND_TAP:
            point = self._resolve_tap(app, step.target)
            up_time = self._device.touchscreen.schedule_tap(now, point)
        else:
            start, end, duration = app.swipe_target(step.target)
            up_time = self._device.touchscreen.schedule_swipe(
                now, start, end, duration
            )
        self._steps_done += 1
        # Start watching the screen shortly after the finger lifts.
        self._engine.schedule_at(up_time + POLL_PERIOD_US, self._watch)

    def _resolve_tap(self, app, target: str) -> Point:
        """Resolve a tap target; nav-bar buttons are system targets."""
        if target == "nav:back":
            return self._wm.back_button_point()
        if target == "nav:home":
            return self._wm.home_button_point()
        return app.tap_target(target)

    def _watch(self) -> None:
        """Wait until the system looks done servicing, then move on."""
        if self._system_settled():
            self._engine.schedule_after(
                SETTLE_AFTER_COMPLETION_US, self._next_step
            )
        else:
            self._engine.schedule_after(POLL_PERIOD_US, self._watch)

    def _system_settled(self) -> bool:
        journal = self._wm.journal
        if any(not r.complete for r in journal.interactions):
            return False
        scheduler = self._device.scheduler
        current = scheduler.current_task
        foreground_busy = current is not None and current.priority == 0
        return not foreground_busy

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._on_finished is not None:
            self._on_finished()


def wait_for_quiescence(wm: WindowManager, callback, poll_us: int = POLL_PERIOD_US):
    """Fire ``callback`` once all interactions completed and FG work drained.

    Used by the harness to trim the recording after the user's last input.
    """

    def check() -> None:
        journal = wm.journal
        pending = any(not r.complete for r in journal.interactions)
        current = wm.device.scheduler.current_task
        foreground_busy = current is not None and current.priority == 0
        if pending or foreground_busy:
            wm.engine.schedule_after(poll_us, check)
        else:
            callback()

    check()

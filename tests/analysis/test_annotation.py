"""Unit tests for the annotation database."""

import numpy as np
import pytest

from repro.core.errors import AnnotationError
from repro.core.geometry import Rect
from repro.analysis.annotation import AnnotationDatabase, GestureInfo, LagAnnotation


def image(value=1):
    return np.full((8, 8), value, dtype=np.uint8)


def make_annotation(gesture=0, begin=1000, **kwargs):
    return LagAnnotation(
        gesture_index=gesture,
        label=f"lag{gesture}",
        category="common",
        begin_time_us=begin,
        image=image(),
        **kwargs,
    )


def test_annotations_sorted_by_begin_time():
    db = AnnotationDatabase("w", 8, 8)
    db.add(make_annotation(gesture=1, begin=5000))
    db.add(make_annotation(gesture=0, begin=1000))
    assert [a.gesture_index for a in db.annotations] == [0, 1]


def test_duplicate_gesture_rejected():
    db = AnnotationDatabase("w", 8, 8)
    db.add(make_annotation(gesture=0))
    with pytest.raises(AnnotationError):
        db.add(make_annotation(gesture=0, begin=9999))


def test_image_shape_must_match_screen():
    db = AnnotationDatabase("w", 16, 16)
    with pytest.raises(AnnotationError):
        db.add(make_annotation())


def test_occurrence_must_be_positive():
    with pytest.raises(AnnotationError):
        make_annotation(occurrence=0)


def test_spurious_count():
    db = AnnotationDatabase("w", 8, 8)
    for index in range(3):
        db.add_gesture(GestureInfo(index, "tap", index * 1000))
    db.add(make_annotation(gesture=1, begin=1000))
    assert db.lag_count == 1
    assert db.spurious_count == 2


def test_annotation_for_gesture():
    db = AnnotationDatabase("w", 8, 8)
    db.add(make_annotation(gesture=2, begin=100))
    assert db.annotation_for_gesture(2) is not None
    assert db.annotation_for_gesture(5) is None


def test_save_load_roundtrip(tmp_path):
    db = AnnotationDatabase("workload-x", 8, 8)
    db.add_gesture(GestureInfo(0, "tap", 500))
    db.add_gesture(GestureInfo(1, "swipe", 9_000))
    db.add(
        make_annotation(
            gesture=0,
            begin=500,
            mask_rects=[Rect(1, 2, 3, 4)],
            tolerance_px=2,
            occurrence=2,
            threshold_us=150_000,
        )
    )
    db.save(tmp_path / "db")
    loaded = AnnotationDatabase.load(tmp_path / "db")
    assert loaded.workload_name == "workload-x"
    assert [g.kind for g in loaded.gestures] == ["tap", "swipe"]
    annotation = loaded.annotations[0]
    assert annotation.mask_rects == [Rect(1, 2, 3, 4)]
    assert annotation.tolerance_px == 2
    assert annotation.occurrence == 2
    assert annotation.threshold_us == 150_000
    assert np.array_equal(annotation.image, image())


def test_load_missing_directory_rejected(tmp_path):
    with pytest.raises(AnnotationError):
        AnnotationDatabase.load(tmp_path / "nope")

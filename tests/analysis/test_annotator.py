"""Tests for the AutoAnnotator against real recorded sessions."""

import pytest

from repro.core.errors import AnnotationError
from repro.core.simtime import millis
from repro.analysis.annotator import AutoAnnotator
from repro.device.display import VSYNC_PERIOD_US
from repro.metrics.hci import SHNEIDERMAN_MODEL


def test_annotates_every_completed_interaction(gallery_session, gallery_database):
    _dev, wm, _trace, _video = gallery_session
    completed = [r for r in wm.journal.interactions if r.complete]
    assert gallery_database.lag_count == len(completed) == 3


def test_spurious_gesture_not_annotated(gallery_database):
    assert gallery_database.spurious_count == 1


def test_thresholds_follow_hci_model(gallery_database):
    for annotation in gallery_database.annotations:
        expected = SHNEIDERMAN_MODEL.threshold_us(annotation.category)
        assert annotation.threshold_us == expected


def test_threshold_overrides(gallery_session):
    _dev, wm, _trace, video = gallery_session
    annotator = AutoAnnotator(
        "w", threshold_overrides={"launcher:launch:gallery": millis(500)}
    )
    db = annotator.annotate(video, wm.journal)
    launch = [a for a in db.annotations if a.label == "launcher:launch:gallery"]
    assert launch[0].threshold_us == millis(500)


def test_chosen_frame_shows_completion(gallery_session, gallery_database):
    _dev, wm, _trace, video = gallery_session
    for annotation in gallery_database.annotations:
        record = next(
            r
            for r in wm.journal.interactions
            if r.gesture_index == annotation.gesture_index
        )
        completion_frame = record.end_time // VSYNC_PERIOD_US + 1
        # The annotation image is the screen at/after semantic completion.
        end_frame_indices = [
            idx
            for idx, _c in video.iter_frames(completion_frame, completion_frame + 1)
        ]
        assert end_frame_indices  # completion lies inside the video


def test_masks_include_the_status_bar_clock(gallery_database):
    for annotation in gallery_database.annotations:
        assert annotation.mask_rects, annotation.label
        assert any(rect.y < 8 for rect in annotation.mask_rects)


def test_begin_times_match_gesture_downs(gallery_session, gallery_database):
    _dev, wm, _trace, _video = gallery_session
    for annotation in gallery_database.annotations:
        gesture = wm.journal.gestures[annotation.gesture_index]
        assert annotation.begin_time_us == gesture.down_time


def test_incomplete_interaction_rejected(gallery_session):
    _dev, wm, _trace, video = gallery_session
    # Forge an incomplete record.
    import copy

    journal = copy.deepcopy(wm.journal)
    journal.interactions[0].end_time = None
    with pytest.raises(AnnotationError):
        AutoAnnotator("w").annotate(video, journal)


def test_manual_pick_path(gallery_session, gallery_database):
    _dev, wm, _trace, video = gallery_session
    auto = gallery_database.annotations[0]
    manual = AutoAnnotator("w").pick(
        video,
        wm.journal,
        gesture_index=auto.gesture_index,
        frame_index=auto.begin_time_us // VSYNC_PERIOD_US + 40,
        mask_rects=auto.mask_rects,
    )
    assert manual.gesture_index == auto.gesture_index
    assert manual.occurrence >= 1


def test_manual_pick_unknown_gesture_rejected(gallery_session):
    _dev, wm, _trace, video = gallery_session
    with pytest.raises(AnnotationError):
        AutoAnnotator("w").pick(video, wm.journal, gesture_index=99, frame_index=1)

"""Tests for input classification (Fig. 10)."""

from repro.analysis.classify import classify_workload, decode_gestures
from repro.uifw.gestures import Swipe, Tap


def test_decode_gestures_from_real_trace(gallery_session):
    _dev, _wm, trace, _video = gallery_session
    gestures = decode_gestures(trace)
    assert len(gestures) == 4
    assert all(isinstance(g, Tap) for g in gestures)


def test_classification_counts(gallery_session, gallery_database):
    _dev, _wm, trace, _video = gallery_session
    result = classify_workload("test", trace, gallery_database)
    assert result.taps == 4
    assert result.swipes == 0
    assert result.actual_lags == 3
    assert result.spurious_lags == 1
    assert result.total_inputs == 4


def test_as_row_shape(gallery_session, gallery_database):
    _dev, _wm, trace, _video = gallery_session
    row = classify_workload("ds", trace, gallery_database).as_row()
    assert row["dataset"] == "ds"
    assert row["total"] == row["taps"] + row["swipes"]

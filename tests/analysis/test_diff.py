"""Unit tests for frame comparison with masks and tolerance."""

import numpy as np
import pytest

from repro.core.errors import MatchError
from repro.core.geometry import Rect
from repro.analysis.diff import build_mask, diff_pixel_count, frames_equal


def test_no_mask_is_none():
    assert build_mask((8, 8), []) is None
    assert build_mask((8, 8), None) is None


def test_mask_excludes_rect():
    mask = build_mask((8, 8), [Rect(2, 2, 3, 3)])
    assert not mask[2, 2] and not mask[4, 4]
    assert mask[0, 0] and mask[5, 5]


def test_mask_clips_out_of_bounds_rects():
    mask = build_mask((8, 8), [Rect(6, 6, 10, 10)])
    assert not mask[7, 7]
    assert mask[5, 5]


def test_diff_count_basic():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = a.copy()
    b[0, 0] = 1
    b[3, 3] = 1
    assert diff_pixel_count(a, b) == 2


def test_diff_count_ignores_masked_pixels():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = a.copy()
    b[0, 0] = 1
    mask = build_mask((4, 4), [Rect(0, 0, 1, 1)])
    assert diff_pixel_count(a, b, mask) == 0


def test_shape_mismatch_rejected():
    with pytest.raises(MatchError):
        diff_pixel_count(np.zeros((2, 2)), np.zeros((3, 3)))


def test_frames_equal_identity_fast_path():
    a = np.zeros((4, 4), dtype=np.uint8)
    assert frames_equal(a, a)


def test_frames_equal_with_tolerance():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = a.copy()
    b[0, 0] = 99
    assert not frames_equal(a, b)
    assert frames_equal(a, b, tolerance_px=1)


def test_tolerance_counts_pixels_not_magnitude():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = a.copy()
    b[0, :] = 5  # four differing pixels, small magnitude
    assert not frames_equal(a, b, tolerance_px=3)
    assert frames_equal(a, b, tolerance_px=4)


def test_mask_and_tolerance_combine():
    a = np.zeros((4, 4), dtype=np.uint8)
    b = a.copy()
    b[0, 0] = 1  # masked out
    b[3, 3] = 1  # tolerated
    mask = build_mask((4, 4), [Rect(0, 0, 1, 1)])
    assert frames_equal(a, b, mask, tolerance_px=1)

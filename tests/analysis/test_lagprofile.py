"""Unit tests for lag profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.metrics.hci import SHNEIDERMAN_MODEL


def measurement(index=0, duration=500_000, threshold=1_000_000, label=None):
    return LagMeasurement(
        lag_index=index,
        gesture_index=index,
        label=label or f"lag{index}",
        category="simple_frequent",
        begin_time_us=index * 5_000_000,
        end_frame=10,
        duration_us=duration,
        threshold_us=threshold,
    )


def test_durations_ms():
    profile = LagProfile("w", (measurement(duration=250_000),))
    assert profile.durations_ms() == [250.0]


def test_irritation_uses_stored_thresholds():
    profile = LagProfile(
        "w",
        (
            measurement(0, duration=1_500_000, threshold=1_000_000),
            measurement(1, duration=400_000, threshold=1_000_000),
        ),
    )
    result = profile.irritation()
    assert result.total_us == 500_000
    assert result.irritating_lag_count == 1


def test_irritation_with_model_recomputes_from_category():
    profile = LagProfile("w", (measurement(duration=1_500_000, threshold=1),))
    result = profile.irritation(model=SHNEIDERMAN_MODEL)
    # simple_frequent threshold is 1 s, not the stored 1 us.
    assert result.total_us == 500_000


def test_irritation_with_overrides():
    profile = LagProfile("w", (measurement(duration=900_000),))
    result = profile.irritation(overrides={"lag0": 800_000})
    assert result.total_us == 100_000


def test_compare_requires_same_lag_count():
    a = LagProfile("w", (measurement(0),))
    b = LagProfile("w", (measurement(0), measurement(1)))
    with pytest.raises(ReproError):
        a.compare(b)


def test_compare_pairs_durations():
    a = LagProfile("w", (measurement(0, duration=100),))
    b = LagProfile("w", (measurement(0, duration=300),))
    assert a.compare(b) == [("lag0", 100, 300)]


def test_save_load_roundtrip(tmp_path):
    profile = LagProfile("w", (measurement(0), measurement(1)))
    path = tmp_path / "profile.json"
    profile.save(path)
    loaded = LagProfile.load(path)
    assert loaded.workload_name == "w"
    assert loaded.lags == profile.lags


# --- cause-carrying profiles ------------------------------------------------------


def breakdown(index, penalty_by_cause, window_by_cause=None):
    from repro.analysis.lagprofile import CauseBreakdown

    return CauseBreakdown(
        lag_index=index,
        window_by_cause=tuple(window_by_cause or penalty_by_cause),
        penalty_by_cause=tuple(penalty_by_cause),
    )


def test_compare_empty_profiles():
    a = LagProfile("w", ())
    b = LagProfile("w", ())
    assert a.compare(b) == []
    assert a.compare_causes(b) == []


def test_two_argument_construction_still_compares_equal():
    # Pre-attribution construction sites build profiles without the third
    # field; they must stay equal to an explicitly-unattributed profile.
    assert LagProfile("w", (measurement(0),)) == LagProfile(
        "w", (measurement(0),), ()
    )


def test_with_attribution_requires_one_breakdown_per_lag():
    profile = LagProfile("w", (measurement(0), measurement(1)))
    with pytest.raises(ReproError):
        profile.with_attribution([breakdown(0, [("at_speed", 10)])])


def test_with_attribution_requires_matching_lag_indices():
    profile = LagProfile("w", (measurement(0),))
    with pytest.raises(ReproError):
        profile.with_attribution([breakdown(7, [("at_speed", 10)])])


def test_per_cause_irritation_aggregates_over_lags():
    profile = LagProfile(
        "w", (measurement(0), measurement(1))
    ).with_attribution(
        [
            breakdown(0, [("slow_ramp", 300), ("at_speed", 100)]),
            breakdown(1, [("slow_ramp", 50)]),
        ]
    )
    assert profile.per_cause_irritation_us() == {
        "slow_ramp": 350,
        "at_speed": 100,
    }


def test_compare_causes_handles_disjoint_cause_sets():
    a = LagProfile("w", (measurement(0),)).with_attribution(
        [breakdown(0, [("late_boost", 120)])]
    )
    b = LagProfile("w", (measurement(0), measurement(1))).with_attribution(
        [breakdown(0, [("slow_ramp", 80)]), breakdown(1, [("slow_ramp", 20)])]
    )
    # Different lag counts and disjoint causes are still comparable.
    assert a.compare_causes(b) == [
        ("late_boost", 120, 0),
        ("slow_ramp", 0, 100),
    ]


def test_save_load_roundtrips_attributions(tmp_path):
    profile = LagProfile("w", (measurement(0),)).with_attribution(
        [breakdown(0, [("park_wake", 40), ("at_speed", 60)])]
    )
    path = tmp_path / "attributed.json"
    profile.save(path)
    assert LagProfile.load(path) == profile


def test_load_without_attributions_yields_unattributed_profile(tmp_path):
    profile = LagProfile("w", (measurement(0),))
    path = tmp_path / "plain.json"
    profile.save(path)
    assert LagProfile.load(path).attributions == ()


@given(
    penalties=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["late_boost", "park_wake", "slow_ramp", "at_speed"]
                ),
                st.integers(min_value=1, max_value=10_000),
            ),
            min_size=1,
            max_size=4,
            unique_by=lambda pair: pair[0],
        ),
        min_size=0,
        max_size=6,
    )
)
def test_per_cause_irritation_sums_to_run_total(penalties):
    lags = tuple(
        measurement(i, duration=1_000_000 + sum(us for _, us in per_lag),
                    threshold=1_000_000)
        for i, per_lag in enumerate(penalties)
    )
    profile = LagProfile("w", lags).with_attribution(
        [breakdown(i, per_lag) for i, per_lag in enumerate(penalties)]
    )
    run_total = profile.irritation().total_us
    assert sum(profile.per_cause_irritation_us().values()) == run_total

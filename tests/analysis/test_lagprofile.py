"""Unit tests for lag profiles."""

import pytest

from repro.core.errors import ReproError
from repro.analysis.lagprofile import LagMeasurement, LagProfile
from repro.metrics.hci import SHNEIDERMAN_MODEL


def measurement(index=0, duration=500_000, threshold=1_000_000, label=None):
    return LagMeasurement(
        lag_index=index,
        gesture_index=index,
        label=label or f"lag{index}",
        category="simple_frequent",
        begin_time_us=index * 5_000_000,
        end_frame=10,
        duration_us=duration,
        threshold_us=threshold,
    )


def test_durations_ms():
    profile = LagProfile("w", (measurement(duration=250_000),))
    assert profile.durations_ms() == [250.0]


def test_irritation_uses_stored_thresholds():
    profile = LagProfile(
        "w",
        (
            measurement(0, duration=1_500_000, threshold=1_000_000),
            measurement(1, duration=400_000, threshold=1_000_000),
        ),
    )
    result = profile.irritation()
    assert result.total_us == 500_000
    assert result.irritating_lag_count == 1


def test_irritation_with_model_recomputes_from_category():
    profile = LagProfile("w", (measurement(duration=1_500_000, threshold=1),))
    result = profile.irritation(model=SHNEIDERMAN_MODEL)
    # simple_frequent threshold is 1 s, not the stored 1 us.
    assert result.total_us == 500_000


def test_irritation_with_overrides():
    profile = LagProfile("w", (measurement(duration=900_000),))
    result = profile.irritation(overrides={"lag0": 800_000})
    assert result.total_us == 100_000


def test_compare_requires_same_lag_count():
    a = LagProfile("w", (measurement(0),))
    b = LagProfile("w", (measurement(0), measurement(1)))
    with pytest.raises(ReproError):
        a.compare(b)


def test_compare_pairs_durations():
    a = LagProfile("w", (measurement(0, duration=100),))
    b = LagProfile("w", (measurement(0, duration=300),))
    assert a.compare(b) == [("lag0", 100, 300)]


def test_save_load_roundtrip(tmp_path):
    profile = LagProfile("w", (measurement(0), measurement(1)))
    path = tmp_path / "profile.json"
    profile.save(path)
    loaded = LagProfile.load(path)
    assert loaded.workload_name == "w"
    assert loaded.lags == profile.lags

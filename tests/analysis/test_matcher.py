"""Unit tests for the matcher algorithm (paper §II-E)."""

import numpy as np
import pytest

from repro.core.errors import MatchError
from repro.core.geometry import Rect
from repro.analysis.annotation import AnnotationDatabase, GestureInfo, LagAnnotation
from repro.analysis.matcher import Matcher
from repro.capture.video import Video
from repro.device.display import VSYNC_PERIOD_US


def frame(value):
    return np.full((8, 8), value, dtype=np.uint8)


def make_video(values):
    video = Video(8, 8)
    for index, value in enumerate(values):
        video.record_frame(index, frame(value))
    video.finalize(len(values))
    return video


def make_db(annotations):
    db = AnnotationDatabase("test", 8, 8)
    for index, annotation in enumerate(annotations):
        db.add_gesture(GestureInfo(index, "tap", annotation.begin_time_us))
        db.add(annotation)
    return db


def annotation(gesture, begin_frame, image_value, **kwargs):
    return LagAnnotation(
        gesture_index=gesture,
        label=f"lag{gesture}",
        category="simple_frequent",
        begin_time_us=begin_frame * VSYNC_PERIOD_US,
        image=frame(image_value),
        threshold_us=1_000_000,
        **kwargs,
    )


def test_finds_first_occurrence():
    video = make_video([1, 1, 1, 2, 2, 3, 3, 3])
    db = make_db([annotation(0, 1, 3)])
    profile = Matcher(db).match(video)
    lag = profile.lags[0]
    assert lag.end_frame == 5
    assert lag.duration_us == 4 * VSYNC_PERIOD_US


def test_occurrence_two_skips_the_lookalike_beginning():
    # Screen: A A B B A A — the ending (A) looks like the beginning.
    video = make_video([1, 1, 2, 2, 1, 1])
    db = make_db([annotation(0, 0, 1, occurrence=2)])
    lag = Matcher(db).match(video).lags[0]
    assert lag.end_frame == 4


def test_adjacent_matching_segments_count_as_one_run():
    # Masked region differs between frames 3 and 4 but both match the
    # ending image under the mask: they form ONE occurrence run.
    video = Video(8, 8)
    contents = [frame(1), frame(1), frame(2), frame(3), frame(3)]
    contents[3][0, 0] = 77  # difference only inside the mask
    for index, content in enumerate(contents):
        video.record_frame(index, content)
    video.finalize(5)
    ann = annotation(0, 0, 3, mask_rects=[Rect(0, 0, 1, 1)], occurrence=1)
    lag = Matcher(make_db([ann])).match(video).lags[0]
    assert lag.end_frame == 3


def test_missing_ending_raises_match_error():
    video = make_video([1, 1, 2, 2])
    db = make_db([annotation(0, 0, 9)])
    with pytest.raises(MatchError):
        Matcher(db).match(video)


def test_begin_outside_video_raises():
    video = make_video([1, 1])
    db = make_db([annotation(0, 50, 1)])
    with pytest.raises(MatchError):
        Matcher(db).match(video)


def test_duration_clamped_non_negative():
    # Ending matches the begin frame itself; sub-frame begin offset would
    # otherwise give a negative duration.
    video = make_video([1, 1, 1])
    ann = LagAnnotation(
        gesture_index=0,
        label="lag0",
        category="simple_frequent",
        begin_time_us=VSYNC_PERIOD_US + 10,  # inside frame 1
        image=frame(1),
        threshold_us=1_000_000,
    )
    lag = Matcher(make_db([ann])).match(video).lags[0]
    assert lag.duration_us == 0


def test_tolerance_in_matching():
    noisy_end = frame(3)
    noisy_end[0, 0] = 4
    video = Video(8, 8)
    for index, content in enumerate([frame(1), frame(2), noisy_end]):
        video.record_frame(index, content)
    video.finalize(3)
    strict = make_db([annotation(0, 0, 3)])
    with pytest.raises(MatchError):
        Matcher(strict).match(video)
    tolerant = make_db([annotation(0, 0, 3, tolerance_px=1)])
    assert Matcher(tolerant).match(video).lags[0].end_frame == 2


def test_profile_preserves_lag_order_and_metadata():
    video = make_video([1, 2, 2, 1, 3, 3])
    db = make_db(
        [annotation(0, 0, 2), annotation(1, 3, 3)]
    )
    profile = Matcher(db).match(video)
    assert [lag.label for lag in profile.lags] == ["lag0", "lag1"]
    assert profile.lags[1].gesture_index == 1

"""Unit and property tests for the suggester algorithm (paper Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AnnotationError
from repro.core.geometry import Rect
from repro.analysis.suggester import (
    SuggesterConfig,
    change_string,
    reduction_factor,
    suggest,
)
from repro.capture.video import Video


def frame(value):
    return np.full((8, 8), value, dtype=np.uint8)


def make_video(values):
    video = Video(8, 8)
    for index, value in enumerate(values):
        video.record_frame(index, frame(value))
    video.finalize(len(values))
    return video


def suggested_frames(values, start=0, end=None, **config):
    video = make_video(values)
    end = len(values) if end is None else end
    return [
        s.frame_index for s in suggest(video, start, end, SuggesterConfig(**config))
    ]


def test_paper_example_each_one_preceding_a_zero():
    # frames: A A B B B C D D -> changes at 2 (B), 5 (C), 6 (D)
    # B and D start still periods; C is immediately replaced.
    assert suggested_frames([1, 1, 2, 2, 2, 3, 4, 4]) == [2, 6]


def test_first_run_is_not_a_change():
    assert suggested_frames([1, 1, 1, 1]) == []


def test_final_still_period_is_suggested():
    assert suggested_frames([1, 2, 2]) == [1]


def test_change_on_last_frame_not_suggested():
    # A trailing single changed frame has no zero after it.
    assert suggested_frames([1, 1, 2]) == []
    assert suggested_frames([1, 1]) == []


def test_min_still_frames_prunes_short_periods():
    values = [1, 2, 2, 3, 3, 3, 3]
    assert suggested_frames(values) == [1, 3]
    assert suggested_frames(values, min_still_frames=3) == [3]


def test_mask_merges_runs_differing_only_in_masked_region():
    base = frame(1)
    blinked = base.copy()
    blinked[0, 0] = 255  # a blinking cursor pixel
    video = Video(8, 8)
    sequence = [base, base, blinked, blinked, base, base]
    for index, content in enumerate(sequence):
        video.record_frame(index, content)
    video.finalize(len(sequence))
    no_mask = suggest(video, 0, len(sequence), SuggesterConfig())
    masked = suggest(
        video,
        0,
        len(sequence),
        SuggesterConfig(mask_rects=(Rect(0, 0, 1, 1),)),
    )
    assert [s.frame_index for s in no_mask] == [2, 4]
    assert masked == []  # with the cursor masked nothing ever changes


def test_tolerance_handles_blinking_cursor():
    base = frame(1)
    blinked = base.copy()
    blinked[0, 0] = 255
    video = Video(8, 8)
    for index, content in enumerate([base, blinked, base, blinked]):
        video.record_frame(index, content)
    video.finalize(4)
    assert suggest(video, 0, 4, SuggesterConfig(tolerance_px=1)) == []


def test_change_string_matches_paper_semantics():
    video = make_video([1, 1, 2, 2, 2, 3, 4, 4])
    # frame 1 vs 0: 0; 2 vs 1: 1; 3-4: 0 0; 5: 1; 6: 1; 7: 0
    assert change_string(video, 0, 8) == "0100110"


def test_reduction_factor():
    video = make_video([1] * 10 + [2] * 10)
    # 20-frame window, one suggestion -> factor 20.
    assert reduction_factor(video, 0, 20) == pytest.approx(20.0)


def test_invalid_config_rejected():
    with pytest.raises(AnnotationError):
        SuggesterConfig(tolerance_px=-1)
    with pytest.raises(AnnotationError):
        SuggesterConfig(min_still_frames=0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=2, max_size=30))
def test_suggestions_are_exactly_ones_followed_by_zeros(values):
    """Property: suggested frames differ from their predecessor and equal
    their successor — the paper's definition."""
    video = make_video(values)
    bits = change_string(video, 0, len(values))
    suggested = suggested_frames(values)
    for index in suggested:
        assert values[index] != values[index - 1]
        assert values[index + 1] == values[index]
    # Completeness: every 1-followed-by-0 within the window is suggested.
    for position, bit in enumerate(bits[:-1]):
        frame_index = position + 1
        if bit == "1" and bits[position + 1] == "0":
            assert frame_index in suggested

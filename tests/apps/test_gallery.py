"""Behavioural tests for the Gallery app (Dataset 01)."""

import pytest

from repro.core.simtime import seconds


def drive(phone, steps, governor="fixed:2150400", tail=4):
    """Schedule (time_s, app, target) taps/swipes and run the session."""
    device, wm = phone
    device.set_governor(governor)
    for when, app_name, target in steps:
        def fire(app_name=app_name, target=target, when=when):
            app = wm.app(app_name)
            if target.startswith("swipe:"):
                start, end, duration = app.swipe_target(target[6:])
                device.touchscreen.schedule_swipe(
                    seconds(when), start, end, duration
                )
            elif target == "nav:back":
                device.touchscreen.schedule_tap(
                    seconds(when), wm.back_button_point()
                )
            elif target == "nav:home":
                device.touchscreen.schedule_tap(
                    seconds(when), wm.home_button_point()
                )
            else:
                device.touchscreen.schedule_tap(
                    seconds(when), app.tap_target(target)
                )

        device.engine.schedule_at(seconds(when) - 1, fire)
    last = max(when for when, _a, _t in steps)
    device.run_for(seconds(last + tail))
    return wm.journal


def test_launch_has_progressive_stages(phone):
    device, wm = phone
    device.set_governor("fixed:300000")
    launcher = wm.app("launcher")
    frames_before = device.display.frames_composed
    device.touchscreen.schedule_tap(
        seconds(1), launcher.tap_target("icon:gallery")
    )
    device.run_for(seconds(10))
    # Eight thumbnail stages => at least eight composed frames.
    assert device.display.frames_composed - frames_before >= 8
    assert wm.journal.interactions[0].complete


def test_full_edit_save_flow(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:gallery"),
            (4, "gallery", "album:2"),
            (6, "gallery", "photo:1"),
            (8, "gallery", "btn:edit"),
            (10, "gallery", "btn:filter"),
            (13, "gallery", "btn:save"),
        ],
        tail=6,
    )
    labels = [r.label for r in journal.interactions]
    assert labels == [
        "launcher:launch:gallery",
        "gallery:open-album:2",
        "gallery:open-photo:1",
        "gallery:enter-edit",
        "gallery:apply-filter",
        "gallery:save-to-sd",
    ]
    assert all(r.complete for r in journal.interactions)


def test_save_is_a_complex_category_lag(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:gallery"),
            (4, "gallery", "album:0"),
            (6, "gallery", "photo:0"),
            (8, "gallery", "btn:edit"),
            (10, "gallery", "btn:save"),
        ],
        tail=6,
    )
    save = journal.interactions[-1]
    assert save.category == "complex"
    # ~3.3 Gcycles at 2.15 GHz ~ 1.5 s.
    assert 1_200_000 < save.duration_us < 2_500_000


def test_photo_flip_swipe(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:gallery"),
            (4, "gallery", "album:0"),
            (6, "gallery", "photo:0"),
            (8, "gallery", "swipe:flip-next"),
        ],
    )
    assert journal.interactions[-1].label == "gallery:flip-photo"
    assert journal.gestures[-1].kind == "swipe"


def test_back_navigation_chain(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:gallery"),
            (4, "gallery", "album:0"),
            (6, "gallery", "nav:back"),
            (8, "gallery", "nav:back"),
        ],
    )
    _device, wm = phone
    gallery = wm.app("gallery")
    assert gallery.view is gallery._albums_view
    back_records = [r for r in journal.interactions if r.label == "nav:back"]
    assert len(back_records) == 2 and all(r.complete for r in back_records)


def test_taps_during_busy_save_are_ignored(phone):
    # At 0.30 GHz the launch takes ~6.3 s and the save ~11 s; the filter
    # tap at t=21 s lands mid-save and must be ignored by the busy guard.
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:gallery"),
            (9, "gallery", "album:0"),
            (13, "gallery", "photo:0"),
            (16.5, "gallery", "btn:edit"),
            (19, "gallery", "btn:save"),
            (21, "gallery", "btn:filter"),
        ],
        governor="fixed:300000",
        tail=16,
    )
    filter_interactions = [
        r for r in journal.interactions if "filter" in r.label
    ]
    assert filter_interactions == []
    save = [r for r in journal.interactions if "save" in r.label][0]
    assert save.complete

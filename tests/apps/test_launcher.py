"""Behavioural tests for the launcher (home screen + widget)."""

import numpy as np

from repro.core.simtime import seconds
from repro.apps.launcher import WIDGET_RECT, WIDGET_REFRESH_PERIOD_US


def test_every_app_has_an_icon(phone):
    _device, wm = phone
    launcher = wm.app("launcher")
    for app in wm.apps():
        if app.name == "launcher":
            continue
        point = launcher.tap_target(f"icon:{app.name}")
        assert point is not None


def test_icons_do_not_overlap(phone):
    _device, wm = phone
    launcher = wm.app("launcher")
    rects = [icon.rect for icon in launcher._icons.values()]
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            assert not a.intersects(b)


def test_widget_tap_opens_pulse(phone):
    device, wm = phone
    device.set_governor("fixed:2150400")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(seconds(1), launcher.tap_target("widget"))
    device.run_for(seconds(4))
    assert wm.foreground is wm.app("pulse")
    assert wm.journal.interactions[0].label == "launcher:widget:open-pulse"


def test_widget_refreshes_periodically(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    assert launcher._widget.refresh_count == 0
    device.run_for(WIDGET_REFRESH_PERIOD_US + seconds(8))
    assert launcher._widget.refresh_count >= 1


def test_widget_refresh_changes_home_screen(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    device.display.compose_now()
    before = device.display.framebuffer.copy()
    device.run_for(WIDGET_REFRESH_PERIOD_US + seconds(8))
    device.display.compose_now()
    after = device.display.framebuffer
    region = before[
        WIDGET_RECT.y : WIDGET_RECT.bottom, WIDGET_RECT.x : WIDGET_RECT.right
    ]
    region_after = after[
        WIDGET_RECT.y : WIDGET_RECT.bottom, WIDGET_RECT.x : WIDGET_RECT.right
    ]
    assert not np.array_equal(region, region_after)


def test_widget_is_a_dynamic_region(phone):
    _device, wm = phone
    launcher = wm.app("launcher")
    assert WIDGET_RECT in launcher.dynamic_regions()


def test_dead_target_hits_nothing(phone):
    device, wm = phone
    device.set_governor("fixed:960000")
    launcher = wm.app("launcher")
    device.touchscreen.schedule_tap(seconds(1), launcher.tap_target("dead"))
    device.run_for(seconds(2))
    assert wm.journal.interactions == []

"""Behavioural tests for the Logo Quiz app (Dataset 02)."""

from repro.core.simtime import seconds

from tests.apps.test_gallery import drive


def test_menu_to_puzzle_flow(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:logoquiz"),
            (4, "logoquiz", "btn:play"),
            (6, "logoquiz", "level:4"),
        ],
    )
    labels = [r.label for r in journal.interactions]
    assert labels == [
        "launcher:launch:logoquiz",
        "logoquiz:open-levels",
        "logoquiz:open-level:4",
    ]
    assert all(r.complete for r in journal.interactions)


def test_typing_is_typing_category(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:logoquiz"),
            (4, "logoquiz", "btn:play"),
            (6, "logoquiz", "level:0"),
            (9, "logoquiz", "key:c"),
            (10, "logoquiz", "key:a"),
            (11, "logoquiz", "key:t"),
        ],
    )
    typed = [r for r in journal.interactions if r.label.startswith("logoquiz:type:")]
    assert [r.label[-1] for r in typed] == ["c", "a", "t"]
    assert all(r.category == "typing" for r in typed)
    _device, wm = phone
    assert wm.app("logoquiz")._answer_field.content == "cat"


def test_check_answer_advances_logo(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:logoquiz"),
            (4, "logoquiz", "btn:play"),
            (6, "logoquiz", "level:0"),
            (9, "logoquiz", "key:o"),
            (10, "logoquiz", "key:k"),
            (11, "logoquiz", "btn:check"),
        ],
    )
    _device, wm = phone
    quiz = wm.app("logoquiz")
    assert quiz._current_logo == 1
    assert quiz._answer_field.content == ""
    assert (0, 0) in quiz._solved


def test_typing_lag_fast_at_high_frequency(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:logoquiz"),
            (4, "logoquiz", "btn:play"),
            (6, "logoquiz", "level:0"),
            (9, "logoquiz", "key:q"),
        ],
    )
    key = journal.interactions[-1]
    # 100e6 cycles at 2.15 GHz < the 150 ms typing threshold.
    assert key.duration_us < 150_000


def test_cursor_is_a_dynamic_region_in_puzzle(phone):
    drive(
        phone,
        [
            (1, "launcher", "icon:logoquiz"),
            (4, "logoquiz", "btn:play"),
            (6, "logoquiz", "level:0"),
        ],
    )
    _device, wm = phone
    quiz = wm.app("logoquiz")
    assert quiz.dynamic_regions() == [quiz._answer_field.cursor_rect]

"""Behavioural tests for the messaging app (Dataset 03)."""

from tests.apps.test_gallery import drive


def compose_steps(extra=()):
    return [
        (1, "launcher", "icon:messaging"),
        (4, "messaging", "thread:3"),
        (6, "messaging", "key:h"),
        (7, "messaging", "key:i"),
        *extra,
    ]


def test_open_thread_shows_compose(phone):
    drive(phone, compose_steps())
    _device, wm = phone
    messaging = wm.app("messaging")
    assert messaging.view is messaging._compose_view
    assert messaging._body_field.content == "hi"


def test_attach_flow(phone):
    drive(
        phone,
        compose_steps(
            [(9, "messaging", "btn:attach"), (11, "messaging", "pick:4")]
        ),
    )
    _device, wm = phone
    messaging = wm.app("messaging")
    assert messaging._attached == "picker:image:4"
    assert messaging._attachment.visible
    assert messaging.view is messaging._compose_view


def test_send_clears_compose_and_bumps_history(phone):
    journal = drive(
        phone,
        compose_steps([(9, "messaging", "btn:send")]),
        tail=8,
    )
    _device, wm = phone
    messaging = wm.app("messaging")
    assert messaging._messages_sent == 1
    assert messaging._body_field.content == ""
    assert not messaging._send_bar.visible
    send = [r for r in journal.interactions if r.label == "messaging:send-mms"]
    assert send and send[0].complete


def test_send_with_empty_body_is_ignored(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:messaging"),
            (4, "messaging", "thread:0"),
            (6, "messaging", "btn:send"),
        ],
    )
    assert all(r.label != "messaging:send-mms" for r in journal.interactions)


def test_send_progress_produces_intermediate_frames(phone):
    device, wm = phone
    frames_before = None

    def capture_count():
        nonlocal frames_before
        frames_before = device.display.frames_composed

    device.engine.schedule_at(8_500_000, capture_count)
    drive(phone, compose_steps([(9, "messaging", "btn:send")]), tail=8)
    # Five progress-bar stages → at least five composed frames after t=8.5s.
    assert device.display.frames_composed - frames_before >= 5

"""Behavioural tests for Movie Studio (Dataset 04)."""

from tests.apps.test_gallery import drive


def test_add_and_select_clips(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:addclip"),
            (7, "moviestudio", "btn:addclip"),
            (10, "moviestudio", "clip:0"),
        ],
    )
    _device, wm = phone
    studio = wm.app("moviestudio")
    assert studio._clip_count == 2
    assert studio._selected_clip == 0
    labels = [r.label for r in journal.interactions]
    assert "moviestudio:select-clip:0" in labels


def test_preview_requires_clips(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:preview"),
        ],
    )
    assert all("preview" not in r.label for r in journal.interactions)


def test_preview_render_is_complex_category(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:addclip"),
            (7, "moviestudio", "btn:preview"),
        ],
        tail=6,
    )
    preview = [r for r in journal.interactions if "render-preview" in r.label]
    assert preview and preview[0].category == "complex"
    _device, wm = phone
    studio = wm.app("moviestudio")
    assert studio._previews_rendered == 1
    assert not studio._render_bar.visible


def test_export_requires_a_preview_first(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:addclip"),
            (7, "moviestudio", "btn:export"),
        ],
    )
    assert all("export" not in r.label for r in journal.interactions)


def test_export_after_preview(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:addclip"),
            (7, "moviestudio", "btn:preview"),
            (11, "moviestudio", "btn:export"),
        ],
        tail=8,
    )
    export = [r for r in journal.interactions if "export-movie" in r.label]
    assert export and export[0].complete
    _device, wm = phone
    assert wm.app("moviestudio")._exports_done == 1


def test_reselecting_same_clip_is_ignored(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "btn:addclip"),
            (7, "moviestudio", "clip:0"),
            (9, "moviestudio", "clip:0"),
        ],
    )
    selects = [r for r in journal.interactions if "select-clip" in r.label]
    assert len(selects) == 1  # the second tap changes nothing on screen


def test_tap_invisible_clip_slot_ignored(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:moviestudio"),
            (4, "moviestudio", "clip:3"),
        ],
    )
    assert all("select-clip" not in r.label for r in journal.interactions)

"""Behavioural tests for Pulse News (Datasets 03 and 05)."""

from tests.apps.test_gallery import drive


def test_feed_scroll_swipe(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "swipe:scroll-up"),
        ],
    )
    assert journal.interactions[-1].label == "pulse:scroll-feed"
    _device, wm = phone
    assert wm.app("pulse")._feed.scroll_px == 112


def test_open_story_two_stage_load(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "story:2"),
        ],
    )
    story = journal.interactions[-1]
    assert story.label == "pulse:open-story:2"
    assert story.category == "common"
    _device, wm = phone
    pulse = wm.app("pulse")
    assert pulse.view is pulse._article_view
    assert pulse._article_image.visible


def test_pull_to_refresh_at_top(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "swipe:pull-refresh"),
        ],
    )
    assert journal.interactions[-1].label == "pulse:refresh-feed"
    _device, wm = phone
    assert not wm.app("pulse")._refresh_banner.visible


def test_pull_gesture_when_scrolled_does_not_refresh(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "swipe:scroll-up"),
            (8, "pulse", "swipe:pull-refresh"),
        ],
    )
    labels = [r.label for r in journal.interactions]
    assert "pulse:refresh-feed" not in labels
    # The downward gesture scrolled back instead.
    assert labels.count("pulse:scroll-feed") == 2


def test_back_from_article_restores_feed(phone):
    drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "story:1"),
            (8, "pulse", "nav:back"),
        ],
    )
    _device, wm = phone
    pulse = wm.app("pulse")
    assert pulse.view is pulse._feed_view


def test_resume_keeps_feed_state(phone):
    drive(
        phone,
        [
            (1, "launcher", "icon:pulse"),
            (5, "pulse", "swipe:scroll-up"),
            (8, "pulse", "nav:home"),
            (11, "launcher", "icon:pulse"),
        ],
    )
    _device, wm = phone
    pulse = wm.app("pulse")
    assert wm.foreground is pulse
    assert pulse._feed.scroll_px == 112  # warm resume preserved state

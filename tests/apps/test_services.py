"""Tests for background system services."""

import random

import pytest

from repro.apps.services import DEFAULT_SERVICES, BackgroundServices, ServiceSpec
from repro.core.engine import Engine
from repro.core.simtime import seconds
from repro.device.cpu import CpuCore
from repro.device.frequencies import snapdragon_8074_table
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import PRIORITY_BACKGROUND


@pytest.fixture
def rig():
    engine = Engine()
    core = CpuCore(engine.clock, snapdragon_8074_table())
    scheduler = Scheduler(engine, core)
    return engine, core, scheduler


def test_services_spawn_background_work(rig):
    engine, _core, scheduler = rig
    services = BackgroundServices(engine, scheduler, random.Random(1))
    services.start()
    engine.run_until(seconds(120))
    assert services.tasks_spawned >= 4
    assert scheduler.completed_cycles > 0


def test_noise_stream_controls_schedule(rig):
    engine, _core, scheduler = rig

    def spawned(seed):
        eng = Engine()
        core = CpuCore(eng.clock, snapdragon_8074_table())
        sched = Scheduler(eng, core)
        services = BackgroundServices(eng, sched, random.Random(seed))
        services.start()
        eng.run_until(seconds(120))
        return services.tasks_spawned, sched.completed_cycles

    assert spawned(1) == spawned(1)
    assert spawned(1) != spawned(2)


def test_all_default_services_fire_within_two_periods(rig):
    engine, _core, scheduler = rig
    services = BackgroundServices(engine, scheduler, random.Random(3))
    services.start()
    horizon = 2 * max(s.mean_period_us for s in DEFAULT_SERVICES)
    engine.run_until(horizon)
    assert services.tasks_spawned >= len(DEFAULT_SERVICES)


def test_start_is_idempotent(rig):
    engine, _core, scheduler = rig
    services = BackgroundServices(engine, scheduler, random.Random(1))
    services.start()
    pending_after_first = engine.pending
    services.start()
    assert engine.pending == pending_after_first


def test_custom_service_spec(rig):
    engine, _core, scheduler = rig
    spec = ServiceSpec("custom", 5_000_000, 1_000_000, 30e6, 5e6)
    services = BackgroundServices(
        engine, scheduler, random.Random(1), services=(spec,)
    )
    services.start()
    engine.run_until(seconds(60))
    assert services.tasks_spawned >= 8

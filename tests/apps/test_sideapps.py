"""Behavioural tests for the side apps (feed apps, calculator, music)."""

from repro.core.simtime import seconds

from tests.apps.test_gallery import drive


def test_feed_app_open_item(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:facebook"),
            (4, "facebook", "item:2"),
        ],
    )
    item = journal.interactions[-1]
    assert item.label == "facebook:open-item:2"
    _device, wm = phone
    facebook = wm.app("facebook")
    assert facebook.view is facebook._item_view


def test_feed_scroll_then_back(phone):
    drive(
        phone,
        [
            (1, "launcher", "icon:gmail"),
            (4, "gmail", "swipe:scroll-up"),
            (7, "gmail", "item:9"),
            (10, "gmail", "nav:back"),
        ],
    )
    _device, wm = phone
    gmail = wm.app("gmail")
    assert gmail.view is gmail._feed_view
    assert gmail._feed.scroll_px == 112


def test_calculator_typing_and_evaluate(phone):
    journal = drive(
        phone,
        [
            (1, "launcher", "icon:calculator"),
            (4, "calculator", "key:7"),
            (5, "calculator", "key:+"),
            (6, "calculator", "key:2"),
            (7, "calculator", "key:="),
        ],
    )
    categories = [r.category for r in journal.interactions[1:]]
    assert categories == ["typing", "typing", "typing", "simple_frequent"]
    _device, wm = phone
    calc = wm.app("calculator")
    assert calc._entry == ""  # evaluate cleared the entry
    assert calc._results == 1


def test_music_toggle_and_background_decode(phone):
    device, wm = phone
    drive(
        phone,
        [
            (1, "launcher", "icon:music"),
            (4, "music", "btn:toggle"),
        ],
    )
    music = wm.app("music")
    assert music.playing
    cycles_before = device.scheduler.completed_cycles
    device.run_for(seconds(10))
    # Decode work keeps arriving in the background while playing.
    assert device.scheduler.completed_cycles > cycles_before
    assert music.dynamic_regions() == [music._seek_bar.rect]


def test_music_pause_stops_decode(phone):
    device, wm = phone
    drive(
        phone,
        [
            (1, "launcher", "icon:music"),
            (4, "music", "btn:toggle"),
            (8, "music", "btn:toggle"),
        ],
    )
    music = wm.app("music")
    assert not music.playing
    device.run_for(seconds(4))  # drain any queued decode
    cycles = device.scheduler.completed_cycles
    device.run_for(seconds(8))
    assert device.scheduler.completed_cycles == cycles

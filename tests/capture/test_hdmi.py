"""Tests for the capture card attached to the display."""

import numpy as np
import pytest

from repro.capture import CaptureCard
from repro.core.engine import Engine
from repro.core.errors import CaptureError
from repro.device.display import VSYNC_PERIOD_US, Display


@pytest.fixture
def rig():
    engine = Engine()
    display = Display(engine, 8, 8)
    card = CaptureCard(display)
    return engine, display, card


def test_capture_seeds_initial_frame(rig):
    engine, display, card = rig
    display.framebuffer.fill(9)
    card.start(engine.now)
    engine.run_until(5 * VSYNC_PERIOD_US)
    video = card.stop(engine.now)
    assert video.frame_at(0)[0, 0] == 9
    assert video.segment_count == 1


def test_composed_frames_recorded(rig):
    engine, display, card = rig
    value = [0]
    display.set_composer(lambda fb: fb.fill(value[0]))
    card.start(engine.now)

    def change(to):
        value[0] = to
        display.invalidate()

    engine.schedule_at(2 * VSYNC_PERIOD_US + 5, lambda: change(50))
    engine.run_until(10 * VSYNC_PERIOD_US)
    video = card.stop(engine.now)
    assert video.frame_at(2)[0, 0] == 0
    assert video.frame_at(3)[0, 0] == 50
    assert video.frame_count == 11


def test_stop_without_start_rejected(rig):
    _engine, _display, card = rig
    with pytest.raises(CaptureError):
        card.stop(0)


def test_double_start_rejected(rig):
    engine, _display, card = rig
    card.start(engine.now)
    with pytest.raises(CaptureError):
        card.start(engine.now)


def test_restart_after_stop_allowed(rig):
    engine, _display, card = rig
    card.start(engine.now)
    card.stop(engine.now)
    card.start(engine.now)
    video = card.stop(engine.now)
    assert video.frame_count >= 1


def test_frames_composed_while_stopped_not_recorded(rig):
    engine, display, card = rig
    card.start(engine.now)
    first = card.stop(engine.now)
    display.set_composer(lambda fb: fb.fill(77))
    display.invalidate()
    engine.run_until(2 * VSYNC_PERIOD_US)
    assert first.frame_count == 1

"""Tests for the streaming segment pipeline (frame taps)."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.core.errors import CaptureError
from repro.capture import (
    CaptureCard,
    FrameDigestTap,
    SegmentStreamer,
    Video,
    replay_segments,
    stream_enabled,
)
from repro.device.display import VSYNC_PERIOD_US, Display


def frame(value):
    return np.full((8, 8), value, dtype=np.uint8)


class CollectTap:
    def __init__(self):
        self.segments = []
        self.end_frame = None

    def on_segment(self, segment):
        assert self.end_frame is None, "segment after stop"
        self.segments.append((segment.start, segment.end, segment.digest))

    def on_stop(self, end_frame):
        self.end_frame = end_frame


def drive(recorder, ops, end):
    """Apply (frame_index, value) ops then finalize at ``end``."""
    for index, value in ops:
        recorder.record_frame(index, frame(value))
    recorder.finalize(end)


# A recording schedule: non-decreasing frame indices (same-index
# recomposition allowed, gaps allowed) with small content values so
# replace/merge/extend paths all get exercised.
@st.composite
def schedules(draw):
    steps = draw(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                          min_size=1, max_size=40))
    ops = []
    index = 0
    for advance, value in steps:
        index += advance  # 0 = recompose same vsync slot
        ops.append((index, value))
    end = index + 1 + draw(st.integers(0, 5))
    return ops, end


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_streamed_segments_equal_video_segments(schedule):
    """The streamer's emitted segments are bit-identical to the batch
    video's — same RLE state machine, same boundaries, same digests."""
    ops, end = schedule
    video = Video(8, 8)
    drive(video, ops, end)

    streamer = SegmentStreamer(8, 8)
    tap = CollectTap()
    streamer.add_tap(tap)
    drive(streamer, ops, end)

    want = [(s.start, s.end, s.digest) for s in video.segments()]
    assert tap.segments == want
    assert tap.end_frame == end


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_streamer_holds_at_most_two_pending_runs(schedule):
    """O(active-window): the streamer never buffers more than two runs."""
    ops, end = schedule
    streamer = SegmentStreamer(8, 8)
    streamer.add_tap(CollectTap())
    for index, value in ops:
        streamer.record_frame(index, frame(value))
        assert len(streamer.pending_segments()) <= 2
    streamer.finalize(end)
    assert streamer.pending_segments() == []


def test_frame_digest_tap_matches_manual_segment_digest():
    ops = [(0, 1), (1, 1), (2, 2), (5, 1)]
    video = Video(8, 8)
    drive(video, ops, 8)
    manual = hashlib.blake2b(digest_size=16)
    for segment in video.segments():
        manual.update(segment.start.to_bytes(8, "big"))
        manual.update(segment.end.to_bytes(8, "big"))
        manual.update(segment.digest)

    streamer = SegmentStreamer(8, 8)
    tap = FrameDigestTap()
    streamer.add_tap(tap)
    drive(streamer, ops, 8)
    assert tap.hexdigest() == manual.hexdigest()
    assert tap.segment_count == video.segment_count
    assert tap.end_frame == 8

    # replay_segments (the batch path's tap feed) produces the same digest.
    replayed = FrameDigestTap()
    replay_segments(video.segments(), video.end_frame, replayed)
    assert replayed.hexdigest() == tap.hexdigest()


def test_streamer_rejects_bad_input_like_video():
    streamer = SegmentStreamer(8, 8)
    with pytest.raises(CaptureError):
        streamer.record_frame(0, np.zeros((4, 4), dtype=np.uint8))
    with pytest.raises(CaptureError):
        streamer.record_frame(-1, frame(0))
    with pytest.raises(CaptureError):
        streamer.finalize(3)  # empty
    streamer.record_frame(5, frame(1))
    with pytest.raises(CaptureError):
        streamer.record_frame(3, frame(2))  # past frame
    streamer.finalize(6)
    with pytest.raises(CaptureError):
        streamer.record_frame(7, frame(1))  # after finalize
    with pytest.raises(CaptureError):
        streamer.finalize(9)  # double finalize


def test_stream_enabled_env_gate(monkeypatch):
    monkeypatch.delenv("REPRO_STREAM", raising=False)
    assert stream_enabled()  # streaming is the default
    monkeypatch.setenv("REPRO_STREAM", "0")
    assert not stream_enabled()
    monkeypatch.setenv("REPRO_STREAM", "1")
    assert stream_enabled()


# --- capture card tap delivery --------------------------------------------------


@pytest.fixture
def rig():
    engine = Engine()
    display = Display(engine, 8, 8)
    card = CaptureCard(display)
    return engine, display, card


def _run_capture(engine, display, card, streaming):
    value = [0]
    display.set_composer(lambda fb: fb.fill(value[0]))
    card.start(engine.now, streaming=streaming)

    def change(to):
        value[0] = to
        display.invalidate()

    engine.schedule_at(2 * VSYNC_PERIOD_US + 5, lambda: change(50))
    engine.schedule_at(5 * VSYNC_PERIOD_US + 5, lambda: change(7))
    engine.run_until(10 * VSYNC_PERIOD_US)
    return card.stop(engine.now)


def test_streaming_card_feeds_taps_and_returns_no_video(rig):
    engine, display, card = rig
    tap = CollectTap()
    card.add_tap(tap)
    video = _run_capture(engine, display, card, streaming=True)
    assert video is None
    assert tap.end_frame == 11
    assert len(tap.segments) == 3
    assert tap.segments[0][0] == 0
    assert tap.segments[-1][1] == 11


def test_batch_card_feeds_taps_identically(rig):
    engine, display, card = rig
    tap = FrameDigestTap()
    card.add_tap(tap)
    video = _run_capture(engine, display, card, streaming=False)
    assert video is not None
    manual = FrameDigestTap()
    replay_segments(video.segments(), video.end_frame, manual)
    assert tap.hexdigest() == manual.hexdigest()


def test_streaming_vs_batch_digests_identical():
    for streaming in (True, False):
        engine = Engine()
        display = Display(engine, 8, 8)
        card = CaptureCard(display)
        tap = FrameDigestTap()
        card.add_tap(tap)
        _run_capture(engine, display, card, streaming=streaming)
        if streaming:
            stream_digest = tap.hexdigest()
        else:
            assert tap.hexdigest() == stream_digest


def test_add_tap_during_capture_rejected(rig):
    engine, _display, card = rig
    card.start(engine.now, streaming=True)
    with pytest.raises(CaptureError):
        card.add_tap(CollectTap())

"""Unit and property tests for the RLE video container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CaptureError
from repro.capture.video import Video


def frame(value):
    return np.full((8, 8), value, dtype=np.uint8)


def make_video(values):
    """Record one frame per consecutive index from a value list."""
    video = Video(8, 8)
    for index, value in enumerate(values):
        video.record_frame(index, frame(value))
    video.finalize(len(values))
    return video


def test_identical_frames_collapse_into_one_segment():
    video = make_video([1, 1, 1, 1])
    assert video.segment_count == 1
    assert video.frame_count == 4


def test_changes_start_new_segments():
    video = make_video([1, 1, 2, 2, 1])
    assert video.segment_count == 3
    assert [s.length for s in video.segments()] == [2, 2, 1]


def test_frame_at_returns_correct_content():
    video = make_video([1, 1, 2, 3])
    assert video.frame_at(0)[0, 0] == 1
    assert video.frame_at(2)[0, 0] == 2
    assert video.frame_at(3)[0, 0] == 3


def test_frame_outside_range_rejected():
    video = make_video([1])
    with pytest.raises(CaptureError):
        video.frame_at(5)


def test_gap_filling_extends_previous_content():
    video = Video(8, 8)
    video.record_frame(0, frame(1))
    video.record_frame(10, frame(2))
    video.finalize(12)
    assert video.frame_at(5)[0, 0] == 1
    assert video.frame_at(10)[0, 0] == 2
    assert video.frame_count == 12


def test_same_index_recompose_replaces_content():
    video = Video(8, 8)
    video.record_frame(0, frame(1))
    video.record_frame(1, frame(2))
    video.record_frame(1, frame(3))  # second compose within the vsync
    video.finalize(2)
    assert video.frame_at(1)[0, 0] == 3
    assert video.segment_count == 2


def test_same_index_recompose_merging_back():
    video = Video(8, 8)
    video.record_frame(0, frame(1))
    video.record_frame(1, frame(2))
    video.record_frame(1, frame(1))  # reverts to previous content
    video.finalize(3)
    assert video.segment_count == 1
    assert video.frame_count == 3


def test_past_frame_rejected():
    video = Video(8, 8)
    video.record_frame(5, frame(1))
    with pytest.raises(CaptureError):
        video.record_frame(3, frame(2))


def test_wrong_shape_rejected():
    video = Video(8, 8)
    with pytest.raises(CaptureError):
        video.record_frame(0, np.zeros((4, 4), dtype=np.uint8))


def test_finalize_cannot_truncate():
    video = make_video([1, 2, 3])
    with pytest.raises(CaptureError):
        video.finalize(1)


def test_record_after_finalize_rejected():
    video = make_video([1])
    with pytest.raises(CaptureError):
        video.record_frame(5, frame(2))


def test_segments_between_clips_to_window():
    video = make_video([1, 1, 1, 2, 2, 3])
    clipped = list(video.segments_between(1, 5))
    assert [(s.start, s.end) for s in clipped] == [(1, 3), (3, 5)]


def test_iter_frames_matches_frame_at():
    video = make_video([1, 1, 2, 3, 3])
    for index, content in video.iter_frames():
        assert np.array_equal(content, video.frame_at(index))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
def test_rle_equals_frame_by_frame(values):
    """The RLE container must preserve exact frame-by-frame semantics."""
    video = make_video(values)
    assert video.frame_count == len(values)
    for index, value in enumerate(values):
        assert video.frame_at(index)[0, 0] == value
    # Segment lengths sum to the frame count and segments alternate content.
    segments = video.segments()
    assert sum(s.length for s in segments) == len(values)
    for a, b in zip(segments, segments[1:]):
        assert a.digest != b.digest
        assert a.end == b.start

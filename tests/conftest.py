"""Shared fixtures: devices, mini-sessions and recorded artifacts."""

from __future__ import annotations

import pytest

from repro.analysis import AutoAnnotator
from repro.apps import install_standard_apps
from repro.capture import CaptureCard
from repro.core.simtime import seconds
from repro.device.device import Device
from repro.harness.experiment import record_workload
from repro.replay import GeteventRecorder
from repro.uifw.view import WindowManager
from repro.workloads import dataset


@pytest.fixture
def device() -> Device:
    """A bare simulated device (no apps, no governor)."""
    return Device()


@pytest.fixture
def phone():
    """A device with the standard app set installed; returns (device, wm)."""
    dev = Device()
    wm = WindowManager(dev)
    install_standard_apps(wm)
    return dev, wm


def run_gallery_session(governor: str):
    """A short canonical session: launch gallery, open album, open photo,
    one spurious tap.  Returns (device, wm, trace, video)."""
    dev = Device()
    wm = WindowManager(dev)
    install_standard_apps(wm)
    dev.set_governor(governor)
    recorder = GeteventRecorder(dev.input_subsystem)
    recorder.start()
    card = CaptureCard(dev.display)
    card.start(dev.engine.now)
    launcher = wm.app("launcher")
    gallery = wm.app("gallery")
    touch = dev.touchscreen
    touch.schedule_tap(seconds(1), launcher.tap_target("icon:gallery"))
    dev.engine.schedule_at(
        seconds(11),
        lambda: touch.schedule_tap(seconds(12), gallery.tap_target("album:2")),
    )
    dev.engine.schedule_at(
        seconds(17),
        lambda: touch.schedule_tap(seconds(18), gallery.tap_target("photo:1")),
    )
    dev.engine.schedule_at(
        seconds(22),
        lambda: touch.schedule_tap(seconds(23), gallery.tap_target("dead")),
    )
    dev.run_for(seconds(28))
    return dev, wm, recorder.stop(), card.stop(dev.engine.now)


@pytest.fixture(scope="session")
def gallery_session():
    """The canonical session recorded at the lowest fixed frequency."""
    return run_gallery_session("fixed:300000")


@pytest.fixture(scope="session")
def gallery_database(gallery_session):
    """Annotation database of the canonical session."""
    _dev, wm, _trace, video = gallery_session
    return AutoAnnotator("gallery-session").annotate(video, wm.journal)


@pytest.fixture(scope="session")
def artifacts_ds03():
    """Recorded artifacts of dataset 03 (fast to record, has messaging)."""
    return record_workload(dataset("03"))

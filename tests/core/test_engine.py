"""Unit tests for the deterministic event engine."""

import pytest

from repro.core.engine import (
    PRIORITY_INPUT,
    PRIORITY_TIMER,
    Engine,
)
from repro.core.errors import SimulationError


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule_at(30, lambda: fired.append("c"))
    engine.schedule_at(10, lambda: fired.append("a"))
    engine.schedule_at(20, lambda: fired.append("b"))
    engine.run_until(100)
    assert fired == ["a", "b", "c"]


def test_same_time_ordered_by_priority():
    engine = Engine()
    fired = []
    engine.schedule_at(10, lambda: fired.append("timer"), priority=PRIORITY_TIMER)
    engine.schedule_at(10, lambda: fired.append("input"), priority=PRIORITY_INPUT)
    engine.run_until(100)
    assert fired == ["input", "timer"]


def test_same_time_same_priority_ordered_by_insertion():
    engine = Engine()
    fired = []
    for name in ("first", "second", "third"):
        engine.schedule_at(5, lambda n=name: fired.append(n))
    engine.run_until(10)
    assert fired == ["first", "second", "third"]


def test_clock_lands_exactly_on_end_time():
    engine = Engine()
    engine.schedule_at(10, lambda: None)
    engine.run_until(500)
    assert engine.now == 500


def test_events_beyond_end_time_stay_queued():
    engine = Engine()
    fired = []
    engine.schedule_at(600, lambda: fired.append("late"))
    engine.run_until(500)
    assert fired == []
    engine.run_until(700)
    assert fired == ["late"]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule_at(10, lambda: fired.append("x"))
    event.cancel()
    engine.run_until(100)
    assert fired == []


def test_schedule_in_the_past_rejected():
    engine = Engine()
    engine.schedule_at(10, lambda: None)
    engine.run_until(50)
    with pytest.raises(SimulationError):
        engine.schedule_at(20, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule_after(-1, lambda: None)


def test_callback_can_schedule_more_events():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.schedule_after(5, lambda: fired.append("second"))

    engine.schedule_at(10, first)
    engine.run_until(100)
    assert fired == ["first", "second"]


def test_events_fired_counter():
    engine = Engine()
    for t in (1, 2, 3):
        engine.schedule_at(t, lambda: None)
    engine.run_until(10)
    assert engine.events_fired == 3


def test_pending_counts_only_uncancelled():
    engine = Engine()
    keep = engine.schedule_at(10, lambda: None)
    cancel = engine.schedule_at(20, lambda: None)
    cancel.cancel()
    assert engine.pending == 1
    assert keep.time == 10


def test_run_until_idle_drains_queue():
    engine = Engine()
    fired = []
    engine.schedule_at(10, lambda: fired.append(1))
    engine.schedule_at(20, lambda: fired.append(2))
    engine.run_until_idle()
    assert fired == [1, 2]
    assert engine.pending == 0


def test_engine_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run_until(100)
        except SimulationError as error:
            errors.append(error)

    engine.schedule_at(1, reenter)
    engine.run_until(10)
    assert len(errors) == 1

"""Fast-path behaviour of the event engine.

The scheduling API contract (cancel, priority ordering, insertion order,
reentrancy guard) is pinned by test_engine.py; these tests cover what the
fast path added: slotted events, native periodic recurrence, and
tombstone compaction.
"""

import pytest

from repro.core.engine import (
    PRIORITY_INPUT,
    PRIORITY_TIMER,
    Engine,
    ScheduledEvent,
)
from repro.core.errors import SimulationError


def test_scheduled_event_has_slots_no_dict():
    event = Engine().schedule_at(10, lambda: None)
    assert not hasattr(event, "__dict__")
    with pytest.raises(AttributeError):
        event.arbitrary_attribute = 1


def test_event_ordering_still_comparable():
    engine = Engine()
    early = engine.schedule_at(10, lambda: None)
    late = engine.schedule_at(20, lambda: None)
    assert early < late
    tie_a = engine.schedule_at(30, lambda: None, priority=PRIORITY_INPUT)
    tie_b = engine.schedule_at(30, lambda: None, priority=PRIORITY_TIMER)
    assert tie_a < tie_b


def test_schedule_periodic_fires_on_alignment():
    engine = Engine()
    ticks = []
    engine.schedule_periodic(10, 10, lambda: ticks.append(engine.now))
    engine.run_until(45)
    assert ticks == [10, 20, 30, 40]


def test_schedule_periodic_single_event_reused():
    engine = Engine()
    event = engine.schedule_periodic(5, 5, lambda: None)
    engine.run_until(50)
    # The same handle is re-armed in place: queue holds at most one entry.
    assert engine.pending == 1
    assert event.time == 55


def test_cancel_stops_periodic_recurrence():
    engine = Engine()
    ticks = []
    event = engine.schedule_periodic(10, 10, lambda: ticks.append(engine.now))
    engine.schedule_at(25, event.cancel)
    engine.run_until(100)
    assert ticks == [10, 20]


def test_cancel_mid_fire_stops_recurrence():
    engine = Engine()
    ticks = []
    event = None

    def tick():
        ticks.append(engine.now)
        if len(ticks) == 3:
            event.cancel()

    event = engine.schedule_periodic(10, 10, tick)
    engine.run_until(100)
    assert ticks == [10, 20, 30]


def test_periodic_rejects_nonpositive_period():
    with pytest.raises(SimulationError):
        Engine().schedule_periodic(10, 0, lambda: None)


def test_tombstone_compaction_bounds_heap():
    """Cancel churn must not grow the heap past ~2x the live entries."""
    engine = Engine()
    for _round in range(100):
        events = [
            engine.schedule_at(1_000_000 + i, lambda: None) for i in range(100)
        ]
        for event in events:
            event.cancel()
    assert len(engine._queue) < 500
    assert engine.pending == 0
    # The queue still drains correctly afterwards.
    fired = []
    engine.schedule_at(2_000_000, lambda: fired.append(True))
    engine.run_until_idle()
    assert fired == [True]


def test_compaction_preserves_ordering():
    engine = Engine()
    fired = []
    keep = [engine.schedule_at(10_000 + i, lambda i=i: fired.append(i))
            for i in range(5)]
    churn = [engine.schedule_at(50_000 + i, lambda: None) for i in range(300)]
    for event in churn:
        event.cancel()
    assert keep[0] in [entry[3] for entry in engine._queue]
    engine.run_until_idle()
    assert fired == [0, 1, 2, 3, 4]


def test_firing_priority_visible_during_dispatch():
    engine = Engine()
    seen = []
    engine.schedule_at(10, lambda: seen.append(engine.firing_priority),
                       priority=PRIORITY_TIMER)
    assert engine.firing_priority is None
    engine.run_until(20)
    assert seen == [PRIORITY_TIMER]
    assert engine.firing_priority is None


def test_reentrancy_guard_still_enforced():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run_until_idle()
        except SimulationError as error:
            errors.append(error)

    engine.schedule_at(1, reenter)
    engine.run_until(10)
    assert len(errors) == 1

"""Unit tests for the centralised REPRO_* kill-switch parsing."""

import pytest

from repro.core.env import KNOWN_FLAGS, env_flag, reset_env_flag_cache


@pytest.fixture(autouse=True)
def _clean_cache():
    reset_env_flag_cache()
    yield
    reset_env_flag_cache()


class TestEnvFlag:
    def test_unset_takes_default_true(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_unset_takes_default_false(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", default=False) is False

    def test_zero_means_off_regardless_of_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG", default=True) is False
        reset_env_flag_cache()
        assert env_flag("REPRO_TEST_FLAG", default=False) is False

    def test_one_means_on_regardless_of_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        reset_env_flag_cache()
        assert env_flag("REPRO_TEST_FLAG", default=False) is True

    @pytest.mark.parametrize("garbage", ["", "no", "false", "off", "00", " 0"])
    def test_garbage_values_mean_on(self, monkeypatch, garbage):
        """A kill switch only disarms on the documented spelling '0'."""
        monkeypatch.setenv("REPRO_TEST_FLAG", garbage)
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        reset_env_flag_cache()
        assert env_flag("REPRO_TEST_FLAG", default=False) is True

    def test_cache_invalidates_when_environ_changes(self, monkeypatch):
        """monkeypatch.setenv mid-process must be seen (tests rely on it)."""
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert env_flag("REPRO_TEST_FLAG") is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG") is False
        monkeypatch.delenv("REPRO_TEST_FLAG")
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_repeated_reads_served_from_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert env_flag("REPRO_TEST_FLAG") is True
        # Same raw value: the cached parse is reused (same result).
        for _ in range(3):
            assert env_flag("REPRO_TEST_FLAG") is True


class TestKnownFlags:
    def test_documented_defaults(self):
        assert KNOWN_FLAGS["REPRO_FASTPATH"][0] is True
        assert KNOWN_FLAGS["REPRO_STREAM"][0] is True
        assert KNOWN_FLAGS["REPRO_TRACE"][0] is False
        assert KNOWN_FLAGS["REPRO_DEMAND"][0] is True
        assert KNOWN_FLAGS["REPRO_DEMAND_COMPILE"][0] is True

    def test_module_call_sites_agree_with_documented_defaults(self, monkeypatch):
        """The one call site per flag uses the KNOWN_FLAGS default."""
        from repro.capture.stream import stream_enabled
        from repro.demand import demand_compile_enabled
        from repro.governors.base import idle_fastpath_enabled
        from repro.obs.session import trace_enabled

        for name in (
            "REPRO_FASTPATH",
            "REPRO_STREAM",
            "REPRO_TRACE",
            "REPRO_DEMAND_COMPILE",
        ):
            monkeypatch.delenv(name, raising=False)
        reset_env_flag_cache()
        assert idle_fastpath_enabled() is KNOWN_FLAGS["REPRO_FASTPATH"][0]
        assert stream_enabled() is KNOWN_FLAGS["REPRO_STREAM"][0]
        assert trace_enabled() is KNOWN_FLAGS["REPRO_TRACE"][0]
        assert (
            demand_compile_enabled() is KNOWN_FLAGS["REPRO_DEMAND_COMPILE"][0]
        )

    def test_kill_switches_disarm_their_modules(self, monkeypatch):
        from repro.capture.stream import stream_enabled
        from repro.governors.base import idle_fastpath_enabled
        from repro.obs.session import trace_enabled

        monkeypatch.setenv("REPRO_FASTPATH", "0")
        monkeypatch.setenv("REPRO_STREAM", "0")
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert idle_fastpath_enabled() is False
        assert stream_enabled() is False
        assert trace_enabled() is True

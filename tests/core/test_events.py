"""Unit tests for input-event primitives."""

from repro.core import events as ev


def test_syn_report_detection():
    event = ev.InputEvent(0, "/dev/input/event1", ev.EV_SYN, ev.SYN_REPORT, 0)
    assert event.is_syn_report()


def test_abs_event_is_not_syn():
    event = ev.InputEvent(
        0, "/dev/input/event1", ev.EV_ABS, ev.ABS_MT_POSITION_X, 10
    )
    assert not event.is_syn_report()


def test_type_names():
    assert ev.type_name(ev.EV_ABS) == "EV_ABS"
    assert ev.type_name(0x1F) == "0x1f"


def test_abs_code_names():
    assert ev.code_name(ev.EV_ABS, ev.ABS_MT_TRACKING_ID) == "ABS_MT_TRACKING_ID"
    assert ev.code_name(ev.EV_ABS, 0x77) == "0x77"


def test_key_code_names():
    assert ev.code_name(ev.EV_KEY, ev.KEY_POWER) == "KEY_POWER"
    assert ev.code_name(ev.EV_KEY, 999) == "KEY_999"


def test_tracking_id_none_matches_getevent_ffffffff():
    assert ev.TRACKING_ID_NONE == 0xFFFFFFFF


def test_describe_contains_device_and_code():
    event = ev.InputEvent(
        1234, "/dev/input/event1", ev.EV_ABS, ev.ABS_MT_POSITION_Y, 0x1A3
    )
    text = event.describe()
    assert "/dev/input/event1" in text
    assert "ABS_MT_POSITION_Y" in text
    assert "000001a3" in text

"""Unit and property tests for geometry primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect

rects = st.builds(
    Rect,
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(0, 60),
    st.integers(0, 60),
)
points = st.builds(Point, st.integers(-100, 100), st.integers(-100, 100))


def test_rect_rejects_negative_dimensions():
    with pytest.raises(ValueError):
        Rect(0, 0, -1, 5)


def test_contains_is_half_open():
    rect = Rect(0, 0, 10, 10)
    assert rect.contains(Point(0, 0))
    assert rect.contains(Point(9, 9))
    assert not rect.contains(Point(10, 9))
    assert not rect.contains(Point(9, 10))


def test_center_of_even_rect():
    assert Rect(0, 0, 10, 20).center == Point(5, 10)


def test_intersection_of_overlapping():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 10, 10)
    assert a.intersection(b) == Rect(5, 5, 5, 5)


def test_intersection_of_disjoint_has_zero_area():
    a = Rect(0, 0, 5, 5)
    b = Rect(10, 10, 5, 5)
    assert a.intersection(b).area == 0


def test_union_contains_both():
    a = Rect(0, 0, 5, 5)
    b = Rect(10, 10, 5, 5)
    union = a.union(b)
    assert union == Rect(0, 0, 15, 15)


def test_union_with_empty_rect_returns_other():
    empty = Rect(3, 3, 0, 0)
    other = Rect(1, 1, 4, 4)
    assert empty.union(other) == other
    assert other.union(empty) == other


def test_inset_shrinks_symmetrically():
    assert Rect(0, 0, 10, 10).inset(2) == Rect(2, 2, 6, 6)


def test_inset_floors_at_zero():
    assert Rect(0, 0, 3, 3).inset(5).area == 0


def test_point_distance():
    assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


def test_point_offset():
    assert Point(1, 2).offset(3, -1) == Point(4, 1)


@given(rects, rects)
def test_intersection_commutes(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(rects, rects)
def test_intersects_iff_positive_intersection_area(a, b):
    assert a.intersects(b) == (a.intersection(b).area > 0)


@given(rects, rects)
def test_union_contains_intersection(a, b):
    union = a.union(b)
    inter = a.intersection(b)
    if inter.area:
        assert union.intersection(inter) == inter


@given(rects, points)
def test_contained_point_in_union(rect, point):
    other = Rect(0, 0, 4, 4)
    if rect.contains(point):
        assert rect.union(other).contains(point)


@given(rects)
def test_clamp_to_self_is_identity(rect):
    assert rect.clamped_to(rect) == rect

"""Determinism tests for named RNG streams."""

from repro.core.rng import RngStreams


def test_same_seed_same_stream_sequence():
    a = RngStreams(42).stream("plan")
    b = RngStreams(42).stream("plan")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RngStreams(42)
    plan = [streams.stream("plan").random() for _ in range(5)]
    fresh = RngStreams(42)
    # Drawing from another stream first must not disturb "plan".
    fresh.stream("noise").random()
    plan_again = [fresh.stream("plan").random() for _ in range(5)]
    assert plan == plan_again


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RngStreams(7)
    assert streams.stream("s") is streams.stream("s")


def test_fork_is_deterministic():
    a = RngStreams(42).fork("rep:1").stream("noise").random()
    b = RngStreams(42).fork("rep:1").stream("noise").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RngStreams(42)
    child = parent.fork("rep:1")
    assert parent.stream("noise").random() != child.stream("noise").random()


def test_fork_names_differ():
    base = RngStreams(42)
    assert (
        base.fork("rep:1").master_seed != base.fork("rep:2").master_seed
    )

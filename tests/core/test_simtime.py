"""Unit tests for the integer-microsecond time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import simtime


def test_millis_converts_to_integer_micros():
    assert simtime.millis(150) == 150_000


def test_seconds_converts_to_integer_micros():
    assert simtime.seconds(2.5) == 2_500_000


def test_minutes_and_hours():
    assert simtime.minutes(10) == 600_000_000
    assert simtime.hours(24) == 24 * 3600 * 1_000_000


def test_micros_rounds_fractions():
    assert simtime.micros(1.6) == 2


def test_to_millis_roundtrip():
    assert simtime.to_millis(simtime.millis(123)) == pytest.approx(123)


def test_to_seconds():
    assert simtime.to_seconds(1_500_000) == pytest.approx(1.5)


def test_format_micros_zero():
    assert simtime.format_micros(0) == "0:00:00.000"


def test_format_micros_full_fields():
    stamp = simtime.hours(1) + simtime.minutes(2) + simtime.seconds(3) + 4567
    assert simtime.format_micros(stamp) == "1:02:03.004567"


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_seconds_to_seconds_inverse(value):
    assert simtime.to_seconds(simtime.seconds(value)) == pytest.approx(
        value, abs=1e-6
    )


class TestSimClock:
    def test_starts_at_zero(self):
        assert simtime.SimClock().now == 0

    def test_advance_moves_forward(self):
        clock = simtime.SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_backwards_rejected(self):
        clock = simtime.SimClock(50)
        with pytest.raises(ValueError):
            clock.advance_to(49)

    def test_advance_to_same_time_is_noop(self):
        clock = simtime.SimClock(50)
        clock.advance_to(50)
        assert clock.now == 50

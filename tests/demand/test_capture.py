"""Capture semantics: trace shape, match-table correctness, store."""

import zlib

import numpy as np
import pytest

from repro.analysis.diff import build_mask, frames_equal
from repro.capture import FrameDigestTap
from repro.demand import (
    DemandProgram,
    DemandTraceStore,
    capture_demand,
    demand_replay_run,
)
from repro.fleet.cache import ResultCache
from repro.harness.experiment import replay_run


@pytest.fixture(scope="module")
def trace_ds03(artifacts_ds03):
    return capture_demand(artifacts_ds03)


def test_capture_produces_a_valid_trace(artifacts_ds03, trace_ds03):
    trace_ds03.validate()
    assert trace_ds03.workload == artifacts_ds03.name
    assert trace_ds03.capture_config.startswith("fixed:")
    assert trace_ds03.input_events > 0
    assert trace_ds03.states
    assert trace_ds03.guards == {}  # scripted gestures wait for quiescence


def test_match_table_equals_brute_force_pixel_comparison(
    artifacts_ds03, trace_ds03
):
    database = artifacts_ds03.database
    assert trace_ds03.match_states is not None
    assert len(trace_ds03.match_states) == len(database.annotations)
    shape = (trace_ds03.height, trace_ds03.width)
    states = [
        np.frombuffer(zlib.decompress(blob), dtype=np.uint8).reshape(shape)
        for blob in trace_ds03.states
    ]
    blank = np.zeros(shape, dtype=np.uint8)
    for lag_index, annotation in enumerate(database.annotations):
        mask = build_mask(annotation.image.shape, annotation.mask_rects)
        expected = tuple(
            state_id
            for state_id, frame in enumerate(states)
            if frames_equal(frame, annotation.image, mask,
                            annotation.tolerance_px)
        )
        assert trace_ds03.match_states[lag_index] == expected, lag_index
        blank_matches = frames_equal(
            blank, annotation.image, mask, annotation.tolerance_px
        )
        assert (lag_index in trace_ds03.blank_matches) == blank_matches


def test_pixel_and_table_evaluation_paths_agree(artifacts_ds03, trace_ds03):
    """A frame tap forces the pixel path; both demand paths and a full
    replay must produce the same record.  (The demand *frame stream* is
    not byte-identical to a full replay's — animation ticks are elided,
    so transient frames differ — but every match verdict, and hence the
    record, is.)"""
    program = DemandProgram(trace_ds03)
    table_record = demand_replay_run(artifacts_ds03, program, "ondemand")
    pixel_tap = FrameDigestTap()
    pixel_record = demand_replay_run(
        artifacts_ds03, program, "ondemand", frame_tap=pixel_tap
    )
    full_record = replay_run(artifacts_ds03, "ondemand")
    assert pixel_record.to_json_dict() == table_record.to_json_dict()
    assert pixel_record.to_json_dict() == full_record.to_json_dict()
    # The pixel path itself is deterministic.
    rerun_tap = FrameDigestTap()
    demand_replay_run(artifacts_ds03, program, "ondemand", frame_tap=rerun_tap)
    assert rerun_tap.hexdigest() == pixel_tap.hexdigest()


def test_program_precomputes_match_sets(trace_ds03):
    program = DemandProgram(trace_ds03)
    assert program.match_sets is not None
    assert len(program.match_sets) == len(trace_ds03.match_states)
    for lag_index, matched in enumerate(trace_ds03.match_states):
        assert program.match_sets[lag_index].issuperset(matched)


def test_store_roundtrip_counts_hits_and_misses(artifacts_ds03, trace_ds03, tmp_path):
    store = DemandTraceStore.for_cache(ResultCache(tmp_path))
    assert store.load(artifacts_ds03) is None
    assert store.misses == 1
    store.store(artifacts_ds03, trace_ds03)
    loaded = store.load(artifacts_ds03)
    assert store.hits == 1
    assert loaded.content_hash() == trace_ds03.content_hash()


def test_store_absent_without_a_result_cache():
    assert DemandTraceStore.for_cache(None) is None

"""The demand compiler: lowering round-trip, CSR layout, A/B equivalence."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demand.compile import (
    OP_CHAIN_START,
    OP_CHAIN_STOP,
    OP_INVALIDATE,
    OP_TASK,
    OP_TIMER,
    compile_trace,
    demand_compile_enabled,
)
from repro.demand.replayer import (
    DemandFallback,
    DemandProgram,
    _CompiledExecutor,
    _DemandExecutor,
    make_executor,
)
from repro.demand.trace import (
    KIND_CHAIN_START,
    KIND_CHAIN_STOP,
    KIND_INVALIDATE,
    KIND_TASK,
    KIND_TIMER,
    DemandNode,
    DemandTrace,
)
from repro.device.device import Device

WIDTH = HEIGHT = 4
STATE = zlib.compress(bytes(WIDTH * HEIGHT))


def _trace(nodes, input_events=0, guards=None, states=2):
    trace = DemandTrace(
        workload="test:compile",
        capture_config="fixed:300000",
        duration_us=1_000_000,
        width=WIDTH,
        height=HEIGHT,
        input_events=input_events,
        nodes=nodes,
        states=[STATE] * states,
        guards=guards or {},
    )
    trace.validate()
    return trace


def _rich_trace():
    """One of each node kind, setup + input roots + nested children."""
    nodes = [
        DemandNode(
            node_id=0,
            kind=KIND_CHAIN_START,
            chain_key=7,
            name="svc:poll",
            period_us=40_000,
            cycles=2.5e6,
            priority=1,
        ),
        DemandNode(
            node_id=1, kind=KIND_TASK, name="setup", cycles=1e6, priority=1
        ),
        DemandNode(node_id=2, kind=KIND_INVALIDATE, parent=1, state_id=0),
        DemandNode(
            node_id=3,
            kind=KIND_TASK,
            input_ordinal=0,
            name="tap",
            cycles=3e6,
            priority=0,
        ),
        DemandNode(node_id=4, kind=KIND_TIMER, parent=3, delay_us=2_000),
        DemandNode(
            node_id=5,
            kind=KIND_TASK,
            parent=4,
            name="render",
            cycles=2e6,
            priority=0,
        ),
        DemandNode(node_id=6, kind=KIND_INVALIDATE, parent=5, state_id=1),
        DemandNode(node_id=7, kind=KIND_TIMER, parent=3, delay_us=500),
        DemandNode(node_id=8, kind=KIND_CHAIN_STOP, input_ordinal=1, chain_key=7),
        DemandNode(
            node_id=9,
            kind=KIND_TASK,
            input_ordinal=1,
            name="tap2",
            cycles=1e6,
            priority=0,
        ),
    ]
    return _trace(nodes, input_events=2, guards={1: ()})


def test_columns_round_trip_node_fields():
    trace = _rich_trace()
    compiled = compile_trace(trace)
    ops = {
        KIND_TASK: OP_TASK,
        KIND_TIMER: OP_TIMER,
        KIND_INVALIDATE: OP_INVALIDATE,
        KIND_CHAIN_START: OP_CHAIN_START,
        KIND_CHAIN_STOP: OP_CHAIN_STOP,
    }
    assert compiled.node_count == len(trace.nodes)
    assert compiled.input_events == trace.input_events
    for node in trace.nodes:
        i = node.node_id
        assert compiled.kind[i] == ops[node.kind]
        assert compiled.priority[i] == (
            -1 if node.priority is None else node.priority
        )
        assert compiled.delay_us[i] == (
            -1 if node.delay_us is None else node.delay_us
        )
        assert compiled.state_id[i] == (
            -1 if node.state_id is None else node.state_id
        )
        assert compiled.chain_key[i] == (
            -1 if node.chain_key is None else node.chain_key
        )
        assert compiled.period_us[i] == (
            -1 if node.period_us is None else node.period_us
        )
        assert compiled.cycles[i] == node.cycles
        assert compiled.names[i] == node.name


def test_csr_walk_matches_children_by_parent():
    trace = _rich_trace()
    compiled = compile_trace(trace)
    setup, by_input, by_node = trace.children_by_parent()
    assert compiled.setup_children() == [n.node_id for n in setup]
    for ordinal in range(trace.input_events):
        assert compiled.input_children(ordinal) == [
            n.node_id for n in by_input.get(ordinal, [])
        ]
    for node_id in range(len(trace.nodes)):
        assert compiled.children_of(node_id) == [
            n.node_id for n in by_node.get(node_id, [])
        ]
    # The walk is one flat array: every range indexes into it.
    assert compiled.input_children(trace.input_events) == []


def test_actions_fuse_payloads_and_children():
    trace = _rich_trace()
    compiled = compile_trace(trace)
    tap = compiled.actions[3]
    assert tap[0] == OP_TASK
    assert tap[1] == 3
    assert tap[2] == "tap"
    assert tap[3] == 3e6 and isinstance(tap[3], float)
    assert tap[4] == 0
    # Children embed as the child nodes' own action tuples, in order.
    assert tap[5] == [compiled.actions[4], compiled.actions[7]]
    timer = compiled.actions[7]
    assert timer == (OP_TIMER, 500, None)  # childless timer
    assert compiled.actions[2] == (OP_INVALIDATE, 0)
    assert compiled.actions[0] == (
        OP_CHAIN_START, 7, "svc:poll", 40_000, 2.5e6, 1
    )
    assert compiled.actions[8] == (OP_CHAIN_STOP, 7)
    assert compiled.setup_actions == [compiled.actions[0], compiled.actions[1]]
    assert compiled.input_actions == [
        [compiled.actions[3]],
        [compiled.actions[8], compiled.actions[9]],
    ]
    # Dense guard list: recorded ordinals verbatim, the rest quiescent.
    assert compiled.guards == [(), ()]


def test_program_memoizes_compiled_form():
    program = DemandProgram(_rich_trace())
    assert program.compiled() is program.compiled()


def test_make_executor_honours_kill_switch(monkeypatch):
    program = DemandProgram(_rich_trace())
    assert demand_compile_enabled()
    assert isinstance(
        make_executor(Device(), program), _CompiledExecutor
    )
    monkeypatch.setenv("REPRO_DEMAND_COMPILE", "0")
    assert not demand_compile_enabled()
    assert isinstance(
        make_executor(Device(), program), _DemandExecutor
    )


def _random_trace(rng):
    """A seeded random forest exercising every kind and nesting shape."""
    nodes = []

    def add(kind, **payload):
        node = DemandNode(node_id=len(nodes), kind=kind, **payload)
        nodes.append(node)
        return node.node_id

    chains = 0
    if rng.random() < 0.5:
        add(
            KIND_CHAIN_START,
            chain_key=0,
            name="chain",
            period_us=rng.randrange(20_000, 60_000),
            cycles=float(rng.randrange(1, 5)) * 1e6,
            priority=1,
        )
        chains = 1

    def grow(parent, depth):
        for _ in range(rng.randrange(0, 3)):
            roll = rng.random()
            if roll < 0.45:
                child = add(
                    KIND_TASK,
                    parent=parent,
                    name=f"t{len(nodes)}",
                    cycles=float(rng.randrange(1, 8)) * 1e5,
                    priority=rng.randrange(2),
                )
                if depth < 2:
                    grow(child, depth + 1)
            elif roll < 0.7:
                add(KIND_INVALIDATE, parent=parent, state_id=rng.randrange(2))
            else:
                child = add(
                    KIND_TIMER,
                    parent=parent,
                    delay_us=rng.randrange(0, 3_000),
                )
                if depth < 2:
                    grow(child, depth + 1)

    inputs = rng.randrange(1, 4)
    for ordinal in range(inputs):
        if chains and rng.random() < 0.2:
            add(KIND_CHAIN_STOP, input_ordinal=ordinal, chain_key=0)
        root = add(
            KIND_TASK,
            input_ordinal=ordinal,
            name=f"in{ordinal}",
            cycles=float(rng.randrange(1, 8)) * 1e5,
            priority=0,
        )
        grow(root, 1)
    return _trace(nodes, input_events=inputs)


def _evaluate(cls, program, inputs):
    """Run one executor over a real device with scripted input delivery.

    Returns everything engine-observable: final sim time, events fired,
    the screen state — or the fallback it raised, so a guard mismatch is
    itself compared across the two executors.
    """
    device = Device()
    executor = cls(device, program, False)
    executor.run_setup()
    device.set_governor("fixed:960000")
    outcome = []

    def deliver():
        try:
            executor.on_input(None)
        except DemandFallback as exc:
            outcome.append(str(exc))

    for index in range(inputs):
        device.engine.schedule_at(5_000 + index * 50_000, deliver)
    device.run_for(inputs * 50_000 + 50_000)
    return (
        device.engine.now,
        device.engine.events_fired,
        executor.current_state,
        outcome,
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_compiled_walk_equals_interpreted_walk(seed):
    import random

    rng = random.Random(seed)
    trace = _random_trace(rng)
    program = DemandProgram(trace)
    compiled = _evaluate(_CompiledExecutor, program, trace.input_events)
    interpreted = _evaluate(_DemandExecutor, program, trace.input_events)
    assert compiled == interpreted


def test_compile_rejects_non_integer_payload():
    nodes = [
        DemandNode(node_id=0, kind=KIND_TIMER, delay_us=1_500),
    ]
    trace = _trace(nodes)
    trace.nodes[0].delay_us = 1_500.5  # corrupt after validate
    with pytest.raises(TypeError):
        compile_trace(trace)

"""ShadowStreamer vs the pixel RLE, and the verdict-table matcher."""

import random

import numpy as np
import pytest

from repro.capture.stream import SegmentStreamer
from repro.core.errors import CaptureError
from repro.demand.tablematch import BLANK_STATE, ShadowStreamer, TableMatcher


class _Collector:
    """A FrameTap double recording (start, end, content) triples."""

    def __init__(self) -> None:
        self.segments = []
        self.end_frame = None

    def on_segment(self, segment) -> None:
        self.segments.append((segment.start, segment.end, segment.content))

    def on_stop(self, end_frame) -> None:
        self.end_frame = end_frame


def _distinct_frames(count: int, width: int = 4, height: int = 4):
    """Pairwise-distinct frames so id equality == content equality."""
    frames = []
    for value in range(count):
        frame = np.zeros((height, width), dtype=np.uint8)
        frame[0, 0] = value + 1
        frames.append(frame)
    return frames


def _run_both(events, end_frame, states=8):
    """Feed the same (frame_index, state_id) sequence to both RLEs."""
    frames = _distinct_frames(states)
    pixel_tap, shadow_tap = _Collector(), _Collector()
    pixel = SegmentStreamer(4, 4)
    pixel.add_tap(pixel_tap)
    shadow = ShadowStreamer(shadow_tap)
    for frame_index, state in events:
        pixel.record_frame(frame_index, frames[state])
        shadow.record(frame_index, state)
    pixel.finalize(end_frame)
    shadow.finalize(end_frame)
    pixel_segments = [
        (start, end, int(content[0, 0]) - 1)
        for start, end, content in pixel_tap.segments
    ]
    return pixel_segments, shadow_tap.segments, pixel_tap, shadow_tap


def test_shadow_matches_pixel_rle_on_a_simple_run():
    events = [(0, 0), (1, 0), (3, 1), (4, 1), (7, 2)]
    pixel, shadow, pixel_tap, shadow_tap = _run_both(events, end_frame=10)
    assert shadow == pixel
    assert shadow_tap.end_frame == pixel_tap.end_frame == 10


def test_shadow_replicates_same_vsync_replacement_and_merge_back():
    # Two composes inside one vsync replace; if the replacement equals
    # the previous run the length-1 run merges back into it.
    events = [(0, 0), (2, 1), (2, 0), (5, 2), (5, 3)]
    pixel, shadow, _p, _s = _run_both(events, end_frame=8)
    assert shadow == pixel


def test_shadow_matches_pixel_rle_on_random_sequences():
    rng = random.Random(2014)
    for _trial in range(50):
        frame_index = 0
        events = []
        for _step in range(rng.randrange(1, 40)):
            frame_index += rng.choice((0, 0, 1, 1, 2, 5))
            events.append((frame_index, rng.randrange(6)))
        pixel, shadow, _p, _s = _run_both(events, end_frame=frame_index + 3)
        assert shadow == pixel, events


def test_shadow_rejects_negative_first_frame():
    with pytest.raises(CaptureError):
        ShadowStreamer(_Collector()).record(-1, 0)


def test_shadow_rejects_out_of_order_frames():
    shadow = ShadowStreamer(_Collector())
    shadow.record(5, 0)
    with pytest.raises(CaptureError):
        shadow.record(3, 1)


def test_shadow_finalize_contract():
    with pytest.raises(CaptureError):
        ShadowStreamer(_Collector()).finalize(3)
    shadow = ShadowStreamer(_Collector())
    shadow.record(0, 0)
    shadow.record(4, 1)
    with pytest.raises(CaptureError):
        shadow.finalize(2)


class _FakeSegment:
    def __init__(self, start, end, content):
        self.start = start
        self.end = end
        self.content = content


def test_table_matcher_consults_the_verdict_table(gallery_database):
    matcher = TableMatcher(
        gallery_database,
        [frozenset({3, BLANK_STATE})] * len(gallery_database.annotations),
    )
    scan = matcher._scans[0]
    assert matcher._matches(scan, _FakeSegment(0, 1, 3))
    assert matcher._matches(scan, _FakeSegment(0, 1, BLANK_STATE))
    assert not matcher._matches(scan, _FakeSegment(0, 1, 4))
    # Activation needs no pixel mask: verdicts were precomputed under it.
    matcher._activate(scan)
    assert scan.mask is None

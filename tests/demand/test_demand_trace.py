"""DemandTrace schema: roundtrip, content addressing, contract checks."""

import zlib

import pytest

from repro.demand import DemandNode, DemandTrace, DemandTraceError
from repro.demand.trace import (
    KIND_CHAIN_START,
    KIND_CHAIN_STOP,
    KIND_INVALIDATE,
    KIND_TASK,
    KIND_TIMER,
)


def make_trace(**overrides) -> DemandTrace:
    """A small but kind-complete valid trace (2x2 frames, one input)."""
    fields = dict(
        workload="unit",
        capture_config="fixed:300000",
        duration_us=1_000_000,
        width=2,
        height=2,
        input_events=2,
        nodes=[
            DemandNode(0, KIND_CHAIN_START, chain_key=7, name="svc",
                       period_us=1_000, cycles=5e5, priority=1),
            DemandNode(1, KIND_TASK, input_ordinal=0, name="fg",
                       cycles=1e6, priority=0),
            DemandNode(2, KIND_TIMER, parent=1, delay_us=100),
            DemandNode(3, KIND_INVALIDATE, parent=2, state_id=0),
            DemandNode(4, KIND_CHAIN_STOP, chain_key=7),
        ],
        guards={1: (1,)},
        states=[zlib.compress(bytes(4))],
        match_states=[(0,)],
        blank_matches=(0,),
    )
    fields.update(overrides)
    return DemandTrace(**fields)


def test_valid_trace_passes_validation():
    make_trace().validate()


def test_json_roundtrip_is_lossless_and_content_addressed():
    trace = make_trace()
    clone = DemandTrace.loads(trace.dumps())
    clone.validate()
    assert clone.to_json_dict() == trace.to_json_dict()
    assert clone.content_hash() == trace.content_hash()
    assert clone.guards == trace.guards
    assert clone.match_states == trace.match_states
    assert clone.blank_matches == trace.blank_matches


def test_stats_counts_every_kind():
    stats = make_trace().stats()
    assert stats["task_arrivals"] == 1
    assert stats["timers"] == 1
    assert stats["frame_deadlines"] == 1
    assert stats["chain_starts"] == 1
    assert stats["chain_stops"] == 1
    assert stats["input_windows"] == 1
    assert stats["guarded_windows"] == 1
    assert stats["states"] == 1
    assert stats["match_annotations"] == 1


def test_children_by_parent_partitions_roots_and_children():
    setup, by_input, by_node = make_trace().children_by_parent()
    assert [node.node_id for node in setup] == [0, 4]
    assert [node.node_id for node in by_input[0]] == [1]
    assert [node.node_id for node in by_node[2]] == [3]


def test_not_json_rejected():
    with pytest.raises(DemandTraceError, match="not valid JSON"):
        DemandTrace.loads("{nope")


def test_malformed_payload_rejected():
    with pytest.raises(DemandTraceError, match="malformed"):
        DemandTrace.loads('{"workload": "x"}')


@pytest.mark.parametrize(
    "overrides, pattern",
    [
        ({"schema_version": 99}, "schema 99"),
        ({"duration_us": 0}, "positive dimensions and duration"),
        ({"states": [b"not zlib"]}, "not valid zlib"),
        ({"states": [zlib.compress(bytes(3))]}, "decompresses to 3 bytes"),
        ({"match_states": [(5,)]}, "references state 5"),
        ({"match_states": [(0,)], "blank_matches": (3,)},
         "references annotation 3"),
        ({"match_states": None, "blank_matches": (0,)},
         "without a match table"),
        ({"guards": {5: (1,)}}, "guard ordinal 5"),
        ({"guards": {0: (2,)}}, "not a task"),
        ({"guards": {0: (0,)}}, "not a task"),
    ],
)
def test_contract_violations_are_rejected(overrides, pattern):
    with pytest.raises(DemandTraceError, match=pattern):
        make_trace(**overrides).validate()


def test_background_task_cannot_guard():
    trace = make_trace()
    trace.nodes[1].priority = 1  # fg task becomes background
    with pytest.raises(DemandTraceError, match="background"):
        trace.validate()


def test_node_ids_must_be_dense_and_ordered():
    trace = make_trace()
    trace.nodes[2].node_id = 9
    with pytest.raises(DemandTraceError, match="dense and ordered"):
        trace.validate()


def test_invalidate_cannot_parent_children():
    trace = make_trace()
    trace.nodes[4] = DemandNode(4, KIND_TIMER, parent=3, delay_us=1)
    with pytest.raises(DemandTraceError, match="cannot have children"):
        trace.validate()


def test_chain_stop_before_start_rejected():
    trace = make_trace(nodes=[DemandNode(0, KIND_CHAIN_STOP, chain_key=1)])
    with pytest.raises(DemandTraceError, match="before any start"):
        trace.validate()

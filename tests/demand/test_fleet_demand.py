"""Fleet wiring of the demand pass: accounting, fallback, degradation."""

import io
import json

import pytest

import repro.demand as demand_module
from repro.demand import DemandCaptureError, DemandFallback
from repro.fleet.cache import ResultCache
from repro.fleet.engine import FleetEngine
from repro.fleet.progress import ProgressReporter
from repro.fleet.spec import RunSpec

CONFIGS = ("fixed:300000", "ondemand")


def _specs(artifacts):
    return [
        RunSpec(
            dataset=artifacts.name,
            config=config,
            rep=0,
            master_seed=artifacts.recording_master_seed,
        )
        for config in CONFIGS
    ]


@pytest.fixture(autouse=True)
def demand_on(monkeypatch):
    monkeypatch.setenv("REPRO_DEMAND", "1")


def test_demand_cells_counted_and_tagged_in_jsonl(artifacts_ds03, tmp_path):
    specs = _specs(artifacts_ds03)
    jsonl = io.StringIO()
    reporter = ProgressReporter(
        artifacts_ds03.name, stream=io.StringIO(), jsonl_stream=jsonl
    ).bind(specs)
    engine = FleetEngine(jobs=1, cache=ResultCache(tmp_path), progress=reporter)
    engine.run(artifacts_ds03, specs)
    reporter.fleet_summary(engine.last_stats, engine.cache)
    stats = engine.last_stats
    assert stats.demand_cells == len(specs)
    assert stats.compiled_cells == len(specs)
    assert stats.full_cells == 0
    assert stats.fallback_cells == 0
    assert stats.demand_trace_source == "captured"
    assert stats.demand_capture_s is not None
    assert all(t["mode"] == "demand" for t in stats.run_telemetry)
    assert all(t["compiled"] is True for t in stats.run_telemetry)

    events = [json.loads(line) for line in jsonl.getvalue().splitlines()]
    completed = [e for e in events if e["event"] == "run_completed"]
    assert [e["mode"] for e in completed] == ["demand"] * len(specs)
    assert [e["compiled"] for e in completed] == [True] * len(specs)
    summary = [e for e in events if e["event"] == "fleet_summary"][0]
    assert summary["demand"] == {
        "demand_cells": len(specs),
        "compiled_cells": len(specs),
        "full_cells": 0,
        "fallback_cells": 0,
        "fallback_reasons": {},
        "trace_source": "captured",
        "capture_s": stats.demand_capture_s,
        "capture_error": None,
    }


def test_fallback_reruns_cell_as_full_replay(artifacts_ds03, monkeypatch):
    """A DemandFallback is transparent: full-replay record, counted cell."""
    specs = _specs(artifacts_ds03)
    reference = FleetEngine(jobs=1).run(artifacts_ds03, specs)

    def always_falls_back(*_args, **_kwargs):
        raise DemandFallback("synthetic divergence", reason="guard_mismatch")

    monkeypatch.setattr(demand_module, "demand_replay_run", always_falls_back)
    engine = FleetEngine(jobs=1)
    results = engine.run(artifacts_ds03, specs)
    stats = engine.last_stats
    assert results == reference
    assert stats.demand_cells == 0
    assert stats.full_cells == len(specs)
    assert stats.fallback_cells == len(specs)
    assert stats.fallback_reasons == {"guard_mismatch": len(specs)}
    assert all(
        t["fallback_reason"] == "guard_mismatch" for t in stats.run_telemetry
    )


def test_capture_failure_degrades_to_full_replays(artifacts_ds03, monkeypatch):
    """A capture error must degrade the run, never abort it."""
    specs = _specs(artifacts_ds03)
    reference = FleetEngine(jobs=1).run(artifacts_ds03, specs)

    def cannot_capture(_artifacts):
        raise DemandCaptureError("no causal parent for timer")

    monkeypatch.setattr(demand_module, "capture_demand", cannot_capture)
    engine = FleetEngine(jobs=1)
    results = engine.run(artifacts_ds03, specs)
    stats = engine.last_stats
    assert results == reference
    assert stats.demand_trace_source is None
    assert "no causal parent" in stats.demand_capture_error
    assert stats.demand_cells == 0
    assert stats.full_cells == len(specs)


def test_kill_switch_skips_capture(artifacts_ds03, monkeypatch):
    monkeypatch.setenv("REPRO_DEMAND", "0")

    def must_not_run(_artifacts):
        raise AssertionError("capture_demand called with REPRO_DEMAND=0")

    monkeypatch.setattr(demand_module, "capture_demand", must_not_run)
    engine = FleetEngine(jobs=1)
    engine.run(artifacts_ds03, _specs(artifacts_ds03))
    assert engine.last_stats.full_cells == len(CONFIGS)
    assert engine.last_stats.demand_trace_source is None


def test_corrupt_stored_trace_is_a_miss_not_an_error(artifacts_ds03, tmp_path):
    from repro.demand import DemandTraceStore, demand_trace_key

    cache = ResultCache(tmp_path)
    store_dir = tmp_path / "demand"
    store_dir.mkdir()
    key = demand_trace_key(artifacts_ds03)
    (store_dir / f"{key}.json").write_text("{corrupt", encoding="utf-8")
    engine = FleetEngine(jobs=1, cache=cache)
    engine.run(artifacts_ds03, _specs(artifacts_ds03))
    stats = engine.last_stats
    # The corrupt entry was a miss: the engine re-captured and stored.
    assert stats.demand_trace_source == "captured"
    assert stats.demand_cells == len(CONFIGS)
    store = DemandTraceStore.for_cache(cache)
    assert store.load(artifacts_ds03) is not None

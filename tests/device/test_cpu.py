"""Unit tests for the CPU core model."""

import pytest

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.device.cpu import CpuCore
from repro.device.frequencies import snapdragon_8074_table
from repro.device.power import PowerModel


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def core(engine):
    return CpuCore(engine.clock, snapdragon_8074_table(), PowerModel())


def test_starts_idle_at_min_frequency(core):
    assert core.frequency_khz == 300_000
    assert not core.busy


def test_busy_time_accumulates(engine, core):
    core.set_busy(True)
    engine.clock.advance_to(1_000_000)
    assert core.busy_time_total() == 1_000_000
    core.set_busy(False)
    engine.clock.advance_to(2_000_000)
    assert core.busy_time_total() == 1_000_000


def test_cycles_retired_at_frequency(engine, core):
    core.set_frequency(960_000)
    core.set_busy(True)
    engine.clock.advance_to(1_000_000)
    core.set_busy(False)
    assert core.cycles_retired == pytest.approx(960_000 * 1_000)


def test_set_frequency_rejects_non_opp(core):
    with pytest.raises(SimulationError):
        core.set_frequency(999_999)


def test_transitions_counted(engine, core):
    core.set_frequency(960_000)
    core.set_frequency(960_000)  # no-op
    core.set_frequency(2_150_400)
    assert core.transitions == 2


def test_time_in_state_includes_open_interval(engine, core):
    engine.clock.advance_to(500_000)
    core.set_frequency(960_000)
    engine.clock.advance_to(800_000)
    residency = core.time_in_state()
    assert residency[300_000] == 500_000
    assert residency[960_000] == 300_000


def test_dynamic_energy_zero_while_idle(engine, core):
    engine.clock.advance_to(5_000_000)
    assert core.dynamic_energy_joules() == pytest.approx(0.0)
    assert core.energy_joules() > 0  # idle floor still burns energy


def test_dynamic_energy_positive_when_busy(engine, core):
    core.set_busy(True)
    engine.clock.advance_to(1_000_000)
    core.set_busy(False)
    assert core.dynamic_energy_joules() > 0


def test_busy_trace_requires_enable(engine, core):
    with pytest.raises(SimulationError):
        core.busy_trace()


def test_busy_trace_records_intervals(engine, core):
    core.enable_busy_trace()
    core.set_busy(True)
    engine.clock.advance_to(100)
    core.set_busy(False)
    engine.clock.advance_to(200)
    core.set_busy(True)
    engine.clock.advance_to(350)
    core.set_busy(False)
    assert core.busy_trace() == [(0, 100), (200, 350)]


def test_busy_trace_survives_frequency_change(engine, core):
    """A mid-task DVFS transition must not lose busy time."""
    core.enable_busy_trace()
    core.set_busy(True)
    engine.clock.advance_to(100)
    core.set_frequency(960_000)
    engine.clock.advance_to(250)
    core.set_busy(False)
    trace = core.busy_trace()
    assert sum(end - start for start, end in trace) == 250


def test_busy_trace_includes_open_interval(engine, core):
    core.enable_busy_trace()
    core.set_busy(True)
    engine.clock.advance_to(100)
    assert core.busy_trace() == [(0, 100)]


def test_energy_matches_mixed_profile(engine, core):
    model = core.power_model
    table = core.table
    core.set_busy(True)
    engine.clock.advance_to(1_000_000)
    core.set_frequency(2_150_400)
    engine.clock.advance_to(2_000_000)
    core.set_busy(False)
    engine.clock.advance_to(3_000_000)
    low = table.point(300_000)
    high = table.point(2_150_400)
    expected = (
        model.active_power(low.freq_khz, low.volts)
        + model.active_power(high.freq_khz, high.volts)
        + model.idle_power()
    )
    assert core.energy_joules() == pytest.approx(expected)
